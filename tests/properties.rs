//! Property-based tests over randomly generated behaviors: every seeded
//! random CDFG must survive the whole pipeline with gate-level
//! equivalence, and the core invariants must hold along the way.

use std::collections::HashMap;

use hlstb::cdfg::benchmarks::{random_cdfg, RandomCdfgParams};
use hlstb::cdfg::{LifetimeMap, Schedule};
use hlstb::flow::{DftStrategy, SynthesisFlow};
use hlstb::hls::expand::simulate_hw;
use hlstb::sgraph::mfvs::{is_feedback_vertex_set, minimum_feedback_vertex_set, MfvsOptions};
use hlstb::sgraph::SGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn random_cdfgs_synthesize_and_match_gates(
        seed in 0u64..1000,
        ops in 6usize..18,
        inputs in 1usize..4,
        states in 0usize..3,
        mul_percent in 0u8..50,
    ) {
        prop_assume!(states + 1 < ops);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_cdfg(RandomCdfgParams { ops, inputs, states, mul_percent }, &mut rng);
        let d = SynthesisFlow::new(g.clone()).run().unwrap();
        let streams: HashMap<String, Vec<u64>> = g
            .inputs()
            .map(|v| (v.name.clone(), vec![(v.id.0 as u64 * 3 + seed) & 0xf, 7, 2]))
            .collect();
        let reference = g.evaluate(&streams, &HashMap::new(), 4);
        let hw = simulate_hw(&d.expanded, &d.datapath, &streams);
        for o in g.outputs() {
            prop_assert_eq!(&hw[&o.name], &reference[&o.name]);
        }
    }

    #[test]
    fn behavioral_scan_always_leaves_acyclic_sgraph(
        seed in 0u64..1000,
        ops in 6usize..16,
        states in 1usize..4,
    ) {
        prop_assume!(states + 1 < ops);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_cdfg(
            RandomCdfgParams { ops, inputs: 2, states, mul_percent: 25 },
            &mut rng,
        );
        let d = SynthesisFlow::new(g)
            .strategy(DftStrategy::BehavioralPartialScan)
            .run()
            .unwrap();
        prop_assert!(d.report.sgraph_acyclic_after_scan);
    }

    #[test]
    fn mfvs_is_always_a_feedback_vertex_set(
        n in 2usize..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12), 1..40),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = SGraph::from_edges(n, edges);
        let fvs = minimum_feedback_vertex_set(&g, MfvsOptions::default());
        prop_assert!(is_feedback_vertex_set(&g, &fvs.nodes, true));
    }

    #[test]
    fn lifetimes_never_overlap_within_a_register(
        seed in 0u64..500,
        ops in 6usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_cdfg(
            RandomCdfgParams { ops, inputs: 2, states: 1, mul_percent: 20 },
            &mut rng,
        );
        let d = SynthesisFlow::new(g.clone()).run().unwrap();
        let lt = LifetimeMap::compute(&g, &d.schedule);
        for r in d.datapath.registers() {
            prop_assert!(lt.compatible(&r.vars));
        }
    }

    #[test]
    fn schedules_respect_all_precedences(
        seed in 0u64..500,
        ops in 6usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_cdfg(
            RandomCdfgParams { ops, inputs: 3, states: 2, mul_percent: 30 },
            &mut rng,
        );
        let d = SynthesisFlow::new(g.clone()).run().unwrap();
        let s: &Schedule = &d.schedule;
        for e in g.data_edges() {
            if e.distance == 0 {
                prop_assert!(s.start(e.to) >= s.ready_step(e.from));
            }
        }
    }
}
