//! End-to-end tests of the `hlstb` command-line driver.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_hlstb"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn list_shows_all_benchmarks() {
    let (stdout, _, ok) = run(&["list"]);
    assert!(ok);
    for name in ["figure1", "diffeq", "ewf", "gcd", "dct_lite"] {
        assert!(stdout.contains(name), "{name} missing from list");
    }
}

#[test]
fn synth_prints_a_report() {
    let (stdout, _, ok) = run(&["synth", "tseng", "--strategy", "behavioral-partial-scan"]);
    assert!(ok);
    assert!(stdout.contains("design tseng"));
    assert!(stdout.contains("registers"));
}

/// Minimal structural check on the hand-written JSON emitter: balanced
/// braces, a quoted string field, and a positive integer field.
fn json_u64_field(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[test]
fn synth_json_is_parseable() {
    let (stdout, _, ok) = run(&["synth", "figure1", "--json"]);
    assert!(ok, "{stdout}");
    let trimmed = stdout.trim();
    assert!(
        trimmed.starts_with('{') && trimmed.ends_with('}'),
        "{stdout}"
    );
    assert_eq!(
        trimmed.matches('{').count(),
        trimmed.matches('}').count(),
        "unbalanced braces: {stdout}"
    );
    assert!(trimmed.contains("\"name\": \"figure1\""), "{stdout}");
    assert!(json_u64_field(trimmed, "gates").unwrap() > 0, "{stdout}");
}

#[test]
fn synth_grade_reports_coverage() {
    let (stdout, _, ok) = run(&[
        "synth",
        "figure1",
        "--strategy",
        "full-scan",
        "--grade",
        "128",
        "--threads",
        "2",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("fault grading"), "{stdout}");
    let (json_out, _, ok) = run(&[
        "synth",
        "figure1",
        "--strategy",
        "full-scan",
        "--grade",
        "128",
        "--json",
    ]);
    assert!(ok, "{json_out}");
    assert!(json_out.contains("\"coverage_percent\""), "{json_out}");
    assert!(json_out.contains("\"fault_evals\""), "{json_out}");
}

#[test]
fn sgraph_emits_dot() {
    let (stdout, _, ok) = run(&["sgraph", "diffeq", "--strategy", "gate-partial-scan"]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(
        stdout.contains("doublecircle"),
        "scan registers should be marked"
    );
}

#[test]
fn unknown_design_fails_cleanly() {
    let (_, stderr, ok) = run(&["synth", "nonexistent"]);
    assert!(!ok);
    assert!(stderr.contains("unknown design"));
    // The error names the valid designs so the fix is one retype away.
    for name in ["figure1", "diffeq", "ewf"] {
        assert!(stderr.contains(name), "{name} missing from: {stderr}");
    }
}

#[test]
fn synth_atpg_reports_topup() {
    let (stdout, _, ok) = run(&[
        "synth",
        "figure1",
        "--strategy",
        "full-scan",
        "--grade",
        "64",
        "--atpg",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("atpg top-up"), "{stdout}");
    let (json_out, _, ok) = run(&[
        "synth",
        "figure1",
        "--strategy",
        "full-scan",
        "--grade",
        "64",
        "--atpg",
        "--json",
    ]);
    assert!(ok, "{json_out}");
    assert!(json_out.contains("\"targeted\""), "{json_out}");
    assert!(
        json_out.contains("\"combined_coverage_percent\""),
        "{json_out}"
    );
}

/// The required span names of the ISSUE's acceptance criteria, all from
/// one traced run: scheduling, binding, expansion, scan selection, BIST
/// planning, netlist build, ATPG, fault grading.
const REQUIRED_SPANS: &[&str] = &[
    "sched",
    "bind",
    "expand",
    "scan.select",
    "bist.plan",
    "netlist.build",
    "atpg",
    "fsim.grade",
];

fn traced_synth(path: &std::path::Path) -> (String, String, bool) {
    run(&[
        "synth",
        "diffeq",
        "--strategy",
        "behavioral-partial-scan",
        "--grade",
        "64",
        "--atpg",
        "--trace",
        path.to_str().unwrap(),
        "--trace-summary",
    ])
}

#[test]
fn synth_trace_writes_a_loadable_chrome_trace() {
    let path = std::env::temp_dir().join(format!("hlstb_cli_trace_{}.json", std::process::id()));
    let (stdout, stderr, ok) = traced_synth(&path);
    assert!(ok, "{stdout}{stderr}");
    // --trace-summary goes to stderr so --json stdout stays clean.
    assert!(stderr.contains("counters:"), "{stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let v = hlstb::trace::json::parse(&text).expect("chrome trace parses");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let names: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for required in REQUIRED_SPANS {
        assert!(
            names.contains(required),
            "span {required} missing: {names:?}"
        );
    }
}

#[test]
fn trace_check_validates_and_rejects() {
    let path = std::env::temp_dir().join(format!("hlstb_cli_check_{}.json", std::process::id()));
    let (stdout, stderr, ok) = traced_synth(&path);
    assert!(ok, "{stdout}{stderr}");
    let path_s = path.to_str().unwrap();
    let mut check = vec!["trace-check", path_s];
    check.extend_from_slice(REQUIRED_SPANS);
    let (stdout, _, ok) = run(&check);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");
    // A span that never ran must fail the check.
    let (_, stderr, ok) = run(&["trace-check", path_s, "definitely.not.a.span"]);
    assert!(!ok);
    assert!(stderr.contains("missing spans"), "{stderr}");
    std::fs::remove_file(&path).ok();
    // Garbage input must fail cleanly, not panic.
    let garbage =
        std::env::temp_dir().join(format!("hlstb_cli_garbage_{}.json", std::process::id()));
    std::fs::write(&garbage, "not json at all").unwrap();
    let (_, stderr, ok) = run(&["trace-check", garbage.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("invalid JSON"), "{stderr}");
    std::fs::remove_file(&garbage).ok();
}

#[test]
fn table1_prints() {
    let (stdout, _, ok) = run(&["table1"]);
    assert!(ok);
    assert!(stdout.contains("LogicVision"));
}

const SWEEP_SMOKE: &[&str] = &[
    "sweep",
    "--designs",
    "figure1,tseng",
    "--strategies",
    "none,full-scan,bist-shared",
    "--grade",
    "64",
];

#[test]
fn sweep_renders_a_table_and_summary() {
    let (stdout, stderr, ok) = run(SWEEP_SMOKE);
    assert!(ok, "{stdout}{stderr}");
    // 2 designs x 3 strategies, one row each, plus the header.
    assert_eq!(stdout.lines().count(), 7, "{stdout}");
    assert!(stdout.contains("figure1"), "{stdout}");
    assert!(stdout.contains("tseng"), "{stdout}");
    assert!(stdout.contains("bist-shared"), "{stdout}");
    assert!(stderr.contains("sweep: 6 points (0 errors)"), "{stderr}");
    assert!(stderr.contains("cache hits:"), "{stderr}");
}

#[test]
fn sweep_json_is_identical_across_threads_and_cache() {
    let mut serial = SWEEP_SMOKE.to_vec();
    serial.extend_from_slice(&["--json", "--threads", "1", "--no-cache"]);
    let mut parallel = SWEEP_SMOKE.to_vec();
    parallel.extend_from_slice(&["--json", "--threads", "4", "--cache"]);
    let (a, _, ok_a) = run(&serial);
    let (b, stderr_b, ok_b) = run(&parallel);
    assert!(ok_a && ok_b, "{a}{b}");
    assert_eq!(a, b, "canonical sweep output must be run-invariant");
    assert!(hlstb::trace::json::parse(&a).is_ok(), "{a}");
    // The cached run actually hit the cache.
    assert!(!stderr_b.contains("cache hits: 0,"), "{stderr_b}");
}

#[test]
fn sweep_full_json_carries_the_run_envelope() {
    let mut args = SWEEP_SMOKE.to_vec();
    args.extend_from_slice(&["--full-json", "--threads", "2"]);
    let (stdout, _, ok) = run(&args);
    assert!(ok, "{stdout}");
    let v = hlstb::trace::json::parse(&stdout).expect("full json parses");
    assert_eq!(v.get("threads").and_then(|t| t.as_f64()), Some(2.0));
    assert!(v.get("cache").and_then(|c| c.get("hits")).is_some());
    let pts = v.get("points").and_then(|p| p.as_array()).unwrap();
    assert_eq!(pts.len(), 6);
    assert!(pts[0].get("wall_ms").is_some());
}

#[test]
fn sweep_rejects_bad_axis_values() {
    let (_, stderr, ok) = run(&["sweep", "--designs", "figure1,bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown design"), "{stderr}");
    let (_, stderr, ok) = run(&["sweep", "--strategies", "none,bogus"]);
    assert!(!ok);
    assert!(stderr.contains("bad strategy"), "{stderr}");
}
