//! End-to-end tests of the telemetry CLI surface: `sweep --events` /
//! `--events-canonical` / `--progress`, the `trace-view` journal
//! rollup, and the `perf-diff` regression gate.

use std::path::PathBuf;
use std::process::Command;

const SWEEP: &[&str] = &[
    "sweep",
    "--designs",
    "figure1,tseng",
    "--strategies",
    "none,full-scan,bist-shared",
    "--grade",
    "64",
];

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_hlstb"))
        .args(args)
        .env_remove("HLSTB_FAIL_POINT")
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hlstb_tel_{}_{name}", std::process::id()))
}

#[test]
fn sweep_events_journal_rolls_up_through_trace_view() {
    let full = temp("events.jsonl");
    let canon_a = temp("canon_a.jsonl");
    let canon_b = temp("canon_b.jsonl");
    let full_s = full.to_str().unwrap();

    let mut serial = SWEEP.to_vec();
    serial.extend([
        "--threads",
        "1",
        "--no-cache",
        "--events-canonical",
        canon_a.to_str().unwrap(),
    ]);
    let mut threaded = SWEEP.to_vec();
    threaded.extend([
        "--threads",
        "4",
        "--cache",
        "--progress",
        "--events",
        full_s,
        "--events-canonical",
        canon_b.to_str().unwrap(),
    ]);
    let (_, stderr_a, ok_a) = run(&serial);
    let (_, stderr_b, ok_b) = run(&threaded);
    assert!(ok_a, "{stderr_a}");
    assert!(ok_b, "{stderr_b}");
    // The progress meter rendered (purely cosmetic, stderr only).
    assert!(stderr_b.contains("pts/s"), "{stderr_b}");

    // The canonical projection is byte-identical across thread counts
    // and cache settings.
    let a = std::fs::read_to_string(&canon_a).unwrap();
    let b = std::fs::read_to_string(&canon_b).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "canonical journals must match");

    // The full journal rolls up: lifecycle totals, the stage table,
    // and the slowest-points list.
    let (view, stderr, ok) = run(&["trace-view", full_s, "--top", "3"]);
    assert!(ok, "{stderr}");
    assert!(view.contains("6 points"), "{view}");
    assert!(view.contains("point.completed"), "{view}");
    assert!(view.contains("stages:"), "{view}");
    assert!(view.contains("grading"), "{view}");
    assert!(view.contains("slowest points (top 3):"), "{view}");

    for p in [&full, &canon_a, &canon_b] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn trace_view_rejects_garbage_and_pointless_journals() {
    let bad = temp("bad.jsonl");
    std::fs::write(&bad, "{\"kind\": \"point.completed\"\nnot json\n").unwrap();
    let (_, stderr, ok) = run(&["trace-view", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unparseable"), "{stderr}");

    // Parseable but with no point-attributed records.
    std::fs::write(&bad, "{\"kind\": \"sweep.begin\", \"points\": 0}\n").unwrap();
    let (_, stderr, ok) = run(&["trace-view", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("no point records"), "{stderr}");
    std::fs::remove_file(&bad).ok();
}

#[test]
fn perf_diff_flags_regressions_beyond_tolerance() {
    let old = temp("old.json");
    let new = temp("new.json");
    std::fs::write(&old, "{\"speedup_x\": 5.0, \"wall_ms\": 100.0}\n").unwrap();

    // Within tolerance: ok.
    std::fs::write(&new, "{\"speedup_x\": 4.8, \"wall_ms\": 104.0}\n").unwrap();
    let (out, stderr, ok) = run(&["perf-diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    assert!(out.contains("speedup_x"), "{out}");

    // A speedup drop and a wall-time growth beyond tolerance both gate.
    std::fs::write(&new, "{\"speedup_x\": 2.0, \"wall_ms\": 250.0}\n").unwrap();
    let (out, stderr, ok) = run(&["perf-diff", old.to_str().unwrap(), new.to_str().unwrap()]);
    assert!(!ok);
    assert!(out.contains("REGRESSED"), "{out}");
    assert!(stderr.contains("speedup_x fell"), "{stderr}");
    assert!(stderr.contains("wall_ms grew"), "{stderr}");

    // A wide tolerance waves the same delta through.
    let (_, stderr, ok) = run(&[
        "perf-diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--tolerance",
        "200",
    ]);
    assert!(ok, "{stderr}");

    std::fs::remove_file(&old).ok();
    std::fs::remove_file(&new).ok();
}

#[test]
fn perf_diff_floor_gates_on_the_committed_floors_object() {
    let bench = temp("bench.json");
    let path = bench.to_str().unwrap();

    std::fs::write(
        &bench,
        "{\"speedup_x\": 5.0, \"floors\": {\"speedup_x\": 4.0}}\n",
    )
    .unwrap();
    let (out, stderr, ok) = run(&["perf-diff", "--floor", path]);
    assert!(ok, "{stderr}");
    assert!(out.contains("ok"), "{out}");

    std::fs::write(
        &bench,
        "{\"speedup_x\": 3.0, \"floors\": {\"speedup_x\": 4.0}}\n",
    )
    .unwrap();
    let (_, stderr, ok) = run(&["perf-diff", "--floor", path]);
    assert!(!ok);
    assert!(stderr.contains("below the floor"), "{stderr}");

    // A file without floors is an error, not a silent pass.
    std::fs::write(&bench, "{\"speedup_x\": 3.0}\n").unwrap();
    let (_, stderr, ok) = run(&["perf-diff", "--floor", path]);
    assert!(!ok);
    assert!(stderr.contains("no floors object"), "{stderr}");
    std::fs::remove_file(&bench).ok();
}

/// The committed BENCH artifacts themselves must satisfy their own
/// floors — the exact invocation ci.sh runs.
#[test]
fn committed_bench_artifacts_pass_their_floors() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let fsim = root.join("BENCH_fsim.json");
    let dse = root.join("BENCH_dse.json");
    let (out, stderr, ok) = run(&[
        "perf-diff",
        "--floor",
        fsim.to_str().unwrap(),
        dse.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(out.contains("speedup_soa512_vs_drop"), "{out}");
    assert!(out.contains("speedup_cache_vs_nocache"), "{out}");
}
