//! End-to-end robustness tests of `hlstb sweep`: fail-point injection
//! via `HLSTB_FAIL_POINT`, per-point budgets, and checkpoint/resume.

use std::path::PathBuf;
use std::process::Command;

const SWEEP: &[&str] = &[
    "sweep",
    "--designs",
    "figure1,tseng",
    "--strategies",
    "none,full-scan,bist-shared",
    "--grade",
    "64",
];

fn run_env(args: &[&str], env: &[(&str, &str)]) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hlstb"));
    cmd.args(args).env_remove("HLSTB_FAIL_POINT");
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hlstb_cli_{}_{name}.jsonl", std::process::id()))
}

#[test]
fn injected_failures_are_typed_isolated_and_deterministic() {
    let inject = [("HLSTB_FAIL_POINT", "panic:1;stall:3")];
    let (table, stderr, ok) = run_env(SWEEP, &inject);
    assert!(ok, "{stderr}");
    // 6 points, 2 injected hard failures (broken down by kind), 4
    // completions.
    assert!(
        stderr.contains("sweep: 6 points (2 errors [panic: 1, timeout: 1])"),
        "{stderr}"
    );
    assert!(table.contains("panic:"), "{table}");
    assert!(table.contains("timeout:"), "{table}");
    // The canonical JSON carries the typed records and stays
    // byte-identical across thread counts and cache settings.
    let mut serial = SWEEP.to_vec();
    serial.extend(["--json", "--threads", "1", "--no-cache"]);
    let mut parallel = SWEEP.to_vec();
    parallel.extend(["--json", "--threads", "4", "--cache"]);
    let (json_a, _, ok_a) = run_env(&serial, &inject);
    let (json_b, _, ok_b) = run_env(&parallel, &inject);
    assert!(ok_a && ok_b);
    assert_eq!(json_a, json_b, "injected failures broke determinism");
    assert!(json_a.contains("\"kind\": \"panic\""), "{json_a}");
    assert!(json_a.contains("\"kind\": \"timeout\""), "{json_a}");
}

#[test]
fn flaky_points_recover_via_retry() {
    let (_, stderr, ok) = run_env(SWEEP, &[("HLSTB_FAIL_POINT", "flaky:2")]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("sweep: 6 points (0 errors)"), "{stderr}");
    assert!(stderr.contains("1 retries"), "{stderr}");
}

#[test]
fn bad_fail_point_spec_is_rejected() {
    let (_, stderr, ok) = run_env(SWEEP, &[("HLSTB_FAIL_POINT", "explode:1")]);
    assert!(!ok);
    assert!(stderr.contains("bad fail-point mode"), "{stderr}");
}

#[test]
fn checkpoint_resume_reproduces_the_report_byte_for_byte() {
    let path = temp("resume");
    std::fs::remove_file(&path).ok();
    let path_s = path.to_str().unwrap();

    let mut baseline_args = SWEEP.to_vec();
    baseline_args.push("--json");
    let (baseline, _, ok) = run_env(&baseline_args, &[]);
    assert!(ok);

    let mut ckpt_args = baseline_args.clone();
    ckpt_args.extend(["--checkpoint", path_s]);
    let (full, _, ok) = run_env(&ckpt_args, &[]);
    assert!(ok);
    assert_eq!(full, baseline, "checkpointing must not perturb the report");
    assert_eq!(
        std::fs::read_to_string(&path).unwrap().lines().count(),
        6,
        "one checkpoint line per point"
    );

    // "Kill" the sweep after 3 points: truncate the checkpoint, resume.
    let text = std::fs::read_to_string(&path).unwrap();
    let kept: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, kept).unwrap();
    let mut resume_args = ckpt_args.clone();
    resume_args.push("--resume");
    let (resumed, stderr, ok) = run_env(&resume_args, &[]);
    assert!(ok, "{stderr}");
    assert_eq!(resumed, baseline, "resumed report must be byte-identical");
    assert!(stderr.contains("3 restored"), "{stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_without_checkpoint_is_an_error() {
    let (_, stderr, ok) = run_env(&["sweep", "--resume"], &[]);
    assert!(!ok);
    assert!(stderr.contains("--resume needs --checkpoint"), "{stderr}");
}

#[test]
fn point_budget_flag_reports_timeouts_without_hanging() {
    // A zero budget deterministically truncates a multi-batch grading
    // run after its first 64-pattern batch (the first batch always
    // runs, so the partial result is reproducible), leaving every
    // graded point with partial coverage flagged timed_out.
    let args = [
        "sweep",
        "--designs",
        "figure1,tseng",
        "--strategies",
        "full-scan",
        "--grade",
        "256",
        "--point-budget-ms",
        "0",
    ];
    let (table, stderr, ok) = run_env(&args, &[]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("sweep: 2 points (0 errors)"), "{stderr}");
    assert!(stderr.contains("2 timeouts"), "{stderr}");
    // Timed-out coverage is starred in the table.
    assert!(table.contains('*'), "{table}");
}
