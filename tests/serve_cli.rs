//! End-to-end tests of `hlstb serve` / `hlstb serve-client`: a real
//! daemon process, a real client, and the full durability story — a
//! `kill -9`-equivalent abort mid-request followed by a restart that
//! replays the journal byte-identically.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hlstb"))
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hlstb_serve_cli_{}_{name}", std::process::id()))
}

/// A running daemon child whose bound address was scraped off stderr.
struct DaemonProc {
    child: Child,
    addr: String,
}

impl DaemonProc {
    fn start(journal: &std::path::Path, env: &[(&str, &str)]) -> DaemonProc {
        let mut cmd = bin();
        cmd.args(["serve", "--listen", "127.0.0.1:0", "--journal"])
            .arg(journal)
            .stderr(Stdio::piped())
            .stdout(Stdio::null());
        for (k, v) in env {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("daemon spawns");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut reader = BufReader::new(stderr);
        let mut addr = None;
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            if let Some(bound) = line.trim_end().strip_prefix("serve: listening on ") {
                addr = Some(bound.to_string());
                break;
            }
            line.clear();
        }
        let addr = addr.expect("daemon printed its bound address");
        // Keep draining stderr so the daemon never blocks on the pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).unwrap_or(0) > 0 {
                sink.clear();
            }
        });
        DaemonProc { child, addr }
    }

    fn sigterm(&self) {
        // SIGTERM, by pid: the graceful-drain path under test.
        let _ = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status();
    }

    fn wait(mut self) -> std::process::ExitStatus {
        self.child.wait().expect("daemon reaps")
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

const AXES: &[&str] = &[
    "--designs",
    "figure1",
    "--strategies",
    "none,full-scan",
    "--grade",
    "64",
];

fn client(addr: &str, id: &str) -> (String, String, bool) {
    let out = bin()
        .args(["serve-client", "--connect", addr, "--id", id])
        .args(AXES)
        .output()
        .expect("client runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn completed_records(journal: &std::path::Path) -> Vec<String> {
    std::fs::read_to_string(journal)
        .expect("journal readable")
        .lines()
        .filter(|l| l.contains("\"kind\": \"completed\""))
        .map(str::to_string)
        .collect()
}

/// The acceptance story end to end: a daemon aborted mid-request (the
/// `kill -9` equivalent — no drain, no flush beyond what already hit
/// the journal) leaves an accepted-without-completed record; restarting
/// with `--replay-only` re-executes it and journals a `completed`
/// record byte-identical to an uninterrupted daemon's, then exits 0.
#[test]
fn kill_nine_mid_request_replays_byte_identically() {
    let clean_journal = temp("clean.jsonl");
    let crash_journal = temp("crash.jsonl");
    std::fs::remove_file(&clean_journal).ok();
    std::fs::remove_file(&crash_journal).ok();

    // Uninterrupted baseline, same request id.
    let daemon = DaemonProc::start(&clean_journal, &[]);
    let (report, stderr, ok) = client(&daemon.addr, "victim");
    assert!(ok, "{stderr}");
    assert!(report.contains("\"experiment\": \"dse_sweep\""));
    daemon.sigterm();
    assert!(daemon.wait().success(), "SIGTERM drain must exit 0");

    // Crashing daemon: aborts the instant `victim` is dequeued.
    let daemon = DaemonProc::start(
        &crash_journal,
        &[("HLSTB_SERVE_FAIL", "abort-after-accept:victim")],
    );
    let (_, _, ok) = client(&daemon.addr, "victim");
    assert!(!ok, "the client must see the connection die");
    let status = daemon.wait();
    assert!(!status.success(), "abort is not a clean exit");
    assert_eq!(completed_records(&crash_journal).len(), 0);
    assert!(
        std::fs::read_to_string(&crash_journal)
            .expect("journal survives the abort")
            .contains("\"kind\": \"accepted\""),
        "the accepted record must be durable before execution starts"
    );

    // Restart in replay-only mode: re-execute, journal, exit 0.
    let out = bin()
        .args(["serve", "--journal"])
        .arg(&crash_journal)
        .arg("--replay-only")
        .output()
        .expect("replay runs");
    assert!(out.status.success(), "replay-only must exit 0");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("replaying interrupted request `victim`"),
        "{stderr}"
    );

    let replayed = completed_records(&crash_journal);
    let baseline = completed_records(&clean_journal);
    assert_eq!(replayed.len(), 1);
    assert_eq!(
        replayed, baseline,
        "the replayed response must be byte-identical to the uninterrupted daemon's"
    );

    std::fs::remove_file(&clean_journal).ok();
    std::fs::remove_file(&crash_journal).ok();
}

/// SIGTERM during an in-flight request: the daemon finishes it, the
/// client gets its result, and the exit status is 0.
#[test]
fn sigterm_mid_request_drains_and_exits_zero() {
    let journal = temp("drain.jsonl");
    std::fs::remove_file(&journal).ok();
    let daemon = DaemonProc::start(&journal, &[]);
    let addr = daemon.addr.clone();
    let worker = std::thread::spawn(move || client(&addr, "drainee"));
    // Give the request time to be admitted, then pull the plug.
    std::thread::sleep(Duration::from_millis(300));
    daemon.sigterm();
    let (report, stderr, ok) = worker.join().expect("client thread");
    assert!(ok, "drain abandoned the in-flight request: {stderr}");
    assert!(report.contains("\"experiment\": \"dse_sweep\""));
    assert!(daemon.wait().success(), "drain must exit 0");
    assert_eq!(completed_records(&journal).len(), 1);
    std::fs::remove_file(&journal).ok();
}
