//! Fixed-seed golden grading results for every benchmark design: the
//! reference engine's detected counts are pinned, and the SoA engine
//! must reproduce the reference detected set exactly at every word
//! width. This is the whole-design half of the differential suite (the
//! random-netlist half lives in `crates/netlist/tests/soa_equivalence.rs`).

use hlstb::cdfg::benchmarks;
use hlstb::flow::{DftStrategy, SynthesisFlow};
use hlstb::netlist::fault::collapsed_faults;
use hlstb::netlist::fsim::{comb_fault_sim_opts, ParallelOptions, TestFrame};
use hlstb::netlist::word::WordWidth;

/// splitmix64 — self-contained so the pinned values depend on nothing
/// but this file.
fn frames(seed: u64, patterns: usize, pis: usize, ffs: usize) -> Vec<TestFrame> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..patterns.div_ceil(64))
        .map(|_| {
            TestFrame::new(
                (0..pis).map(|_| next()).collect(),
                (0..ffs).map(|_| next()).collect(),
            )
        })
        .collect()
}

/// (design, total collapsed faults, detected at 256 fixed-seed
/// patterns). Update deliberately when fault collapsing or the
/// benchmark designs change — never to paper over an engine
/// difference, which the width loop below would surface first.
const GOLDEN: &[(&str, usize, usize)] = &[
    ("figure1", 402, 349),
    ("diffeq", 802, 674),
    ("ewf", 1694, 1534),
    ("fir8", 948, 800),
    ("ar_lattice", 580, 503),
    ("iir_biquad", 586, 474),
    ("tseng", 440, 389),
    ("gcd", 598, 544),
    ("dct_lite", 670, 585),
];

#[test]
fn every_design_matches_golden_at_every_width() {
    let designs = benchmarks::all();
    assert_eq!(designs.len(), GOLDEN.len(), "golden table covers the suite");
    for (g, &(name, total, detected)) in designs.into_iter().zip(GOLDEN) {
        assert_eq!(g.name(), name, "golden table order");
        let d = SynthesisFlow::new(g)
            .strategy(DftStrategy::FullScan)
            .run()
            .unwrap();
        let nl = &d.expanded.netlist;
        let faults = collapsed_faults(nl);
        let frames = frames(
            0xD0A5_EED0 ^ name.len() as u64,
            256,
            nl.inputs().len(),
            nl.dffs().len(),
        );
        let reference = ParallelOptions {
            drop_detected: true,
            ..ParallelOptions::default()
        };
        let (base, _) = comb_fault_sim_opts(nl, &faults, &frames, &reference);
        assert_eq!(base.total, total, "{name}: fault universe");
        assert_eq!(base.detected.len(), detected, "{name}: reference detects");
        for width in WordWidth::ALL {
            let (got, stats) =
                comb_fault_sim_opts(nl, &faults, &frames, &ParallelOptions::soa(width));
            assert_eq!(got, base, "{name} at width {width}");
            assert!(!stats.timed_out, "{name} at width {width}");
        }
    }
}
