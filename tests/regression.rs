//! Golden-value regression tests: the synthesized shape of every
//! benchmark is pinned so unintended changes to scheduling, binding, or
//! DFT selection surface immediately. Update deliberately when an
//! algorithm improves — the shape tests in `crates/bench` guard the
//! directions that must not change.

use hlstb::cdfg::benchmarks;
use hlstb::flow::{DftStrategy, SynthesisFlow};

fn shape(name: &str, strategy: DftStrategy) -> (u32, usize, usize, bool) {
    let g = benchmarks::all()
        .into_iter()
        .find(|g| g.name() == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let d = SynthesisFlow::new(g).strategy(strategy).run().unwrap();
    (
        d.report.period,
        d.report.registers,
        d.report.scan_registers,
        d.report.sgraph_acyclic_after_scan,
    )
}

#[test]
fn figure1_shapes() {
    // Default flow uses minimal resources (one adder): five steps.
    assert_eq!(shape("figure1", DftStrategy::None), (5, 8, 0, true));
    assert_eq!(
        shape("figure1", DftStrategy::SimultaneousLoopAvoidance).2,
        0,
        "figure 1 must come out loop-free"
    );
}

#[test]
fn diffeq_shapes() {
    let (period, regs, scan, acyclic) = shape("diffeq", DftStrategy::BehavioralPartialScan);
    assert_eq!(period, 13);
    assert_eq!(regs, 10);
    assert!(acyclic);
    assert!((1..=4).contains(&scan), "{scan}");
}

#[test]
fn ewf_shapes() {
    let (period, regs, _, _) = shape("ewf", DftStrategy::None);
    // 34 ops on minimal resources: one multiplier serializes the 8 muls.
    assert_eq!(period, 35);
    assert!((11..=16).contains(&regs), "{regs}");
}

#[test]
fn loop_free_designs_scan_nothing_behaviorally() {
    for name in ["fir8", "tseng", "dct_lite", "ar_lattice"] {
        let (_, _, scan, acyclic) = shape(name, DftStrategy::BehavioralPartialScan);
        assert!(acyclic, "{name}");
        // Behavioral loops absent: any scan comes from assignment loops
        // only, and must be small.
        assert!(scan <= 2, "{name}: {scan}");
    }
}

#[test]
fn full_scan_always_scans_everything() {
    for g in benchmarks::all() {
        let d = SynthesisFlow::new(g.clone())
            .strategy(DftStrategy::FullScan)
            .run()
            .unwrap();
        assert_eq!(d.report.scan_registers, d.report.registers, "{}", g.name());
        assert!(d.report.sgraph_acyclic_after_scan, "{}", g.name());
    }
}

#[test]
fn gate_counts_are_stable_within_bounds() {
    // Coarse bounds: structural expansion should not silently explode.
    for (name, lo, hi) in [
        ("figure1", 150, 400),
        ("diffeq", 250, 700),
        ("ewf", 600, 1500),
        ("gcd", 250, 800),
    ] {
        let g = benchmarks::all()
            .into_iter()
            .find(|g| g.name() == name)
            .unwrap();
        let d = SynthesisFlow::new(g).run().unwrap();
        assert!(
            d.report.gates >= lo && d.report.gates <= hi,
            "{name}: {} gates outside [{lo}, {hi}]",
            d.report.gates
        );
    }
}

#[test]
fn bist_plans_cover_every_benchmark() {
    for g in benchmarks::all() {
        let d = SynthesisFlow::new(g.clone())
            .strategy(DftStrategy::BistShared)
            .run()
            .unwrap();
        let plan = d.bist_plan.expect("plan attached");
        // At least one generator and, where outputs exist, one compactor.
        assert!(
            plan.kind_of.iter().any(|k| k.generates()),
            "{}: no generator",
            g.name()
        );
        assert!(
            plan.kind_of.iter().any(|k| k.compacts()),
            "{}: no compactor",
            g.name()
        );
    }
}
