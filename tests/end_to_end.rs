//! Workspace integration tests: the full behavior → schedule → binding →
//! data path → gates pipeline, across crates, on every benchmark.

use std::collections::HashMap;

use hlstb::cdfg::benchmarks;
use hlstb::flow::{DftStrategy, RegisterPolicy, Scheduler, SynthesisFlow};
use hlstb::hls::expand::simulate_hw;
use hlstb::netlist::atpg::{generate_all, AtpgOptions};
use hlstb::netlist::fault::collapsed_faults;

fn streams_for(cdfg: &hlstb::cdfg::Cdfg, n: usize) -> HashMap<String, Vec<u64>> {
    cdfg.inputs()
        .map(|v| {
            let base = v.id.0 as u64 * 11 + 5;
            (
                v.name.clone(),
                (0..n as u64).map(|i| (base + 7 * i) & 0xf).collect(),
            )
        })
        .collect()
}

#[test]
fn every_strategy_builds_every_benchmark() {
    for g in benchmarks::all() {
        for strategy in [
            DftStrategy::None,
            DftStrategy::FullScan,
            DftStrategy::GateLevelPartialScan,
            DftStrategy::BehavioralPartialScan,
            DftStrategy::BistNaive,
            DftStrategy::BistShared,
            DftStrategy::KLevelTestPoints(1),
        ] {
            let d = SynthesisFlow::new(g.clone()).strategy(strategy).run();
            assert!(d.is_ok(), "{} with {strategy:?}: {:?}", g.name(), d.err());
        }
    }
}

#[test]
fn gate_level_equals_behavior_for_every_register_policy() {
    let g = benchmarks::diffeq();
    let streams = streams_for(&g, 5);
    let reference = g.evaluate(&streams, &HashMap::new(), 4);
    for policy in [
        RegisterPolicy::LeftEdge,
        RegisterPolicy::Dsatur,
        RegisterPolicy::IoMax,
        RegisterPolicy::Boundary,
        RegisterPolicy::LoopAvoiding,
        RegisterPolicy::Avra,
    ] {
        let d = SynthesisFlow::new(g.clone())
            .register_policy(policy)
            .run()
            .unwrap();
        let hw = simulate_hw(&d.expanded, &d.datapath, &streams);
        for o in g.outputs() {
            assert_eq!(hw[&o.name], reference[&o.name], "{policy:?}:{}", o.name);
        }
    }
}

#[test]
fn gate_level_equals_behavior_for_every_scheduler() {
    let g = benchmarks::ewf();
    let streams = streams_for(&g, 4);
    let reference = g.evaluate(&streams, &HashMap::new(), 4);
    for scheduler in [
        Scheduler::List,
        Scheduler::IoAware,
        Scheduler::ForceDirected(2),
        Scheduler::Asap,
    ] {
        let d = SynthesisFlow::new(g.clone())
            .scheduler(scheduler)
            .run()
            .unwrap();
        let hw = simulate_hw(&d.expanded, &d.datapath, &streams);
        for o in g.outputs() {
            assert_eq!(hw[&o.name], reference[&o.name], "{scheduler:?}:{}", o.name);
        }
    }
}

#[test]
fn scan_marks_do_not_change_function() {
    let g = benchmarks::ar_lattice();
    let streams = streams_for(&g, 5);
    let plain = SynthesisFlow::new(g.clone()).run().unwrap();
    let scanned = SynthesisFlow::new(g.clone())
        .strategy(DftStrategy::BehavioralPartialScan)
        .run()
        .unwrap();
    let a = simulate_hw(&plain.expanded, &plain.datapath, &streams);
    let b = simulate_hw(&scanned.expanded, &scanned.datapath, &streams);
    for o in g.outputs() {
        assert_eq!(a[&o.name], b[&o.name], "{}", o.name);
    }
}

#[test]
fn full_scan_restores_combinational_atpg_coverage() {
    // The central DFT promise: with every register scannable, plain
    // combinational ATPG tests the whole data path.
    let g = benchmarks::tseng();
    let d = SynthesisFlow::new(g)
        .strategy(DftStrategy::FullScan)
        .run()
        .unwrap();
    let nl = d.expanded.netlist.clone().with_full_scan(); // controller too
    let faults = collapsed_faults(&nl);
    let run = generate_all(
        &nl,
        &faults,
        &AtpgOptions {
            backtrack_limit: 5_000,
        },
    );
    assert!(run.aborted == 0, "aborted {}", run.aborted);
    assert!(
        run.efficiency_percent() > 99.9,
        "efficiency {:.2}",
        run.efficiency_percent()
    );
    assert!(
        run.coverage_percent() > 90.0,
        "coverage {:.2}",
        run.coverage_percent()
    );
}

#[test]
fn behavioral_scan_beats_no_scan_on_sequential_atpg() {
    use hlstb::netlist::seq::{seq_generate_all, SeqAtpgOptions};
    let g = benchmarks::iir_biquad();
    let plain = SynthesisFlow::new(g.clone()).run().unwrap();
    let scanned = SynthesisFlow::new(g)
        .strategy(DftStrategy::BehavioralPartialScan)
        .run()
        .unwrap();
    let opts = SeqAtpgOptions {
        max_frames: 4,
        backtrack_limit: 200,
    };
    let sample = 30;
    let f1 = collapsed_faults(&plain.expanded.netlist);
    let r1 = seq_generate_all(&plain.expanded.netlist, &f1[..sample.min(f1.len())], &opts);
    let f2 = collapsed_faults(&scanned.expanded.netlist);
    let r2 = seq_generate_all(
        &scanned.expanded.netlist,
        &f2[..sample.min(f2.len())],
        &opts,
    );
    assert!(
        r2.coverage_percent() >= r1.coverage_percent(),
        "scan {:.1} vs plain {:.1}",
        r2.coverage_percent(),
        r1.coverage_percent()
    );
}

#[test]
fn table1_is_complete() {
    let t = hlstb::tools::table1();
    assert_eq!(t.len(), 7);
    assert!(hlstb::tools::render_table1().lines().count() >= 10);
}
