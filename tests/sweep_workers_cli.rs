//! End-to-end tests of `hlstb sweep --workers N`: real `sweep-worker`
//! child processes over stdin/stdout pipes, spliced byte-identically
//! to a serial in-process run, surviving an injected worker kill
//! (`HLSTB_WORKER_FAIL`) and composing with `HLSTB_FAIL_POINT`.

use std::process::Command;

fn run_env(args: &[&str], env: &[(&str, &str)]) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hlstb"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

const SMALL: &[&str] = &[
    "sweep",
    "--designs",
    "figure1,tseng",
    "--strategies",
    "none,full-scan,bist-shared",
    "--grade",
    "64",
    "--json",
];

fn with<'a>(extra: &'a [&'a str]) -> Vec<&'a str> {
    SMALL.iter().chain(extra).copied().collect()
}

#[test]
fn workers_sweep_is_byte_identical_to_serial_uncached() {
    let (serial, _, ok) = run_env(&with(&["--no-cache"]), &[]);
    assert!(ok);
    let (sharded, stderr, ok) = run_env(&with(&["--workers", "4"]), &[]);
    assert!(ok, "{stderr}");
    assert_eq!(serial, sharded, "worker splice diverged from serial run");
    assert!(
        stderr.contains("4 workers"),
        "summary lacks worker count: {stderr}"
    );
}

#[test]
fn a_killed_worker_process_is_reissued_byte_identically() {
    let (serial, _, ok) = run_env(&with(&["--no-cache"]), &[]);
    assert!(ok);
    // The only worker tears its stream after one point, which is
    // deterministic (a multi-lane kill depends on lease timing): its
    // outstanding lease re-issues, and with no lanes left the
    // coordinator finishes inline — still byte-identical.
    let (sharded, stderr, ok) =
        run_env(&with(&["--workers", "1"]), &[("HLSTB_WORKER_FAIL", "0:1")]);
    assert!(ok, "{stderr}");
    assert_eq!(serial, sharded, "splice diverged after worker kill");
    assert!(
        stderr.contains("re-issuing"),
        "no lease re-issue reported: {stderr}"
    );
    assert!(
        stderr.contains("no live workers"),
        "inline fallback not reported: {stderr}"
    );
}

#[test]
fn a_kill_among_surviving_workers_stays_byte_identical() {
    let (serial, _, ok) = run_env(&with(&["--no-cache"]), &[]);
    assert!(ok);
    // Whether worker 1 ever receives a second lease (and hence dies)
    // is timing-dependent; byte-identity must hold either way.
    let (sharded, stderr, ok) =
        run_env(&with(&["--workers", "3"]), &[("HLSTB_WORKER_FAIL", "1:1")]);
    assert!(ok, "{stderr}");
    assert_eq!(serial, sharded, "splice diverged after worker kill");
}

#[test]
fn fail_point_injection_composes_with_workers() {
    let env = [("HLSTB_FAIL_POINT", "panic:1;stall:3")];
    let (serial, serial_err, ok) = run_env(&with(&["--no-cache"]), &env);
    assert!(ok, "{serial_err}");
    let (sharded, stderr, ok) = run_env(&with(&["--workers", "2"]), &env);
    assert!(ok, "{stderr}");
    assert_eq!(serial, sharded);
    // The injected failures survive the wire as typed errors.
    assert!(stderr.contains("2 errors"), "summary: {stderr}");
    assert!(stderr.contains("panic: 1"), "summary: {stderr}");
    assert!(stderr.contains("timeout: 1"), "summary: {stderr}");
}

#[test]
fn sweep_worker_without_a_coordinator_exits_cleanly_on_eof() {
    // Closing stdin before the hello is a vanished coordinator: the
    // worker exits 0 without writing anything.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hlstb"));
    let out = cmd
        .arg("sweep-worker")
        .stdin(std::process::Stdio::null())
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    assert!(out.stdout.is_empty());
}

#[test]
fn sweep_worker_rejects_garbage_with_a_typed_error() {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_hlstb"))
        .arg("sweep-worker")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"this is not a frame\n")
        .expect("write garbage");
    let out = child.wait_with_output().expect("worker exits");
    assert!(!out.status.success(), "garbage must not be accepted");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("sweep-worker: io:"), "stderr: {stderr}");
}
