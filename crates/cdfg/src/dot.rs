//! Graphviz DOT export for CDFGs.

use std::fmt::Write as _;

use crate::graph::{Cdfg, VarKind};

/// Renders the CDFG as a Graphviz `digraph`.
///
/// Operations are boxes labelled with their mnemonic; primary inputs and
/// outputs are ellipses; loop-carried edges are dashed and annotated with
/// their inter-iteration distance.
///
/// # Example
///
/// ```
/// let g = hlstb_cdfg::benchmarks::figure1();
/// let dot = hlstb_cdfg::dot::to_dot(&g);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("+"));
/// ```
pub fn to_dot(cdfg: &Cdfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", cdfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for v in cdfg.vars() {
        match v.kind {
            VarKind::Input => {
                let _ = writeln!(out, "  {} [label=\"{}\", shape=ellipse];", v.id, v.name);
            }
            VarKind::Output => {
                let _ = writeln!(
                    out,
                    "  {} [label=\"{}\", shape=ellipse, peripheries=2];",
                    v.id, v.name
                );
            }
            _ => {}
        }
    }
    for op in cdfg.ops() {
        let _ = writeln!(
            out,
            "  {} [label=\"{} ({})\", shape=box];",
            op.id,
            op.kind.mnemonic(),
            cdfg.var(op.output).name
        );
    }
    for op in cdfg.ops() {
        for operand in &op.inputs {
            let v = cdfg.var(operand.var);
            let style = if operand.distance > 0 {
                format!(" [style=dashed, label=\"z-{}\"]", operand.distance)
            } else {
                String::new()
            };
            match (v.kind, v.def) {
                (_, Some(def)) => {
                    let _ = writeln!(out, "  {} -> {}{};", def, op.id, style);
                }
                (VarKind::Input, None) => {
                    let _ = writeln!(out, "  {} -> {}{};", v.id, op.id, style);
                }
                _ => {} // constants are left implicit
            }
        }
        let outv = cdfg.var(op.output);
        if outv.kind == VarKind::Output {
            let _ = writeln!(out, "  {} -> {};", op.id, outv.id);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn dot_contains_all_ops() {
        let g = benchmarks::diffeq();
        let dot = to_dot(&g);
        for op in g.ops() {
            assert!(dot.contains(&op.id.to_string()));
        }
        // Loop-carried edges are dashed.
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn dot_is_balanced() {
        let g = benchmarks::fir(4);
        let dot = to_dot(&g);
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
