//! The classic high-level-synthesis benchmark behaviors the surveyed
//! papers evaluate on, plus a seeded random CDFG generator.
//!
//! All builders are deterministic; the experiments in `hlstb-bench`
//! sweep over [`all`].

use rand::Rng;

use crate::builder::CdfgBuilder;
use crate::graph::Cdfg;
use crate::ids::VarId;
use crate::op::OpKind;

/// The CDFG of Figure 1 of the survey: two addition chains
/// (`+1 → +2 → +5` and `+3 → +4`) over eight primary inputs.
///
/// Under a 3-step, 2-adder constraint, the schedule/assignment
/// `{+1:(1,A1), +2:(2,A2), +3:(2,A1), +4:(3,A2), +5:(3,A1)}` creates the
/// assignment loop `RA1 → RA2 → RA1` of Figure 1(b), while
/// `{+1:(1,A1), +2:(2,A1), +3:(1,A2), +4:(2,A2), +5:(3,A1)}` yields only
/// self-loops (Figure 1(c)). Experiment F1 re-derives both.
pub fn figure1() -> Cdfg {
    let mut b = CdfgBuilder::new("figure1");
    let a = b.input("a");
    let bb = b.input("b");
    let d = b.input("d");
    let f = b.input("f");
    let p = b.input("p");
    let q = b.input("q");
    let s = b.input("s");
    let c = b.op(OpKind::Add, &[a, bb], "c"); // +1
    let e = b.op(OpKind::Add, &[c, d], "e"); // +2
    let r = b.op(OpKind::Add, &[p, q], "r"); // +3
    let _t = b.op_output(OpKind::Add, &[r, s], "t"); // +4
    let _g = b.op_output(OpKind::Add, &[e, f], "g"); // +5
    b.finish().expect("figure1 is valid")
}

/// The HAL differential-equation benchmark (Paulin & Knight):
/// one Euler integration step of `y'' + 3xy' + 3y = 0`.
///
/// Six multiplications, two additions, two subtractions and one
/// comparison; the states `x`, `y` and `u` are loop-carried, so the CDFG
/// has behavioral loops that scan-variable selection must break.
pub fn diffeq() -> Cdfg {
    let mut b = CdfgBuilder::new("diffeq");
    let dx = b.input("dx");
    let a = b.input("a");
    let three = b.constant(3);
    let x_prev = b.forward("x_prev", 1);
    let y_prev = b.forward("y_prev", 1);
    let u_prev = b.forward("u_prev", 1);

    let m1 = b.op(OpKind::Mul, &[three, x_prev], "m1"); // 3x
    let m2 = b.op(OpKind::Mul, &[u_prev, dx], "m2"); // u·dx
    let m3 = b.op(OpKind::Mul, &[m1, m2], "m3"); // 3x·u·dx
    let m4 = b.op(OpKind::Mul, &[three, y_prev], "m4"); // 3y
    let m5 = b.op(OpKind::Mul, &[m4, dx], "m5"); // 3y·dx
    let s1 = b.op(OpKind::Sub, &[u_prev, m3], "s1"); // u − 3xu·dx
    let u_next = b.op_output(OpKind::Sub, &[s1, m5], "u"); // − 3y·dx
    let m6 = b.op(OpKind::Mul, &[u_prev, dx], "m6"); // u·dx (second use)
    let y_next = b.op_output(OpKind::Add, &[y_prev, m6], "y"); // y + u·dx
    let x_next = b.op_output(OpKind::Add, &[x_prev, dx], "x"); // x + dx
    let _c = b.op_output(OpKind::Lt, &[x_next, a], "c"); // x < a

    b.bind_forward(x_prev, x_next);
    b.bind_forward(y_prev, y_next);
    b.bind_forward(u_prev, u_next);
    b.finish().expect("diffeq is valid")
}

/// A fifth-order elliptic wave filter in the style of the classic EWF
/// benchmark: 26 additions, 8 multiplications, 8 loop-carried states.
///
/// The exact published EWF adjacency is reproduced in *shape* (op mix,
/// state count, longest path ≈ 14 additions), which is what the surveyed
/// scheduling/assignment results depend on.
pub fn ewf() -> Cdfg {
    let mut b = CdfgBuilder::new("ewf");
    let x = b.input("x");
    // Filter coefficients as constants (values are placeholders; the
    // structure, not the coefficients, drives synthesis).
    let k: Vec<VarId> = (0..8).map(|i| b.constant(2 + i as u64)).collect();
    // Eight delay states.
    let sv: Vec<VarId> = (0..8)
        .map(|i| b.forward(format!("sv{i}_prev"), 1))
        .collect();

    // Input section.
    let a1 = b.op(OpKind::Add, &[x, sv[0]], "a1");
    let a2 = b.op(OpKind::Add, &[a1, sv[1]], "a2");
    let m1 = b.op(OpKind::Mul, &[a2, k[0]], "m1");
    let a3 = b.op(OpKind::Add, &[m1, sv[0]], "a3");
    let a4 = b.op(OpKind::Add, &[a3, sv[2]], "a4");
    let m2 = b.op(OpKind::Mul, &[a4, k[1]], "m2");
    let a5 = b.op(OpKind::Add, &[m2, a1], "a5");
    let a6 = b.op(OpKind::Add, &[a5, sv[3]], "a6");

    // Middle ladder.
    let m3 = b.op(OpKind::Mul, &[a6, k[2]], "m3");
    let a7 = b.op(OpKind::Add, &[m3, sv[2]], "a7");
    let a8 = b.op(OpKind::Add, &[a7, sv[4]], "a8");
    let m4 = b.op(OpKind::Mul, &[a8, k[3]], "m4");
    let a9 = b.op(OpKind::Add, &[m4, a5], "a9");
    let a10 = b.op(OpKind::Add, &[a9, sv[5]], "a10");
    let m5 = b.op(OpKind::Mul, &[a10, k[4]], "m5");
    let a11 = b.op(OpKind::Add, &[m5, sv[4]], "a11");
    let a12 = b.op(OpKind::Add, &[a11, sv[6]], "a12");

    // Output section.
    let m6 = b.op(OpKind::Mul, &[a12, k[5]], "m6");
    let a13 = b.op(OpKind::Add, &[m6, a9], "a13");
    let a14 = b.op(OpKind::Add, &[a13, sv[7]], "a14");
    let m7 = b.op(OpKind::Mul, &[a14, k[6]], "m7");
    let a15 = b.op(OpKind::Add, &[m7, sv[6]], "a15");
    let a16 = b.op(OpKind::Add, &[a15, a12], "a16");
    let m8 = b.op(OpKind::Mul, &[a16, k[7]], "m8");
    let a17 = b.op(OpKind::Add, &[m8, a13], "a17");
    let y = b.op_output(OpKind::Add, &[a17, sv[7]], "y");

    // State updates (eight additions).
    let n0 = b.op(OpKind::Add, &[a3, sv[1]], "sv0_next");
    let n1 = b.op(OpKind::Add, &[a2, sv[0]], "sv1_next");
    let n2 = b.op(OpKind::Add, &[a7, sv[3]], "sv2_next");
    let n3 = b.op(OpKind::Add, &[a6, sv[2]], "sv3_next");
    let n4 = b.op(OpKind::Add, &[a11, sv[5]], "sv4_next");
    let n5 = b.op(OpKind::Add, &[a10, sv[4]], "sv5_next");
    let n6 = b.op(OpKind::Add, &[a15, sv[7]], "sv6_next");
    let n7 = b.op(OpKind::Add, &[y, sv[6]], "sv7_next");
    for (fwd, next) in sv.iter().zip([n0, n1, n2, n3, n4, n5, n6, n7]) {
        b.bind_forward(*fwd, next);
    }
    b.finish().expect("ewf is valid")
}

/// An `n`-tap FIR filter: `y(t) = Σ c_i · x(t − i)`.
///
/// The delay line is expressed with increasing inter-iteration distances
/// on the single input variable, so the CDFG is loop-free — a useful
/// contrast workload for the loop-breaking experiments.
///
/// # Panics
///
/// Panics if `taps == 0`.
pub fn fir(taps: usize) -> Cdfg {
    assert!(taps > 0, "FIR needs at least one tap");
    let mut b = CdfgBuilder::new(format!("fir{taps}"));
    let x = b.input("x");
    let mut acc: Option<VarId> = None;
    for i in 0..taps {
        let c = b.constant(1 + i as u64);
        // x delayed i iterations: direct delayed read of the input.
        let xi = if i == 0 {
            x
        } else {
            let f = b.forward(format!("x_d{i}"), i as u32);
            b.bind_forward(f, x);
            f
        };
        let prod = b.op(OpKind::Mul, &[xi, c], format!("p{i}"));
        acc = Some(match acc {
            None => prod,
            Some(a) => b.op(OpKind::Add, &[a, prod], format!("s{i}")),
        });
    }
    let acc = acc.expect("taps > 0");
    let y = b.op_output(OpKind::Pass, &[acc], "y");
    let _ = y;
    b.finish().expect("fir is valid")
}

/// A two-stage autoregressive lattice filter.
///
/// Forward/backward recurrences `f_i = f_{i-1} − k_i·b_{i-1}(n−1)` and
/// `b_i = b_{i-1}(n−1) + k_i·f_i` give two loop-carried states and four
/// multiplications — the "AR lattice" workload of the surveyed papers.
pub fn ar_lattice() -> Cdfg {
    let mut b = CdfgBuilder::new("ar_lattice");
    let x = b.input("x");
    let k1 = b.constant(3);
    let k2 = b.constant(5);
    let b0_prev = b.forward("b0_prev", 1);
    let b1_prev = b.forward("b1_prev", 1);

    let m1 = b.op(OpKind::Mul, &[k1, b0_prev], "m1");
    let f1 = b.op(OpKind::Sub, &[x, m1], "f1");
    let m2 = b.op(OpKind::Mul, &[k1, f1], "m2");
    let b1 = b.op(OpKind::Add, &[b0_prev, m2], "b1");
    let m3 = b.op(OpKind::Mul, &[k2, b1_prev], "m3");
    let f2 = b.op_output(OpKind::Sub, &[f1, m3], "f2");
    let m4 = b.op(OpKind::Mul, &[k2, f2], "m4");
    let b2 = b.op_output(OpKind::Add, &[b1_prev, m4], "b2");
    let _ = b2;
    // Stage-0 backward value is the input itself, delayed.
    let b0 = b.op(OpKind::Pass, &[x], "b0");
    b.bind_forward(b0_prev, b0);
    b.bind_forward(b1_prev, b1);
    b.finish().expect("ar_lattice is valid")
}

/// A direct-form-II IIR biquad: `w = x − a1·w(n−1) − a2·w(n−2)`,
/// `y = b0·w + b1·w(n−1) + b2·w(n−2)`.
///
/// The distance-2 read of `w` exercises lifetimes that span a whole
/// iteration, and the two behavioral loops through `w` have different
/// total distances.
pub fn iir_biquad() -> Cdfg {
    let mut b = CdfgBuilder::new("iir_biquad");
    let x = b.input("x");
    let a1 = b.constant(3);
    let a2 = b.constant(2);
    let c0 = b.constant(4);
    let c1 = b.constant(6);
    let c2 = b.constant(7);
    let w1 = b.forward("w_d1", 1);
    let w2 = b.forward("w_d2", 2);

    let t1 = b.op(OpKind::Mul, &[a1, w1], "t1");
    let t2 = b.op(OpKind::Mul, &[a2, w2], "t2");
    let s1 = b.op(OpKind::Sub, &[x, t1], "s1");
    let w = b.op(OpKind::Sub, &[s1, t2], "w");
    let u0 = b.op(OpKind::Mul, &[c0, w], "u0");
    let u1 = b.op(OpKind::Mul, &[c1, w1], "u1");
    let u2 = b.op(OpKind::Mul, &[c2, w2], "u2");
    let s2 = b.op(OpKind::Add, &[u0, u1], "s2");
    let _y = b.op_output(OpKind::Add, &[s2, u2], "y");
    b.bind_forward(w1, w);
    b.bind_forward(w2, w);
    b.finish().expect("iir_biquad is valid")
}

/// The Tseng & Siewiorek facet benchmark shape: a small mixed
/// arithmetic/logic dataflow (three additions, logic ops, one division
/// approximated by shift) over shared variables.
pub fn tseng() -> Cdfg {
    let mut b = CdfgBuilder::new("tseng");
    let v1 = b.input("r1");
    let v2 = b.input("r2");
    let v3 = b.input("r3");
    let v4 = b.input("r4");
    let one = b.constant(1);

    let t1 = b.op(OpKind::Add, &[v1, v2], "t1");
    let t2 = b.op(OpKind::And, &[v3, v4], "t2");
    let t3 = b.op(OpKind::Add, &[t1, t2], "t3");
    let t4 = b.op(OpKind::Or, &[t1, v4], "t4");
    let t5 = b.op(OpKind::Shr, &[t3, one], "t5"); // division by 2
    let t6 = b.op(OpKind::Add, &[t4, t5], "t6");
    let _o1 = b.op_output(OpKind::Xor, &[t6, t2], "o1");
    let _o2 = b.op_output(OpKind::Pass, &[t5], "o2");
    b.finish().expect("tseng is valid")
}

/// Parameters for [`random_cdfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomCdfgParams {
    /// Number of operations.
    pub ops: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of loop-carried state variables (each adds a behavioral
    /// loop of distance 1).
    pub states: usize,
    /// Percentage (0–100) of multiply operations; the rest are adds and
    /// subs.
    pub mul_percent: u8,
}

impl Default for RandomCdfgParams {
    fn default() -> Self {
        RandomCdfgParams {
            ops: 24,
            inputs: 4,
            states: 3,
            mul_percent: 30,
        }
    }
}

/// Generates a seeded random data-flow graph with the requested mix.
///
/// Operations read uniformly from earlier results, primary inputs, and
/// state variables; `states` designated results update the states,
/// closing behavioral loops. Useful for scaling sweeps beyond the fixed
/// benchmark set.
///
/// # Panics
///
/// Panics if `ops == 0`, `inputs == 0`, or `mul_percent > 100`.
pub fn random_cdfg<R: Rng>(params: RandomCdfgParams, rng: &mut R) -> Cdfg {
    assert!(params.ops > 0 && params.inputs > 0);
    assert!(params.mul_percent <= 100);
    assert!(
        params.states < params.ops,
        "need one op per state update plus an output"
    );
    let mut b = CdfgBuilder::new(format!(
        "rand_o{}_i{}_s{}",
        params.ops, params.inputs, params.states
    ));
    let inputs: Vec<VarId> = (0..params.inputs)
        .map(|i| b.input(format!("in{i}")))
        .collect();
    let states: Vec<VarId> = (0..params.states)
        .map(|i| b.forward(format!("st{i}_prev"), 1))
        .collect();
    let mut pool: Vec<VarId> = inputs.clone();
    pool.extend(&states);
    let mut results = Vec::new();
    for i in 0..params.ops {
        let kind = if rng.gen_range(0..100) < params.mul_percent as u32 {
            OpKind::Mul
        } else if rng.gen_bool(0.5) {
            OpKind::Add
        } else {
            OpKind::Sub
        };
        let a = pool[rng.gen_range(0..pool.len())];
        let c = pool[rng.gen_range(0..pool.len())];
        let out = b.op(kind, &[a, c], format!("n{i}"));
        pool.push(out);
        results.push(out);
    }
    // Last `states` results update the states; the final result is the
    // primary output.
    for (s, &r) in states.iter().zip(results.iter().rev().skip(1)) {
        b.bind_forward(*s, r);
    }
    let last = *results.last().expect("ops > 0");
    b.mark_output(last);
    b.finish().expect("random CDFG is valid by construction")
}

/// One data-flow iteration of Euclid's GCD: `a' = a > b ? a − b : a`,
/// `b' = a > b ? b : b − a`, with `done = (a == b)`.
///
/// The survey's §7 notes the proposed techniques target data-flow
/// designs and struggle with control flow; this benchmark carries its
/// control flow as `Select` operations in the data path — comparisons,
/// selects, and two interlocking behavioral loops.
pub fn gcd() -> Cdfg {
    let mut b = CdfgBuilder::new("gcd");
    let a0 = b.input("a_in");
    let b0 = b.input("b_in");
    let load = b.input("load");
    let a_prev = b.forward("a_prev", 1);
    let b_prev = b.forward("b_prev", 1);

    // Muxed restart: load selects fresh inputs.
    let a = b.op(OpKind::Select, &[load, a0, a_prev], "a");
    let bb = b.op(OpKind::Select, &[load, b0, b_prev], "b");
    let gt = b.op(OpKind::Lt, &[bb, a], "gt"); // b < a  ⇔  a > b
    let eq = b.op(OpKind::Eq, &[a, bb], "eq");
    let d1 = b.op(OpKind::Sub, &[a, bb], "d1");
    let d2 = b.op(OpKind::Sub, &[bb, a], "d2");
    // Subtract the smaller from the larger; hold both once equal.
    let hold_b = b.op(OpKind::Or, &[gt, eq], "hold_b");
    let a_next = b.op_output(OpKind::Select, &[gt, d1, a], "a_next");
    let b_next = b.op_output(OpKind::Select, &[hold_b, bb, d2], "b_next");
    let _done = b.op_output(OpKind::Pass, &[eq], "done");
    b.bind_forward(a_prev, a_next);
    b.bind_forward(b_prev, b_next);
    b.finish().expect("gcd is valid")
}

/// A 4-point DCT-style butterfly stage: loop-free, multiplier-heavy —
/// the arithmetic-BIST-friendly end of the workload spectrum.
pub fn dct_lite() -> Cdfg {
    let mut b = CdfgBuilder::new("dct_lite");
    let x: Vec<VarId> = (0..4).map(|i| b.input(format!("x{i}"))).collect();
    let c1 = b.constant(3);
    let c2 = b.constant(5);
    let s0 = b.op(OpKind::Add, &[x[0], x[3]], "s0");
    let s1 = b.op(OpKind::Add, &[x[1], x[2]], "s1");
    let d0 = b.op(OpKind::Sub, &[x[0], x[3]], "d0");
    let d1 = b.op(OpKind::Sub, &[x[1], x[2]], "d1");
    let _y0 = b.op_output(OpKind::Add, &[s0, s1], "y0");
    let _y2 = b.op_output(OpKind::Sub, &[s0, s1], "y2");
    let m0 = b.op(OpKind::Mul, &[d0, c1], "m0");
    let m1 = b.op(OpKind::Mul, &[d1, c2], "m1");
    let m2 = b.op(OpKind::Mul, &[d0, c2], "m2");
    let m3 = b.op(OpKind::Mul, &[d1, c1], "m3");
    let _y1 = b.op_output(OpKind::Add, &[m0, m1], "y1");
    let _y3 = b.op_output(OpKind::Sub, &[m2, m3], "y3");
    b.finish().expect("dct_lite is valid")
}

/// The deterministic benchmark suite used by the experiments: Figure 1,
/// diffeq, EWF, FIR-8, AR lattice, IIR biquad, Tseng, GCD, and the DCT
/// butterfly.
pub fn all() -> Vec<Cdfg> {
    vec![
        figure1(),
        diffeq(),
        ewf(),
        fir(8),
        ar_lattice(),
        iir_biquad(),
        tseng(),
        gcd(),
        dct_lite(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure1_shape() {
        let g = figure1();
        assert_eq!(g.num_ops(), 5);
        assert_eq!(g.inputs().count(), 7);
        assert_eq!(g.outputs().count(), 2);
        assert!(g.loops(8).is_empty());
    }

    #[test]
    fn diffeq_shape_and_loops() {
        let g = diffeq();
        assert_eq!(g.num_ops(), 11);
        let muls = g.ops().filter(|o| o.kind == OpKind::Mul).count();
        assert_eq!(muls, 6);
        // x, y and u recurrences: at least three behavioral loops.
        assert!(g.loops(32).len() >= 3);
    }

    #[test]
    fn ewf_shape() {
        let g = ewf();
        let adds = g.ops().filter(|o| o.kind == OpKind::Add).count();
        let muls = g.ops().filter(|o| o.kind == OpKind::Mul).count();
        assert_eq!(adds, 26);
        assert_eq!(muls, 8);
        assert!(!g.loops(64).is_empty());
    }

    #[test]
    fn fir_is_loop_free() {
        let g = fir(8);
        assert!(g.loops(16).is_empty());
        assert_eq!(g.ops().filter(|o| o.kind == OpKind::Mul).count(), 8);
    }

    #[test]
    fn iir_biquad_has_distance_two_loop() {
        let g = iir_biquad();
        let loops = g.loops(16);
        assert!(loops.iter().any(|l| l.total_distance == 2));
        assert!(loops.iter().any(|l| l.total_distance == 1));
    }

    #[test]
    fn random_cdfg_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let g1 = random_cdfg(RandomCdfgParams::default(), &mut r1);
        let g2 = random_cdfg(RandomCdfgParams::default(), &mut r2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn random_cdfg_respects_state_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = RandomCdfgParams {
            ops: 30,
            inputs: 3,
            states: 5,
            mul_percent: 20,
        };
        let g = random_cdfg(p, &mut rng);
        assert!(!g.loops(64).is_empty());
        assert_eq!(g.num_ops(), 30);
    }

    #[test]
    fn gcd_converges_behaviorally() {
        use std::collections::HashMap;
        let g = gcd();
        // load=1 on the first iteration, then iterate.
        let n = 12;
        let mut streams = HashMap::new();
        streams.insert("a_in".to_string(), vec![48u64; n]);
        streams.insert("b_in".to_string(), vec![36u64; n]);
        let mut load = vec![0u64; n];
        load[0] = 1;
        streams.insert("load".to_string(), load);
        let out = g.evaluate(&streams, &HashMap::new(), 8);
        // Euclid reaches gcd(48, 36) = 12 and sticks there.
        assert_eq!(*out["a_next"].last().unwrap(), 12);
        assert_eq!(*out["b_next"].last().unwrap(), 12);
        assert_eq!(*out["done"].last().unwrap(), 1);
        // And stays converged once done.
        let first_done = out["done"].iter().position(|&d| d == 1).unwrap();
        for (t, &d) in out["done"].iter().enumerate().skip(first_done) {
            assert_eq!(d, 1, "lost convergence at {t}");
        }
    }

    #[test]
    fn gcd_has_behavioral_loops() {
        let g = gcd();
        assert!(!g.loops(64).is_empty());
    }

    #[test]
    fn dct_lite_is_loop_free_and_multiplier_heavy() {
        let g = dct_lite();
        assert!(g.loops(16).is_empty());
        assert_eq!(g.ops().filter(|o| o.kind == OpKind::Mul).count(), 4);
        assert_eq!(g.outputs().count(), 4);
    }

    #[test]
    fn all_benchmarks_validate_and_evaluate() {
        use std::collections::HashMap;
        for g in all() {
            let streams: HashMap<String, Vec<u64>> = g
                .inputs()
                .map(|v| (v.name.clone(), vec![1, 2, 3]))
                .collect();
            let out = g.evaluate(&streams, &HashMap::new(), 8);
            for o in g.outputs() {
                assert_eq!(out[&o.name].len(), 3, "{}", g.name());
            }
        }
    }

    #[test]
    fn ar_lattice_evaluates_recurrence() {
        use std::collections::HashMap;
        let g = ar_lattice();
        let mut streams = HashMap::new();
        streams.insert("x".to_string(), vec![1u64, 0, 0, 0]);
        let out = g.evaluate(&streams, &HashMap::new(), 16);
        // Impulse response must not be all zeros after the impulse.
        assert!(out["f2"].iter().skip(1).any(|&v| v != 0));
    }
}
