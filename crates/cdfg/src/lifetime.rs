//! Variable lifetimes under a schedule.
//!
//! Register assignment — conventional, I/O-maximizing [25], scan-sharing
//! [33,24], and the BIST variants [3,31,32] — all reduce to questions
//! about which variables' lifetimes overlap. Because loop-carried
//! variables wrap around the iteration boundary, a lifetime here is a
//! *set of control steps* within the iteration, not an interval.

use std::collections::HashMap;
use std::fmt;

use crate::graph::{Cdfg, VarKind};
use crate::ids::VarId;
use crate::schedule::Schedule;

/// A set of control steps within one iteration (at most
/// [`MAX_STEPS`](crate::schedule::MAX_STEPS) steps), stored as a bit set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StepSet(pub u128);

impl StepSet {
    /// The empty set.
    pub const EMPTY: StepSet = StepSet(0);

    /// Set containing every step in `0..n`.
    pub fn all(n: u32) -> Self {
        assert!(n <= 128);
        if n == 128 {
            StepSet(u128::MAX)
        } else {
            StepSet((1u128 << n) - 1)
        }
    }

    /// Inserts one step.
    pub fn insert(&mut self, step: u32) {
        assert!(step < 128, "step out of range");
        self.0 |= 1u128 << step;
    }

    /// Whether the step is in the set.
    pub fn contains(self, step: u32) -> bool {
        step < 128 && self.0 & (1u128 << step) != 0
    }

    /// Inserts the circular range from `from` to `to` inclusive, within an
    /// iteration of `period` steps; wraps around if `from > to`.
    pub fn insert_wrapping(&mut self, from: u32, to: u32, period: u32) {
        assert!(period <= 128 && from < period && to < period);
        let mut s = from;
        loop {
            self.insert(s);
            if s == to {
                break;
            }
            s = (s + 1) % period;
        }
    }

    /// Whether the two sets share a step.
    pub fn intersects(self, other: StepSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Union of two sets.
    pub fn union(self, other: StepSet) -> StepSet {
        StepSet(self.0 | other.0)
    }

    /// Number of steps in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the steps in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        (0..128).filter(move |&s| self.contains(s))
    }
}

impl fmt::Display for StepSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for s in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Per-variable lifetime information under a specific schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarLifetime {
    /// The variable.
    pub var: VarId,
    /// Steps during which the variable must be held in a register.
    pub steps: StepSet,
    /// First step at which the value is register-valid (step 0 for
    /// primary inputs).
    pub birth: u32,
    /// Whether the lifetime spans the whole iteration (e.g. a distance ≥ 2
    /// loop-carried variable).
    pub spans_all: bool,
}

/// Lifetimes of all register-resident variables of a CDFG under a
/// schedule.
///
/// Constants are not register-resident and are omitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeMap {
    period: u32,
    lifetimes: HashMap<VarId, VarLifetime>,
}

impl LifetimeMap {
    /// Computes lifetimes for every non-constant variable.
    ///
    /// Model: a value produced by an operation finishing at the end of
    /// step `e` occupies a register from step `e + 1` (modulo the
    /// iteration period) through its last read step. Primary inputs are
    /// register-valid from step 0; primary outputs are held through the
    /// end of the iteration so the environment can sample them.
    pub fn compute(cdfg: &Cdfg, schedule: &Schedule) -> Self {
        let period = schedule.num_steps();
        let mut lifetimes = HashMap::new();
        for v in cdfg.vars() {
            if matches!(v.kind, VarKind::Constant(_)) {
                continue;
            }
            // Absolute birth time: end of producing step (or 0 for inputs).
            let birth_abs: u32 = match v.def {
                Some(op) => schedule.ready_step(op),
                None => 0,
            };
            // Last absolute read time across uses; distance-d reads happen
            // d iterations later.
            let mut last_abs: Option<u32> = None;
            for &(user, port) in &v.uses {
                let operand = cdfg.op(user).inputs[port];
                // A multi-cycle consumer holds its operands for its whole
                // execution window, not just its start step.
                let t =
                    schedule.start(user) + schedule.latency(user) - 1 + operand.distance * period;
                last_abs = Some(last_abs.map_or(t, |m| m.max(t)));
            }
            if v.kind == VarKind::Output {
                // Hold the output through the end of its own iteration.
                let end = period.max(1) - 1
                    + match v.def {
                        Some(_) => 0,
                        None => 0,
                    };
                let t = end.max(birth_abs);
                last_abs = Some(last_abs.map_or(t, |m| m.max(t)));
            }
            // A defined-but-never-read value still occupies its register
            // for the step after its write edge — without this, two dead
            // or dead-and-live values could collide on one clock edge.
            let last_abs = last_abs.unwrap_or(birth_abs);
            let period = period.max(1);
            let mut steps = StepSet::EMPTY;
            let spans_all = last_abs >= birth_abs + period;
            if spans_all {
                steps = StepSet::all(period);
            } else if last_abs >= birth_abs {
                steps.insert_wrapping(birth_abs % period, last_abs % period, period);
            }
            lifetimes.insert(
                v.id,
                VarLifetime {
                    var: v.id,
                    steps,
                    birth: birth_abs % period,
                    spans_all,
                },
            );
        }
        LifetimeMap { period, lifetimes }
    }

    /// The iteration period in control steps.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Lifetime of a variable, if it is register-resident.
    pub fn get(&self, var: VarId) -> Option<&VarLifetime> {
        self.lifetimes.get(&var)
    }

    /// Whether two variables' lifetimes overlap (cannot share a register).
    pub fn overlap(&self, a: VarId, b: VarId) -> bool {
        match (self.lifetimes.get(&a), self.lifetimes.get(&b)) {
            (Some(la), Some(lb)) => la.steps.intersects(lb.steps),
            _ => false,
        }
    }

    /// Whether a whole group of variables is pairwise compatible (no two
    /// lifetimes overlap) — i.e. the group can share one register.
    pub fn compatible(&self, group: &[VarId]) -> bool {
        let mut acc = StepSet::EMPTY;
        for &v in group {
            if let Some(l) = self.lifetimes.get(&v) {
                if acc.intersects(l.steps) {
                    return false;
                }
                acc = acc.union(l.steps);
            }
        }
        true
    }

    /// Iterates over all register-resident variables.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.lifetimes.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;
    use crate::op::OpKind;
    use crate::schedule::Schedule;

    #[test]
    fn stepset_basics() {
        let mut s = StepSet::EMPTY;
        s.insert(0);
        s.insert(3);
        assert!(s.contains(0) && s.contains(3) && !s.contains(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "{0,3}");
    }

    #[test]
    fn stepset_wrapping_range() {
        let mut s = StepSet::EMPTY;
        s.insert_wrapping(3, 1, 4); // 3, 0, 1
        assert!(s.contains(3) && s.contains(0) && s.contains(1) && !s.contains(2));
    }

    #[test]
    fn straight_line_lifetimes() {
        // t = a + c @0 ; o = t + c @1 ; period 2
        let mut b = CdfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op(OpKind::Add, &[a, c], "t");
        b.op_output(OpKind::Add, &[t, c], "o");
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![0, 1]).unwrap();
        let lt = LifetimeMap::compute(&g, &s);
        // t is born at step 1 and read at step 1: lifetime {1}.
        let t_id = g.var_by_name("t").unwrap().id;
        assert_eq!(lt.get(t_id).unwrap().steps, StepSet(0b10));
        // a is alive step 0 only (read at step 0).
        let a_id = g.var_by_name("a").unwrap().id;
        assert_eq!(lt.get(a_id).unwrap().steps, StepSet(0b01));
        // c is alive steps 0..=1.
        let c_id = g.var_by_name("c").unwrap().id;
        assert_eq!(lt.get(c_id).unwrap().steps, StepSet(0b11));
        assert!(lt.overlap(a_id, c_id));
        assert!(!lt.overlap(a_id, t_id));
    }

    #[test]
    fn loop_carried_variable_wraps() {
        let mut b = CdfgBuilder::new("acc");
        let x = b.input("x");
        let prev = b.forward("prev", 1);
        let sum = b.op_output(OpKind::Add, &[x, prev], "sum");
        b.bind_forward(prev, sum);
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![0]).unwrap();
        // period 1: sum born at end of step 0, read next iteration step 0.
        let lt = LifetimeMap::compute(&g, &s);
        let sum_id = g.var_by_name("sum").unwrap().id;
        assert!(lt.get(sum_id).unwrap().steps.contains(0));
    }

    #[test]
    fn distance_two_spans_all() {
        let mut b = CdfgBuilder::new("d2");
        let x = b.input("x");
        let prev = b.forward("prev", 2);
        let sum = b.op_output(OpKind::Add, &[x, prev], "sum");
        b.bind_forward(prev, sum);
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![0]).unwrap();
        let lt = LifetimeMap::compute(&g, &s);
        let sum_id = g.var_by_name("sum").unwrap().id;
        assert!(lt.get(sum_id).unwrap().spans_all);
    }

    #[test]
    fn compatible_group_accumulates() {
        let mut b = CdfgBuilder::new("g");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op(OpKind::Add, &[a, c], "t");
        let u = b.op(OpKind::Add, &[t, c], "u");
        b.op_output(OpKind::Add, &[u, c], "o");
        let g = b.finish().unwrap();
        let s = Schedule::new(&g, vec![0, 1, 2]).unwrap();
        let lt = LifetimeMap::compute(&g, &s);
        let a_id = g.var_by_name("a").unwrap().id;
        let t_id = g.var_by_name("t").unwrap().id;
        let u_id = g.var_by_name("u").unwrap().id;
        // a: {0}, t: {1}, u: {2} — pairwise compatible.
        assert!(lt.compatible(&[a_id, t_id, u_id]));
        let c_id = g.var_by_name("c").unwrap().id;
        assert!(!lt.compatible(&[a_id, c_id]));
    }
}
