//! Operation kinds and their algebraic/implementation properties.

use std::fmt;

/// The kind of a CDFG operation.
///
/// The set covers the arithmetic/logic repertoire of the data-flow
/// intensive designs the survey targets (DSP filters, small processors).
/// Each kind knows its algebraic properties — commutativity and identity
/// element — which the deflection-operation transform (survey §3.4,
/// Dey & Potkonjak ITC'94) relies on, and a default latency in control
/// steps used by the schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Low-half multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise complement (unary).
    Not,
    /// Logical shift left by a constant encoded in the second operand.
    Shl,
    /// Logical shift right by a constant encoded in the second operand.
    Shr,
    /// Unsigned less-than comparison producing 0 or 1.
    Lt,
    /// Equality comparison producing 0 or 1.
    Eq,
    /// Two-way select: `out = if sel != 0 { a } else { b }`; operands are
    /// ordered `(sel, a, b)`.
    Select,
    /// Identity move (`out = a`). Deflection operations with an identity
    /// second operand (`a + 0`, `a * 1`) lower to this when the library
    /// has no cheaper realization.
    Pass,
}

impl OpKind {
    /// All kinds, in a stable order.
    pub const ALL: [OpKind; 13] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Not,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::Lt,
        OpKind::Eq,
        OpKind::Select,
        OpKind::Pass,
    ];

    /// Number of input operands the kind consumes.
    pub fn arity(self) -> usize {
        match self {
            OpKind::Not | OpKind::Pass => 1,
            OpKind::Select => 3,
            _ => 2,
        }
    }

    /// Whether swapping the two operands preserves the result.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            OpKind::Add | OpKind::Mul | OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Eq
        )
    }

    /// The right identity element of the operation, if one exists.
    ///
    /// `a ⊕ identity == a`. This is what makes an inserted deflection
    /// operation behavior-preserving: `Add` with 0, `Mul` with 1, etc.
    pub fn right_identity(self) -> Option<u64> {
        match self {
            OpKind::Add | OpKind::Sub | OpKind::Or | OpKind::Xor | OpKind::Shl | OpKind::Shr => {
                Some(0)
            }
            OpKind::Mul => Some(1),
            OpKind::And => Some(u64::MAX),
            _ => None,
        }
    }

    /// Default latency in control steps assumed by the schedulers.
    ///
    /// Multipliers take two steps, everything else one — the convention
    /// of the classic HLS benchmarks (HAL differential equation, elliptic
    /// wave filter) the surveyed papers report on. Schedulers accept a
    /// custom latency table when this does not fit.
    pub fn default_latency(self) -> u32 {
        match self {
            OpKind::Mul => 2,
            _ => 1,
        }
    }

    /// A short mnemonic used in reports and DOT output.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::And => "&",
            OpKind::Or => "|",
            OpKind::Xor => "^",
            OpKind::Not => "~",
            OpKind::Shl => "<<",
            OpKind::Shr => ">>",
            OpKind::Lt => "<",
            OpKind::Eq => "==",
            OpKind::Select => "sel",
            OpKind::Pass => "pass",
        }
    }

    /// Evaluates the operation on concrete values, masked to `width` bits.
    ///
    /// Used by the behavioral reference simulator that checks
    /// transformations preserve behavior, and by the netlist expansion
    /// self-tests.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()` or `width` is 0 or > 64.
    pub fn eval(self, inputs: &[u64], width: u32) -> u64 {
        assert!((1..=64).contains(&width), "width out of range");
        assert_eq!(inputs.len(), self.arity(), "operand count mismatch");
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let v = match self {
            OpKind::Add => inputs[0].wrapping_add(inputs[1]),
            OpKind::Sub => inputs[0].wrapping_sub(inputs[1]),
            OpKind::Mul => inputs[0].wrapping_mul(inputs[1]),
            OpKind::And => inputs[0] & inputs[1],
            OpKind::Or => inputs[0] | inputs[1],
            OpKind::Xor => inputs[0] ^ inputs[1],
            OpKind::Not => !inputs[0],
            OpKind::Shl => inputs[0].checked_shl((inputs[1] & 63) as u32).unwrap_or(0),
            OpKind::Shr => (inputs[0] & mask)
                .checked_shr((inputs[1] & 63) as u32)
                .unwrap_or(0),
            OpKind::Lt => u64::from((inputs[0] & mask) < (inputs[1] & mask)),
            OpKind::Eq => u64::from((inputs[0] & mask) == (inputs[1] & mask)),
            OpKind::Select => {
                if inputs[0] & mask != 0 {
                    inputs[1]
                } else {
                    inputs[2]
                }
            }
            OpKind::Pass => inputs[0],
        };
        v & mask
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        for kind in OpKind::ALL {
            let inputs = vec![5u64; kind.arity()];
            // Must not panic.
            let _ = kind.eval(&inputs, 8);
        }
    }

    #[test]
    fn identities_are_identities() {
        for kind in OpKind::ALL {
            if let Some(id) = kind.right_identity() {
                for a in [0u64, 1, 7, 200, 255] {
                    assert_eq!(
                        kind.eval(&[a, id], 8),
                        a & 0xff,
                        "{kind:?} identity {id} failed on {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn commutative_kinds_commute() {
        for kind in OpKind::ALL {
            if kind.is_commutative() {
                for (a, b) in [(3u64, 9u64), (255, 1), (0, 77)] {
                    assert_eq!(kind.eval(&[a, b], 8), kind.eval(&[b, a], 8), "{kind:?}");
                }
            }
        }
    }

    #[test]
    fn eval_masks_to_width() {
        assert_eq!(OpKind::Add.eval(&[0xff, 1], 8), 0);
        assert_eq!(OpKind::Mul.eval(&[16, 16], 8), 0);
        assert_eq!(OpKind::Not.eval(&[0], 4), 0xf);
    }

    #[test]
    fn select_picks_by_condition() {
        assert_eq!(OpKind::Select.eval(&[1, 10, 20], 8), 10);
        assert_eq!(OpKind::Select.eval(&[0, 10, 20], 8), 20);
    }

    #[test]
    fn sub_is_not_commutative_but_has_identity() {
        assert_eq!(OpKind::Sub.right_identity(), Some(0));
        assert!(!OpKind::Sub.is_commutative());
    }
}
