//! Fluent construction of [`Cdfg`]s.

use std::collections::HashMap;

use crate::graph::{Cdfg, CdfgError, Operand, Operation, VarKind, Variable};
use crate::ids::{OpId, VarId};
use crate::op::OpKind;

/// Incrementally builds a [`Cdfg`], resolving loop-carried references.
///
/// Loop-carried dependencies are expressed with *forward references*:
/// [`forward`](CdfgBuilder::forward) introduces a placeholder read at a
/// given inter-iteration distance, and [`bind_forward`](CdfgBuilder::bind_forward)
/// later points it at the defining variable once that exists.
///
/// # Example
///
/// ```
/// use hlstb_cdfg::{CdfgBuilder, OpKind};
///
/// // sum(n) = sum(n-1) + x(n)
/// let mut b = CdfgBuilder::new("accumulator");
/// let x = b.input("x");
/// let prev = b.forward("prev_sum", 1);
/// let sum = b.op_output(OpKind::Add, &[x, prev], "sum");
/// b.bind_forward(prev, sum);
/// let cdfg = b.finish()?;
/// assert_eq!(cdfg.loops(4).len(), 1);
/// # Ok::<(), hlstb_cdfg::CdfgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CdfgBuilder {
    name: String,
    vars: Vec<PendingVar>,
    ops: Vec<PendingOp>,
    fresh: u32,
}

#[derive(Debug, Clone)]
struct PendingVar {
    name: String,
    kind: VarKind,
    /// Set when this is a forward placeholder.
    forward: Option<Forward>,
}

#[derive(Debug, Clone, Copy)]
struct Forward {
    distance: u32,
    target: Option<VarId>,
}

#[derive(Debug, Clone)]
struct PendingOp {
    kind: OpKind,
    inputs: Vec<VarId>,
    output: VarId,
}

impl CdfgBuilder {
    /// Starts a new empty CDFG with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CdfgBuilder {
            name: name.into(),
            vars: Vec::new(),
            ops: Vec::new(),
            fresh: 0,
        }
    }

    fn push_var(&mut self, name: String, kind: VarKind, forward: Option<Forward>) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(PendingVar {
            name,
            kind,
            forward,
        });
        id
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), VarKind::Input, None)
    }

    /// Declares a constant-valued variable.
    pub fn constant(&mut self, value: u64) -> VarId {
        self.fresh += 1;
        let name = format!("const_{value}_{}", self.fresh);
        self.push_var(name, VarKind::Constant(value), None)
    }

    /// Declares a forward reference read `distance` iterations in the
    /// past, to be resolved with [`bind_forward`](Self::bind_forward).
    pub fn forward(&mut self, name: impl Into<String>, distance: u32) -> VarId {
        self.push_var(
            name.into(),
            VarKind::Intermediate,
            Some(Forward {
                distance,
                target: None,
            }),
        )
    }

    /// Resolves a forward reference to the variable that defines it.
    ///
    /// # Panics
    ///
    /// Panics if `fwd` was not created by [`forward`](Self::forward) or is
    /// already bound.
    pub fn bind_forward(&mut self, fwd: VarId, target: VarId) {
        let slot = self.vars[fwd.index()]
            .forward
            .as_mut()
            .expect("bind_forward on a non-forward variable");
        assert!(slot.target.is_none(), "forward reference bound twice");
        slot.target = Some(target);
    }

    /// Adds an operation producing a fresh intermediate variable.
    pub fn op(&mut self, kind: OpKind, inputs: &[VarId], out_name: impl Into<String>) -> VarId {
        self.add_op(kind, inputs, out_name.into(), VarKind::Intermediate)
    }

    /// Adds an operation whose result is a primary output.
    pub fn op_output(
        &mut self,
        kind: OpKind,
        inputs: &[VarId],
        out_name: impl Into<String>,
    ) -> VarId {
        self.add_op(kind, inputs, out_name.into(), VarKind::Output)
    }

    fn add_op(&mut self, kind: OpKind, inputs: &[VarId], name: String, vk: VarKind) -> VarId {
        let output = self.push_var(name, vk, None);
        self.ops.push(PendingOp {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// Re-marks an intermediate variable as a primary output (useful when
    /// a transformation decides late that a value must stay observable).
    ///
    /// # Panics
    ///
    /// Panics if `var` is an input, constant, or forward reference.
    pub fn mark_output(&mut self, var: VarId) {
        let v = &mut self.vars[var.index()];
        assert!(
            v.kind == VarKind::Intermediate && v.forward.is_none(),
            "only intermediates can be promoted to outputs"
        );
        v.kind = VarKind::Output;
    }

    /// Number of operations added so far.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Finishes and validates the CDFG.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError`] if a forward reference is unbound or any
    /// graph invariant fails (see [`Cdfg::new`]).
    pub fn finish(self) -> Result<Cdfg, CdfgError> {
        // Resolve forwards: map placeholder id -> (target id, distance).
        let mut resolve: HashMap<VarId, (VarId, u32)> = HashMap::new();
        for (i, v) in self.vars.iter().enumerate() {
            if let Some(f) = v.forward {
                let target = f.target.ok_or_else(|| CdfgError::UnknownId {
                    what: format!("unbound forward `{}`", v.name),
                })?;
                resolve.insert(VarId(i as u32), (target, f.distance));
            }
        }
        // Chase chains of forwards (a forward bound to a forward).
        let chase = |mut id: VarId, mut dist: u32| -> (VarId, u32) {
            let mut hops = 0;
            while let Some(&(t, d)) = resolve.get(&id) {
                id = t;
                dist += d;
                hops += 1;
                assert!(hops <= resolve.len(), "forward reference cycle");
            }
            (id, dist)
        };

        // Compact ids, dropping placeholders.
        let mut remap: Vec<Option<VarId>> = vec![None; self.vars.len()];
        let mut vars = Vec::new();
        for (i, v) in self.vars.iter().enumerate() {
            if v.forward.is_some() {
                continue;
            }
            let id = VarId(vars.len() as u32);
            remap[i] = Some(id);
            vars.push(Variable {
                id,
                name: v.name.clone(),
                kind: v.kind,
                def: None,
                uses: Vec::new(),
            });
        }
        let remap_operand = |raw: VarId| -> Operand {
            let (target, dist) = chase(raw, 0);
            let var = remap[target.index()].expect("forward target must be a real variable");
            Operand {
                var,
                distance: dist,
            }
        };

        let mut ops = Vec::new();
        for (i, p) in self.ops.iter().enumerate() {
            let id = OpId(i as u32);
            let inputs: Vec<Operand> = p.inputs.iter().map(|&v| remap_operand(v)).collect();
            let output = remap[p.output.index()].expect("op output cannot be a forward");
            ops.push(Operation {
                id,
                kind: p.kind,
                inputs,
                output,
            });
        }
        // Fill def/uses caches.
        for op in &ops {
            vars[op.output.index()].def = Some(op.id);
            for (port, operand) in op.inputs.iter().enumerate() {
                vars[operand.var.index()].uses.push((op.id, port));
            }
        }
        Cdfg::new(self.name, vars, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbound_forward_is_an_error() {
        let mut b = CdfgBuilder::new("bad");
        let x = b.input("x");
        let f = b.forward("f", 1);
        b.op_output(OpKind::Add, &[x, f], "y");
        assert!(b.finish().is_err());
    }

    #[test]
    fn forward_ids_are_compacted_away() {
        let mut b = CdfgBuilder::new("acc");
        let x = b.input("x");
        let f = b.forward("f", 1);
        let s = b.op_output(OpKind::Add, &[x, f], "s");
        b.bind_forward(f, s);
        let g = b.finish().unwrap();
        // x and s only — the placeholder vanished.
        assert_eq!(g.num_vars(), 2);
        let op = g.ops().next().unwrap();
        assert_eq!(op.inputs[1].var, g.var_by_name("s").unwrap().id);
        assert_eq!(op.inputs[1].distance, 1);
    }

    #[test]
    fn mark_output_promotes() {
        let mut b = CdfgBuilder::new("m");
        let x = b.input("x");
        let t = b.op(OpKind::Pass, &[x], "t");
        b.mark_output(t);
        let g = b.finish().unwrap();
        assert_eq!(g.outputs().count(), 1);
    }

    #[test]
    fn constants_get_unique_names() {
        let mut b = CdfgBuilder::new("c");
        let c1 = b.constant(0);
        let c2 = b.constant(0);
        assert_ne!(c1, c2);
        let x = b.input("x");
        let t = b.op(OpKind::Add, &[x, c1], "t");
        b.op_output(OpKind::Add, &[t, c2], "u");
        assert!(b.finish().is_ok());
    }
}
