//! Fluent construction of [`Cdfg`]s.

use std::collections::HashMap;

use crate::graph::{Cdfg, CdfgError, Operand, Operation, VarKind, Variable};
use crate::ids::{OpId, VarId};
use crate::op::OpKind;

/// Incrementally builds a [`Cdfg`], resolving loop-carried references.
///
/// Loop-carried dependencies are expressed with *forward references*:
/// [`forward`](CdfgBuilder::forward) introduces a placeholder read at a
/// given inter-iteration distance, and [`bind_forward`](CdfgBuilder::bind_forward)
/// later points it at the defining variable once that exists.
///
/// # Example
///
/// ```
/// use hlstb_cdfg::{CdfgBuilder, OpKind};
///
/// // sum(n) = sum(n-1) + x(n)
/// let mut b = CdfgBuilder::new("accumulator");
/// let x = b.input("x");
/// let prev = b.forward("prev_sum", 1);
/// let sum = b.op_output(OpKind::Add, &[x, prev], "sum");
/// b.bind_forward(prev, sum);
/// let cdfg = b.finish()?;
/// assert_eq!(cdfg.loops(4).len(), 1);
/// # Ok::<(), hlstb_cdfg::CdfgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CdfgBuilder {
    name: String,
    vars: Vec<PendingVar>,
    ops: Vec<PendingOp>,
    fresh: u32,
    /// Misuse detected mid-construction (bad bind, bad promotion).
    /// Reported by [`finish`](Self::finish) instead of panicking, so a
    /// malformed program is an `Err` the caller can handle.
    deferred: Vec<CdfgError>,
}

#[derive(Debug, Clone)]
struct PendingVar {
    name: String,
    kind: VarKind,
    /// Set when this is a forward placeholder.
    forward: Option<Forward>,
}

#[derive(Debug, Clone, Copy)]
struct Forward {
    distance: u32,
    target: Option<VarId>,
}

#[derive(Debug, Clone)]
struct PendingOp {
    kind: OpKind,
    inputs: Vec<VarId>,
    output: VarId,
}

impl CdfgBuilder {
    /// Starts a new empty CDFG with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CdfgBuilder {
            name: name.into(),
            vars: Vec::new(),
            ops: Vec::new(),
            fresh: 0,
            deferred: Vec::new(),
        }
    }

    fn push_var(&mut self, name: String, kind: VarKind, forward: Option<Forward>) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(PendingVar {
            name,
            kind,
            forward,
        });
        id
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), VarKind::Input, None)
    }

    /// Declares a constant-valued variable.
    pub fn constant(&mut self, value: u64) -> VarId {
        self.fresh += 1;
        let name = format!("const_{value}_{}", self.fresh);
        self.push_var(name, VarKind::Constant(value), None)
    }

    /// Declares a forward reference read `distance` iterations in the
    /// past, to be resolved with [`bind_forward`](Self::bind_forward).
    pub fn forward(&mut self, name: impl Into<String>, distance: u32) -> VarId {
        self.push_var(
            name.into(),
            VarKind::Intermediate,
            Some(Forward {
                distance,
                target: None,
            }),
        )
    }

    /// Resolves a forward reference to the variable that defines it.
    ///
    /// Binding a variable that is not a forward reference, binding one
    /// twice, or binding to a variable this builder never created is
    /// not a panic: the misuse is recorded and reported as an `Err`
    /// from [`finish`](Self::finish).
    pub fn bind_forward(&mut self, fwd: VarId, target: VarId) {
        if target.index() >= self.vars.len() {
            self.deferred.push(CdfgError::UnknownId {
                what: format!("bind_forward target {target} does not exist"),
            });
            return;
        }
        let Some(slot) = self.vars.get_mut(fwd.index()).map(|v| &mut v.forward) else {
            self.deferred.push(CdfgError::UnknownId {
                what: format!("bind_forward on nonexistent {fwd}"),
            });
            return;
        };
        match slot {
            None => self.deferred.push(CdfgError::UnknownId {
                what: format!("bind_forward on non-forward {fwd}"),
            }),
            Some(f) if f.target.is_some() => self.deferred.push(CdfgError::UnknownId {
                what: format!("forward {fwd} bound twice"),
            }),
            Some(f) => f.target = Some(target),
        }
    }

    /// Adds an operation producing a fresh intermediate variable.
    pub fn op(&mut self, kind: OpKind, inputs: &[VarId], out_name: impl Into<String>) -> VarId {
        self.add_op(kind, inputs, out_name.into(), VarKind::Intermediate)
    }

    /// Adds an operation whose result is a primary output.
    pub fn op_output(
        &mut self,
        kind: OpKind,
        inputs: &[VarId],
        out_name: impl Into<String>,
    ) -> VarId {
        self.add_op(kind, inputs, out_name.into(), VarKind::Output)
    }

    fn add_op(&mut self, kind: OpKind, inputs: &[VarId], name: String, vk: VarKind) -> VarId {
        let output = self.push_var(name, vk, None);
        self.ops.push(PendingOp {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        output
    }

    /// Re-marks an intermediate variable as a primary output (useful when
    /// a transformation decides late that a value must stay observable).
    ///
    /// Promoting anything other than a real intermediate (an input, a
    /// constant, a forward reference, or an id from another builder) is
    /// recorded and reported as an `Err` from [`finish`](Self::finish).
    pub fn mark_output(&mut self, var: VarId) {
        match self.vars.get_mut(var.index()) {
            Some(v) if v.kind == VarKind::Intermediate && v.forward.is_none() => {
                v.kind = VarKind::Output;
            }
            Some(_) => self.deferred.push(CdfgError::DefinedBoundary { var }),
            None => self.deferred.push(CdfgError::UnknownId {
                what: format!("mark_output on nonexistent {var}"),
            }),
        }
    }

    /// Number of operations added so far.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Finishes and validates the CDFG.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError`] if construction was misused (see
    /// [`bind_forward`](Self::bind_forward) /
    /// [`mark_output`](Self::mark_output)), a forward reference is
    /// unbound or forms a pure-forward cycle, or any graph invariant
    /// fails (see [`Cdfg::new`]).
    pub fn finish(self) -> Result<Cdfg, CdfgError> {
        if let Some(e) = self.deferred.into_iter().next() {
            return Err(e);
        }
        // Resolve forwards: map placeholder id -> (target id, distance).
        let mut resolve: HashMap<VarId, (VarId, u32)> = HashMap::new();
        for (i, v) in self.vars.iter().enumerate() {
            if let Some(f) = v.forward {
                let target = f.target.ok_or_else(|| CdfgError::UnknownId {
                    what: format!("unbound forward `{}`", v.name),
                })?;
                resolve.insert(VarId(i as u32), (target, f.distance));
            }
        }
        // Chase chains of forwards (a forward bound to a forward). A
        // chain longer than the forward count is a cycle of forwards
        // bound to each other — user-constructible, so an error.
        let chase = |mut id: VarId, mut dist: u32| -> Result<(VarId, u32), CdfgError> {
            let mut hops = 0;
            while let Some(&(t, d)) = resolve.get(&id) {
                id = t;
                dist += d;
                hops += 1;
                if hops > resolve.len() {
                    return Err(CdfgError::UnknownId {
                        what: format!("forward reference cycle through {id}"),
                    });
                }
            }
            Ok((id, dist))
        };

        // Compact ids, dropping placeholders.
        let mut remap: Vec<Option<VarId>> = vec![None; self.vars.len()];
        let mut vars = Vec::new();
        for (i, v) in self.vars.iter().enumerate() {
            if v.forward.is_some() {
                continue;
            }
            let id = VarId(vars.len() as u32);
            remap[i] = Some(id);
            vars.push(Variable {
                id,
                name: v.name.clone(),
                kind: v.kind,
                def: None,
                uses: Vec::new(),
            });
        }
        let remap_operand = |raw: VarId| -> Result<Operand, CdfgError> {
            let (target, dist) = chase(raw, 0)?;
            let var = remap
                .get(target.index())
                .copied()
                .flatten()
                .ok_or_else(|| CdfgError::UnknownId {
                    what: format!("operand {target} is not a variable of this builder"),
                })?;
            Ok(Operand {
                var,
                distance: dist,
            })
        };

        let mut ops = Vec::new();
        for (i, p) in self.ops.iter().enumerate() {
            let id = OpId(i as u32);
            let inputs: Vec<Operand> = p
                .inputs
                .iter()
                .map(|&v| remap_operand(v))
                .collect::<Result<_, _>>()?;
            // Outputs are always fresh non-forward variables (add_op
            // creates them), so the remap entry is present.
            let output = remap[p.output.index()].expect("op output is never a forward");
            ops.push(Operation {
                id,
                kind: p.kind,
                inputs,
                output,
            });
        }
        // Fill def/uses caches.
        for op in &ops {
            vars[op.output.index()].def = Some(op.id);
            for (port, operand) in op.inputs.iter().enumerate() {
                vars[operand.var.index()].uses.push((op.id, port));
            }
        }
        Cdfg::new(self.name, vars, ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbound_forward_is_an_error() {
        let mut b = CdfgBuilder::new("bad");
        let x = b.input("x");
        let f = b.forward("f", 1);
        b.op_output(OpKind::Add, &[x, f], "y");
        assert!(b.finish().is_err());
    }

    #[test]
    fn forward_ids_are_compacted_away() {
        let mut b = CdfgBuilder::new("acc");
        let x = b.input("x");
        let f = b.forward("f", 1);
        let s = b.op_output(OpKind::Add, &[x, f], "s");
        b.bind_forward(f, s);
        let g = b.finish().unwrap();
        // x and s only — the placeholder vanished.
        assert_eq!(g.num_vars(), 2);
        let op = g.ops().next().unwrap();
        assert_eq!(op.inputs[1].var, g.var_by_name("s").unwrap().id);
        assert_eq!(op.inputs[1].distance, 1);
    }

    #[test]
    fn mark_output_promotes() {
        let mut b = CdfgBuilder::new("m");
        let x = b.input("x");
        let t = b.op(OpKind::Pass, &[x], "t");
        b.mark_output(t);
        let g = b.finish().unwrap();
        assert_eq!(g.outputs().count(), 1);
    }

    #[test]
    fn binding_a_non_forward_is_an_error_not_a_panic() {
        let mut b = CdfgBuilder::new("bad");
        let x = b.input("x");
        let y = b.input("y");
        b.bind_forward(x, y); // x is a plain input
        b.op_output(OpKind::Add, &[x, y], "o");
        assert!(matches!(b.finish(), Err(CdfgError::UnknownId { .. })));
    }

    #[test]
    fn double_binding_a_forward_is_an_error() {
        let mut b = CdfgBuilder::new("bad");
        let x = b.input("x");
        let f = b.forward("f", 1);
        let s = b.op_output(OpKind::Add, &[x, f], "s");
        b.bind_forward(f, s);
        b.bind_forward(f, x);
        assert!(matches!(b.finish(), Err(CdfgError::UnknownId { .. })));
    }

    #[test]
    fn binding_to_a_foreign_id_is_an_error() {
        let mut b = CdfgBuilder::new("bad");
        let x = b.input("x");
        let f = b.forward("f", 1);
        b.op_output(OpKind::Add, &[x, f], "s");
        b.bind_forward(f, crate::ids::VarId(999));
        assert!(matches!(b.finish(), Err(CdfgError::UnknownId { .. })));
    }

    #[test]
    fn mark_output_on_an_input_is_an_error() {
        let mut b = CdfgBuilder::new("bad");
        let x = b.input("x");
        b.mark_output(x);
        b.op_output(OpKind::Pass, &[x], "o");
        assert!(matches!(b.finish(), Err(CdfgError::DefinedBoundary { .. })));
    }

    #[test]
    fn mutually_bound_forwards_are_a_cycle_error() {
        let mut b = CdfgBuilder::new("bad");
        let x = b.input("x");
        let f1 = b.forward("f1", 1);
        let f2 = b.forward("f2", 1);
        b.bind_forward(f1, f2);
        b.bind_forward(f2, f1);
        b.op_output(OpKind::Add, &[x, f1], "o");
        assert!(matches!(b.finish(), Err(CdfgError::UnknownId { .. })));
    }

    #[test]
    fn a_forward_bound_to_a_forward_still_resolves() {
        let mut b = CdfgBuilder::new("chain");
        let x = b.input("x");
        let f1 = b.forward("f1", 1);
        let f2 = b.forward("f2", 1);
        let s = b.op_output(OpKind::Add, &[x, f1], "s");
        b.bind_forward(f1, f2);
        b.bind_forward(f2, s);
        let g = b.finish().unwrap();
        let op = g.ops().next().unwrap();
        // Distances accumulate along the chain: 1 + 1.
        assert_eq!(op.inputs[1].distance, 2);
    }

    #[test]
    fn constants_get_unique_names() {
        let mut b = CdfgBuilder::new("c");
        let c1 = b.constant(0);
        let c2 = b.constant(0);
        assert_ne!(c1, c2);
        let x = b.input("x");
        let t = b.op(OpKind::Add, &[x, c1], "t");
        b.op_output(OpKind::Add, &[t, c2], "u");
        assert!(b.finish().is_ok());
    }
}
