//! Human-readable pseudo-code rendering of a behavior.

use std::fmt::Write as _;

use crate::graph::{Cdfg, VarKind};
use crate::op::OpKind;

/// Renders the CDFG as one-assignment-per-line pseudo-code in
/// topological order, annotating loop-carried reads with `@t-n`.
///
/// # Example
///
/// ```
/// let text = hlstb_cdfg::pretty::to_pseudocode(&hlstb_cdfg::benchmarks::figure1());
/// assert!(text.contains("c = a + b"));
/// ```
pub fn to_pseudocode(cdfg: &Cdfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "behavior {} {{", cdfg.name());
    let ins: Vec<&str> = cdfg.inputs().map(|v| v.name.as_str()).collect();
    let outs: Vec<&str> = cdfg.outputs().map(|v| v.name.as_str()).collect();
    let _ = writeln!(out, "  in  {};", ins.join(", "));
    let _ = writeln!(out, "  out {};", outs.join(", "));
    for op in cdfg.topo_order() {
        let op = cdfg.op(op);
        let operand = |i: usize| -> String {
            let o = op.inputs[i];
            let v = cdfg.var(o.var);
            let base = match v.kind {
                VarKind::Constant(c) => c.to_string(),
                _ => v.name.clone(),
            };
            if o.distance > 0 {
                format!("{base}@t-{}", o.distance)
            } else {
                base
            }
        };
        let rhs = match op.kind {
            OpKind::Not => format!("~{}", operand(0)),
            OpKind::Pass => operand(0),
            OpKind::Select => {
                format!("{} ? {} : {}", operand(0), operand(1), operand(2))
            }
            k => format!("{} {} {}", operand(0), k.mnemonic(), operand(1)),
        };
        let _ = writeln!(out, "  {} = {};", cdfg.var(op.output).name, rhs);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn every_operation_appears() {
        for g in benchmarks::all() {
            let text = to_pseudocode(&g);
            for op in g.ops() {
                let name = &g.var(op.output).name;
                assert!(
                    text.contains(&format!("{name} = ")),
                    "{}: {name} missing",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn loop_carried_reads_are_annotated() {
        let text = to_pseudocode(&benchmarks::diffeq());
        assert!(text.contains("@t-1"));
    }

    #[test]
    fn select_renders_as_ternary() {
        let text = to_pseudocode(&benchmarks::gcd());
        assert!(text.contains(" ? "));
    }
}
