//! Behavior-preserving CDFG transformations.
//!
//! The survey's §3.4 describes *deflection operations* (Dey & Potkonjak,
//! ITC'94): operations with an identity element as one operand
//! (`x + 0`, `x · 1`) inserted between a producer and a consumer. The
//! computation is unchanged, but the inserted operation splits the
//! carried variable's lifetime in two, removing register-sharing
//! bottlenecks so that scan variables can share scan registers — fewer
//! scan registers are then needed to break the CDFG loops.

use std::error::Error;
use std::fmt;

use crate::graph::{Cdfg, CdfgError, Operand, Operation, VarKind, Variable};
use crate::ids::{OpId, VarId};
use crate::op::OpKind;

/// Where to insert a deflection: the read of `var` by `user` at operand
/// `port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeflectionSite {
    /// The variable whose use is deflected.
    pub var: VarId,
    /// The consuming operation.
    pub user: OpId,
    /// The operand port of `user` that reads `var`.
    pub port: usize,
}

/// Errors from CDFG transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The site does not describe an existing use.
    BadSite(DeflectionSite),
    /// The chosen carrier operation has no identity element.
    NoIdentity(OpKind),
    /// Rebuilding the graph failed validation (should not happen for a
    /// valid input graph; surfaced for robustness).
    Rebuild(CdfgError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::BadSite(s) => {
                write!(f, "{} port {} does not read {}", s.user, s.port, s.var)
            }
            TransformError::NoIdentity(k) => write!(f, "`{k}` has no identity element"),
            TransformError::Rebuild(e) => write!(f, "rebuild failed: {e}"),
        }
    }
}

impl Error for TransformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransformError::Rebuild(e) => Some(e),
            _ => None,
        }
    }
}

/// Result of [`insert_deflection`].
#[derive(Debug, Clone)]
pub struct Deflected {
    /// The rewritten CDFG.
    pub cdfg: Cdfg,
    /// Name of the freshly created deflection result variable.
    pub new_var: String,
    /// Id of the inserted operation in the new CDFG.
    pub new_op: OpId,
}

/// Inserts a deflection operation at `site` using `carrier` (e.g.
/// [`OpKind::Add`] with constant 0) and returns the rewritten CDFG.
///
/// The deflection reads `site.var` at the use's original distance and
/// produces a fresh variable read by `site.user` at distance 0, so the
/// original wrap-around lifetime is cut at the inserted operation.
///
/// # Errors
///
/// * [`TransformError::BadSite`] if the use does not exist.
/// * [`TransformError::NoIdentity`] if `carrier` has no identity element
///   and is not [`OpKind::Pass`].
pub fn insert_deflection(
    cdfg: &Cdfg,
    site: DeflectionSite,
    carrier: OpKind,
) -> Result<Deflected, TransformError> {
    if site.user.index() >= cdfg.num_ops() {
        return Err(TransformError::BadSite(site));
    }
    let user_op = cdfg.op(site.user);
    let operand = *user_op
        .inputs
        .get(site.port)
        .filter(|o| o.var == site.var)
        .ok_or(TransformError::BadSite(site))?;
    let identity = if carrier == OpKind::Pass {
        None
    } else {
        Some(
            carrier
                .right_identity()
                .ok_or(TransformError::NoIdentity(carrier))?,
        )
    };

    let mut vars: Vec<Variable> = cdfg.vars().cloned().collect();
    let mut ops: Vec<Operation> = cdfg.ops().cloned().collect();

    let new_var_name = fresh_name(cdfg, &format!("{}_defl", cdfg.var(site.var).name));
    let new_var = VarId(vars.len() as u32);
    vars.push(Variable {
        id: new_var,
        name: new_var_name.clone(),
        kind: VarKind::Intermediate,
        def: None,
        uses: Vec::new(),
    });
    let mut inputs = vec![Operand {
        var: site.var,
        distance: operand.distance,
    }];
    if let Some(id_val) = identity {
        let cname = fresh_name(cdfg, &format!("defl_id_{}", vars.len()));
        let cvar = VarId(vars.len() as u32);
        vars.push(Variable {
            id: cvar,
            name: cname,
            kind: VarKind::Constant(id_val),
            def: None,
            uses: Vec::new(),
        });
        inputs.push(Operand::now(cvar));
    }
    let new_op = OpId(ops.len() as u32);
    ops.push(Operation {
        id: new_op,
        kind: carrier,
        inputs,
        output: new_var,
    });
    // Redirect the targeted use.
    ops[site.user.index()].inputs[site.port] = Operand::now(new_var);

    // Recompute def/uses caches from scratch.
    for v in vars.iter_mut() {
        v.def = None;
        v.uses.clear();
    }
    for op in &ops {
        vars[op.output.index()].def = Some(op.id);
        for (port, o) in op.inputs.iter().enumerate() {
            vars[o.var.index()].uses.push((op.id, port));
        }
    }
    let name = cdfg.name().to_string();
    let cdfg = Cdfg::new(name, vars, ops).map_err(TransformError::Rebuild)?;
    Ok(Deflected {
        cdfg,
        new_var: new_var_name,
        new_op,
    })
}

/// Inserts one deflection reading `var` at `distance` and redirects
/// *every* use of `var` at that distance through it — the whole-variable
/// retiming form of the transform: afterwards only the deflection reads
/// the wrapped value, and all original consumers read the fresh
/// intra-iteration copy.
///
/// # Errors
///
/// Same conditions as [`insert_deflection`]; additionally
/// [`TransformError::BadSite`] if no use at that distance exists.
pub fn insert_deflection_all(
    cdfg: &Cdfg,
    var: VarId,
    distance: u32,
    carrier: OpKind,
) -> Result<Deflected, TransformError> {
    let site = cdfg
        .var(var)
        .uses
        .iter()
        .find(|&&(user, port)| cdfg.op(user).inputs[port].distance == distance)
        .map(|&(user, port)| DeflectionSite { var, user, port })
        .ok_or(TransformError::BadSite(DeflectionSite {
            var,
            user: OpId(u32::MAX),
            port: 0,
        }))?;
    let mut d = insert_deflection(cdfg, site, carrier)?;
    // Redirect the remaining same-distance uses to the new variable.
    let new_var = d
        .cdfg
        .var_by_name(&d.new_var)
        .expect("deflection output exists")
        .id;
    let mut vars: Vec<Variable> = d.cdfg.vars().cloned().collect();
    let mut ops: Vec<Operation> = d.cdfg.ops().cloned().collect();
    for op in ops.iter_mut() {
        if op.id == d.new_op {
            continue;
        }
        for operand in op.inputs.iter_mut() {
            if operand.var == var && operand.distance == distance {
                *operand = Operand::now(new_var);
            }
        }
    }
    for v in vars.iter_mut() {
        v.def = None;
        v.uses.clear();
    }
    for op in &ops {
        vars[op.output.index()].def = Some(op.id);
        for (port, o) in op.inputs.iter().enumerate() {
            vars[o.var.index()].uses.push((op.id, port));
        }
    }
    let name = d.cdfg.name().to_string();
    d.cdfg = Cdfg::new(name, vars, ops).map_err(TransformError::Rebuild)?;
    Ok(d)
}

/// All the sites at which a deflection could be inserted for `var`.
pub fn deflection_sites(cdfg: &Cdfg, var: VarId) -> Vec<DeflectionSite> {
    cdfg.var(var)
        .uses
        .iter()
        .map(|&(user, port)| DeflectionSite { var, user, port })
        .collect()
}

fn fresh_name(cdfg: &Cdfg, base: &str) -> String {
    if cdfg.var_by_name(base).is_none() {
        return base.to_string();
    }
    for i in 1.. {
        let cand = format!("{base}_{i}");
        if cdfg.var_by_name(&cand).is_none() {
            return cand;
        }
    }
    unreachable!()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use std::collections::HashMap;

    fn streams_for(cdfg: &Cdfg, n: usize) -> HashMap<String, Vec<u64>> {
        cdfg.inputs()
            .map(|v| {
                let base = v.id.0 as u64 + 1;
                (
                    v.name.clone(),
                    (0..n as u64).map(|i| base * 7 + i * 3).collect(),
                )
            })
            .collect()
    }

    fn outputs_match(a: &Cdfg, b: &Cdfg) {
        let streams = streams_for(a, 6);
        let ra = a.evaluate(&streams, &HashMap::new(), 8);
        let rb = b.evaluate(&streams, &HashMap::new(), 8);
        for o in a.outputs() {
            assert_eq!(ra[&o.name], rb[&o.name], "output {} diverged", o.name);
        }
    }

    #[test]
    fn add_deflection_preserves_behavior() {
        let g = benchmarks::diffeq();
        let v = g.var_by_name("m2").unwrap().id;
        let site = deflection_sites(&g, v)[0];
        let d = insert_deflection(&g, site, OpKind::Add).unwrap();
        assert_eq!(d.cdfg.num_ops(), g.num_ops() + 1);
        outputs_match(&g, &d.cdfg);
    }

    #[test]
    fn mul_deflection_preserves_behavior() {
        let g = benchmarks::ar_lattice();
        let v = g.var_by_name("f1").unwrap().id;
        let site = deflection_sites(&g, v)[0];
        let d = insert_deflection(&g, site, OpKind::Mul).unwrap();
        outputs_match(&g, &d.cdfg);
    }

    #[test]
    fn pass_deflection_preserves_behavior() {
        let g = benchmarks::iir_biquad();
        let v = g.var_by_name("w").unwrap().id;
        // deflect the distance-2 use
        let site = deflection_sites(&g, v)
            .into_iter()
            .find(|s| g.op(s.user).inputs[s.port].distance == 2)
            .unwrap();
        let d = insert_deflection(&g, site, OpKind::Pass).unwrap();
        outputs_match(&g, &d.cdfg);
        // The deflected read now carries the distance.
        let op = d.cdfg.op(d.new_op);
        assert_eq!(op.inputs[0].distance, 2);
    }

    #[test]
    fn bad_site_is_rejected() {
        let g = benchmarks::tseng();
        let v = g.var_by_name("t1").unwrap().id;
        let bogus = DeflectionSite {
            var: v,
            user: OpId(0),
            port: 9,
        };
        assert!(matches!(
            insert_deflection(&g, bogus, OpKind::Add),
            Err(TransformError::BadSite(_))
        ));
    }

    #[test]
    fn carrier_without_identity_rejected() {
        let g = benchmarks::tseng();
        let v = g.var_by_name("t1").unwrap().id;
        let site = deflection_sites(&g, v)[0];
        assert!(matches!(
            insert_deflection(&g, site, OpKind::Lt),
            Err(TransformError::NoIdentity(OpKind::Lt))
        ));
    }
}
