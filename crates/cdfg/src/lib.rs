//! Control-data flow graph (CDFG) intermediate representation for
//! high-level synthesis for testability.
//!
//! This crate is the behavioral front end of the `hlstb` workbench, the
//! reproduction of Wagner & Dey, *"High-Level Synthesis for Testability:
//! A Survey and Perspective"* (DAC 1996). It provides:
//!
//! * the [`Cdfg`] graph itself — operations ([`Operation`]) producing and
//!   consuming variables ([`Variable`]), connected by data-dependency
//!   edges that may carry an inter-iteration *distance* (loop-carried
//!   dependencies are how behavioral loops appear in the data path);
//! * a [`builder::CdfgBuilder`] for programmatic construction;
//! * scheduling containers ([`schedule::Schedule`]) and variable
//!   [`lifetime`] analysis under a schedule;
//! * enumeration of behavioral loops ([`Cdfg::loops`]), the §3.3.1
//!   objects that scan-variable selection must break;
//! * the classic HLS [`benchmarks`] the surveyed papers evaluate on,
//!   including the paper's own Figure 1 example;
//! * behavior-preserving [`transform`]s, notably the deflection-operation
//!   insertion of Dey & Potkonjak (ITC'94, survey §3.4).
//!
//! # Example
//!
//! ```
//! use hlstb_cdfg::benchmarks;
//!
//! let cdfg = benchmarks::figure1();
//! assert_eq!(cdfg.num_ops(), 5);
//! // The Figure 1 example is loop-free at the behavioral level …
//! assert!(cdfg.loops(16).is_empty());
//! // … every loop in its data path will come from resource sharing.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod builder;
pub mod dot;
pub mod graph;
pub mod ids;
pub mod lifetime;
pub mod op;
pub mod pretty;
pub mod schedule;
pub mod transform;

pub use builder::CdfgBuilder;
pub use graph::{Cdfg, CdfgError, CdfgLoop, DataEdge, Operand, Operation, VarKind, Variable};
pub use ids::{OpId, VarId};
pub use lifetime::{LifetimeMap, StepSet};
pub use op::OpKind;
pub use schedule::Schedule;
