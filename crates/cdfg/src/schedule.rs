//! Schedule container: the result of the scheduling task.
//!
//! Scheduling algorithms live in `hlstb-hls`; the container lives here so
//! lifetime analysis and transformations can consume schedules without a
//! dependency cycle.

use std::error::Error;
use std::fmt;

use crate::graph::Cdfg;
use crate::ids::OpId;

/// Maximum number of control steps supported (lifetimes are tracked in a
/// 128-bit step set).
pub const MAX_STEPS: u32 = 128;

/// Errors from [`Schedule::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// An intra-iteration dependency is violated: the consumer starts
    /// before the producer finishes.
    PrecedenceViolated {
        /// Producer operation.
        from: OpId,
        /// Consumer operation.
        to: OpId,
    },
    /// The schedule exceeds [`MAX_STEPS`] control steps.
    TooManySteps {
        /// Number of steps the schedule would need.
        steps: u32,
    },
    /// The start-time table length does not match the operation count.
    WrongLength {
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        found: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::PrecedenceViolated { from, to } => {
                write!(f, "{to} starts before its producer {from} finishes")
            }
            ScheduleError::TooManySteps { steps } => {
                write!(f, "schedule needs {steps} steps, maximum is {MAX_STEPS}")
            }
            ScheduleError::WrongLength { expected, found } => {
                write!(
                    f,
                    "start table has {found} entries, CDFG has {expected} operations"
                )
            }
        }
    }
}

impl Error for ScheduleError {}

/// A validated non-pipelined schedule: a start control step for every
/// operation, plus per-operation latencies.
///
/// Control steps are numbered from 0. The value of an operation is
/// available in registers from the step *after* it finishes, i.e. from
/// `start + latency`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    start: Vec<u32>,
    latency: Vec<u32>,
    num_steps: u32,
}

impl Schedule {
    /// Builds a schedule from explicit start times, using each kind's
    /// [`default_latency`](crate::OpKind::default_latency).
    ///
    /// # Errors
    ///
    /// See [`ScheduleError`].
    pub fn new(cdfg: &Cdfg, start: Vec<u32>) -> Result<Self, ScheduleError> {
        let latency: Vec<u32> = cdfg.ops().map(|o| o.kind.default_latency()).collect();
        Self::with_latencies(cdfg, start, latency)
    }

    /// Builds a schedule with caller-provided per-operation latencies.
    ///
    /// # Errors
    ///
    /// See [`ScheduleError`].
    pub fn with_latencies(
        cdfg: &Cdfg,
        start: Vec<u32>,
        latency: Vec<u32>,
    ) -> Result<Self, ScheduleError> {
        if start.len() != cdfg.num_ops() || latency.len() != cdfg.num_ops() {
            return Err(ScheduleError::WrongLength {
                expected: cdfg.num_ops(),
                found: start.len().min(latency.len()),
            });
        }
        let mut num_steps = 1;
        for (i, (&s, &l)) in start.iter().zip(&latency).enumerate() {
            let end = s + l.max(1);
            num_steps = num_steps.max(end);
            let _ = i;
        }
        if num_steps > MAX_STEPS {
            return Err(ScheduleError::TooManySteps { steps: num_steps });
        }
        for e in cdfg.data_edges() {
            if e.distance == 0 {
                let fin = start[e.from.index()] + latency[e.from.index()].max(1);
                if start[e.to.index()] < fin {
                    return Err(ScheduleError::PrecedenceViolated {
                        from: e.from,
                        to: e.to,
                    });
                }
            }
        }
        Ok(Schedule {
            start,
            latency,
            num_steps,
        })
    }

    /// Start control step of an operation.
    pub fn start(&self, op: OpId) -> u32 {
        self.start[op.index()]
    }

    /// Latency in steps of an operation (≥ 1).
    pub fn latency(&self, op: OpId) -> u32 {
        self.latency[op.index()].max(1)
    }

    /// The first step at which the operation's result is register-valid.
    pub fn ready_step(&self, op: OpId) -> u32 {
        self.start(op) + self.latency(op)
    }

    /// Total control steps of one iteration.
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// Operations active (executing) during `step`, in id order.
    pub fn ops_at(&self, step: u32) -> Vec<OpId> {
        (0..self.start.len())
            .filter(|&i| {
                let s = self.start[i];
                step >= s && step < s + self.latency[i].max(1)
            })
            .map(|i| OpId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;
    use crate::op::OpKind;

    fn two_op() -> Cdfg {
        let mut b = CdfgBuilder::new("t");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op(OpKind::Add, &[a, c], "t");
        b.op_output(OpKind::Add, &[t, c], "o");
        b.finish().unwrap()
    }

    #[test]
    fn valid_schedule_accepted() {
        let g = two_op();
        let s = Schedule::new(&g, vec![0, 1]).unwrap();
        assert_eq!(s.num_steps(), 2);
        assert_eq!(s.ready_step(OpId(0)), 1);
    }

    #[test]
    fn precedence_violation_rejected() {
        let g = two_op();
        assert!(matches!(
            Schedule::new(&g, vec![0, 0]),
            Err(ScheduleError::PrecedenceViolated { .. })
        ));
    }

    #[test]
    fn multicycle_latency_respected() {
        let mut b = CdfgBuilder::new("m");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op(OpKind::Mul, &[a, c], "t"); // latency 2
        b.op_output(OpKind::Add, &[t, c], "o");
        let g = b.finish().unwrap();
        assert!(Schedule::new(&g, vec![0, 1]).is_err());
        let s = Schedule::new(&g, vec![0, 2]).unwrap();
        assert_eq!(s.num_steps(), 3);
        assert_eq!(s.ops_at(1), vec![OpId(0)]);
    }

    #[test]
    fn wrong_length_rejected() {
        let g = two_op();
        assert!(matches!(
            Schedule::new(&g, vec![0]),
            Err(ScheduleError::WrongLength { .. })
        ));
    }
}
