//! Typed identifiers for CDFG entities.
//!
//! Newtypes keep operation and variable indices from being confused with
//! one another or with raw `usize` arithmetic (C-NEWTYPE).

use std::fmt;

/// Identifier of an [`Operation`](crate::Operation) inside one [`Cdfg`](crate::Cdfg).
///
/// Ids are dense indices assigned in creation order, so they can be used
/// directly to index per-operation side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

/// Identifier of a [`Variable`](crate::Variable) inside one [`Cdfg`](crate::Cdfg).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl OpId {
    /// Returns the id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl VarId {
    /// Returns the id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<OpId> for usize {
    fn from(id: OpId) -> usize {
        id.index()
    }
}

impl From<VarId> for usize {
    fn from(id: VarId) -> usize {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(OpId(3).to_string(), "op3");
        assert_eq!(VarId(7).to_string(), "v7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(OpId(1) < OpId(2));
        assert!(VarId(0) < VarId(9));
    }
}
