//! The control-data flow graph itself.
//!
//! A [`Cdfg`] is a set of [`Operation`]s over [`Variable`]s in SSA-like
//! form: every intermediate or output variable is defined by exactly one
//! operation. Data dependencies may carry an inter-iteration *distance*:
//! an operand with distance `k > 0` reads the value the defining
//! operation produced `k` iterations earlier. Behavioral loops — the
//! loops of survey §3.3.1 whose corresponding data-path loops make
//! sequential ATPG hard — are exactly the dependency cycles, and every
//! such cycle must contain at least one positive-distance edge (the
//! intra-iteration subgraph is required to be acyclic).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::ids::{OpId, VarId};
use crate::op::OpKind;

/// What role a variable plays at the behavior boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Primary input: produced by the environment each iteration.
    Input,
    /// Primary output: defined by an operation, observed by the environment.
    Output,
    /// Internal value: defined by an operation, consumed internally only.
    Intermediate,
    /// Compile-time constant with the given value.
    Constant(u64),
}

impl VarKind {
    /// Whether the variable must be defined by an operation.
    pub fn needs_definition(self) -> bool {
        matches!(self, VarKind::Output | VarKind::Intermediate)
    }
}

/// A variable of the behavioral description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    /// Dense identifier.
    pub id: VarId,
    /// Human-readable name, unique within the CDFG.
    pub name: String,
    /// Boundary role.
    pub kind: VarKind,
    /// Defining operation, if any.
    pub def: Option<OpId>,
    /// Consuming operations with the operand port they use.
    pub uses: Vec<(OpId, usize)>,
}

impl Variable {
    /// Whether this variable crosses an iteration boundary, i.e. at least
    /// one use reads it at distance > 0. Such variables necessarily live
    /// in a register across iterations.
    pub fn is_loop_carried(&self, cdfg: &Cdfg) -> bool {
        self.uses
            .iter()
            .any(|&(op, port)| cdfg.op(op).inputs[port].distance > 0)
    }
}

/// One operand of an operation: which variable, and from how many
/// iterations ago its value is read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operand {
    /// The variable read.
    pub var: VarId,
    /// Inter-iteration distance (0 = current iteration).
    pub distance: u32,
}

impl Operand {
    /// An operand read in the current iteration.
    pub fn now(var: VarId) -> Self {
        Operand { var, distance: 0 }
    }

    /// An operand read from `distance` iterations ago.
    pub fn delayed(var: VarId, distance: u32) -> Self {
        Operand { var, distance }
    }
}

/// An operation node of the CDFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Dense identifier.
    pub id: OpId,
    /// Kind (add, multiply, …).
    pub kind: OpKind,
    /// Operands in port order; length equals `kind.arity()`.
    pub inputs: Vec<Operand>,
    /// The single result variable.
    pub output: VarId,
}

/// A derived data-dependency edge between operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataEdge {
    /// Producer operation.
    pub from: OpId,
    /// Consumer operation.
    pub to: OpId,
    /// The variable carrying the dependency.
    pub var: VarId,
    /// Inter-iteration distance of the consumption.
    pub distance: u32,
}

/// A behavioral loop: a dependency cycle through operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdfgLoop {
    /// The operations on the cycle, in traversal order.
    pub ops: Vec<OpId>,
    /// The variables carried along the cycle edges, in the same order
    /// (`vars[i]` is produced by `ops[i]` and consumed by the next).
    pub vars: Vec<VarId>,
    /// Total inter-iteration distance around the cycle (≥ 1).
    pub total_distance: u32,
}

/// Errors reported by [`Cdfg`] validation and construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdfgError {
    /// An operation was given the wrong number of operands.
    ArityMismatch {
        /// Offending operation.
        op: OpId,
        /// Expected operand count.
        expected: usize,
        /// Provided operand count.
        found: usize,
    },
    /// A variable that needs a definition has none, or has two.
    BadDefinition {
        /// Offending variable.
        var: VarId,
        /// Number of definitions found.
        defs: usize,
    },
    /// An input or constant variable was used as an operation result.
    DefinedBoundary {
        /// Offending variable.
        var: VarId,
    },
    /// The intra-iteration dependency graph has a cycle, which has no
    /// executable schedule.
    CombinationalCycle {
        /// An operation on the cycle.
        op: OpId,
    },
    /// Two variables share a name.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// A referenced id does not exist.
    UnknownId {
        /// Description of the dangling reference.
        what: String,
    },
    /// The reference interpreter was given inconsistent input streams.
    BadInputStream {
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for CdfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdfgError::ArityMismatch {
                op,
                expected,
                found,
            } => {
                write!(f, "{op} expects {expected} operands, found {found}")
            }
            CdfgError::BadDefinition { var, defs } => {
                write!(f, "{var} must have exactly one definition, found {defs}")
            }
            CdfgError::DefinedBoundary { var } => {
                write!(f, "{var} is an input or constant and cannot be defined")
            }
            CdfgError::CombinationalCycle { op } => {
                write!(f, "intra-iteration dependency cycle through {op}")
            }
            CdfgError::DuplicateName { name } => write!(f, "duplicate variable name `{name}`"),
            CdfgError::UnknownId { what } => write!(f, "unknown id: {what}"),
            CdfgError::BadInputStream { what } => write!(f, "bad input stream: {what}"),
        }
    }
}

impl Error for CdfgError {}

/// A validated control-data flow graph.
///
/// Construct one with [`CdfgBuilder`](crate::CdfgBuilder); direct field
/// access is read-only through accessors so the SSA and acyclicity
/// invariants cannot be broken after validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cdfg {
    name: String,
    vars: Vec<Variable>,
    ops: Vec<Operation>,
}

impl Cdfg {
    /// Builds a CDFG from parts, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: operand arity, single
    /// definition per non-boundary variable, no definitions of
    /// inputs/constants, acyclic intra-iteration dependencies, unique
    /// names, and no dangling ids.
    pub fn new(
        name: impl Into<String>,
        vars: Vec<Variable>,
        ops: Vec<Operation>,
    ) -> Result<Self, CdfgError> {
        let cdfg = Cdfg {
            name: name.into(),
            vars,
            ops,
        };
        cdfg.validate()?;
        Ok(cdfg)
    }

    fn validate(&self) -> Result<(), CdfgError> {
        let mut names = HashMap::new();
        for (i, v) in self.vars.iter().enumerate() {
            if v.id.index() != i {
                return Err(CdfgError::UnknownId {
                    what: format!("non-dense {}", v.id),
                });
            }
            if names.insert(v.name.clone(), v.id).is_some() {
                return Err(CdfgError::DuplicateName {
                    name: v.name.clone(),
                });
            }
        }
        let mut defs = vec![0usize; self.vars.len()];
        for (i, op) in self.ops.iter().enumerate() {
            if op.id.index() != i {
                return Err(CdfgError::UnknownId {
                    what: format!("non-dense {}", op.id),
                });
            }
            if op.inputs.len() != op.kind.arity() {
                return Err(CdfgError::ArityMismatch {
                    op: op.id,
                    expected: op.kind.arity(),
                    found: op.inputs.len(),
                });
            }
            for operand in &op.inputs {
                if operand.var.index() >= self.vars.len() {
                    return Err(CdfgError::UnknownId {
                        what: format!("{}", operand.var),
                    });
                }
            }
            if op.output.index() >= self.vars.len() {
                return Err(CdfgError::UnknownId {
                    what: format!("{}", op.output),
                });
            }
            defs[op.output.index()] += 1;
        }
        for v in &self.vars {
            let d = defs[v.id.index()];
            if v.kind.needs_definition() {
                if d != 1 {
                    return Err(CdfgError::BadDefinition { var: v.id, defs: d });
                }
            } else if d != 0 {
                return Err(CdfgError::DefinedBoundary { var: v.id });
            }
            // Cross-check the cached def/uses against the operations.
            match v.def {
                Some(op) => {
                    if self.ops.get(op.index()).map(|o| o.output) != Some(v.id) {
                        return Err(CdfgError::UnknownId {
                            what: format!("{} def cache points at wrong op", v.id),
                        });
                    }
                }
                None => {
                    if d != 0 {
                        return Err(CdfgError::BadDefinition { var: v.id, defs: d });
                    }
                }
            }
        }
        // Intra-iteration acyclicity via DFS coloring.
        if let Some(op) = self.find_zero_distance_cycle() {
            return Err(CdfgError::CombinationalCycle { op });
        }
        Ok(())
    }

    fn find_zero_distance_cycle(&self) -> Option<OpId> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.ops.len()];
        // Iterative DFS with explicit stack to avoid recursion limits.
        for start in 0..self.ops.len() {
            if color[start] != Color::White {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
                let succs = self.zero_distance_successors(OpId(node as u32));
                if *edge < succs.len() {
                    let next = succs[*edge].index();
                    *edge += 1;
                    match color[next] {
                        Color::White => {
                            color[next] = Color::Gray;
                            stack.push((next, 0));
                        }
                        Color::Gray => return Some(OpId(next as u32)),
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    fn zero_distance_successors(&self, op: OpId) -> Vec<OpId> {
        let out = self.ops[op.index()].output;
        self.vars[out.index()]
            .uses
            .iter()
            .filter(|&&(user, port)| self.ops[user.index()].inputs[port].distance == 0)
            .map(|&(user, _)| user)
            .collect()
    }

    /// The CDFG's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this CDFG.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// The variable with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this CDFG.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.index()]
    }

    /// Iterates over all operations in id order.
    pub fn ops(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter()
    }

    /// Iterates over all variables in id order.
    pub fn vars(&self) -> impl Iterator<Item = &Variable> {
        self.vars.iter()
    }

    /// Looks a variable up by name.
    pub fn var_by_name(&self, name: &str) -> Option<&Variable> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Primary input variables in id order.
    pub fn inputs(&self) -> impl Iterator<Item = &Variable> {
        self.vars.iter().filter(|v| v.kind == VarKind::Input)
    }

    /// Primary output variables in id order.
    pub fn outputs(&self) -> impl Iterator<Item = &Variable> {
        self.vars.iter().filter(|v| v.kind == VarKind::Output)
    }

    /// All derived data-dependency edges.
    pub fn data_edges(&self) -> Vec<DataEdge> {
        let mut edges = Vec::new();
        for op in &self.ops {
            for operand in &op.inputs {
                if let Some(def) = self.vars[operand.var.index()].def {
                    edges.push(DataEdge {
                        from: def,
                        to: op.id,
                        var: operand.var,
                        distance: operand.distance,
                    });
                }
            }
        }
        edges
    }

    /// Intra-iteration predecessors of `op` (operations whose current-
    /// iteration results it reads).
    pub fn zero_distance_predecessors(&self, op: OpId) -> Vec<OpId> {
        self.ops[op.index()]
            .inputs
            .iter()
            .filter(|operand| operand.distance == 0)
            .filter_map(|operand| self.vars[operand.var.index()].def)
            .collect()
    }

    /// Intra-iteration successors of `op`.
    pub fn successors(&self, op: OpId) -> Vec<OpId> {
        self.zero_distance_successors(op)
    }

    /// A topological order of the operations over intra-iteration edges.
    ///
    /// Always succeeds on a validated CDFG.
    pub fn topo_order(&self) -> Vec<OpId> {
        let n = self.ops.len();
        let mut indeg = vec![0usize; n];
        for op in &self.ops {
            indeg[op.id.index()] = self.zero_distance_predecessors(op.id).len();
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(OpId(u as u32));
            for s in self.zero_distance_successors(OpId(u as u32)) {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s.index());
                }
            }
        }
        debug_assert_eq!(order.len(), n, "validated CDFG must be acyclic");
        order
    }

    /// Enumerates behavioral loops (dependency cycles), up to `max`
    /// of them, using Johnson-style elementary-circuit search.
    ///
    /// Every returned loop has `total_distance ≥ 1` because validation
    /// guarantees the distance-0 subgraph is acyclic. These are the loops
    /// that scan-variable selection (survey §3.3.1) must break.
    pub fn loops(&self, max: usize) -> Vec<CdfgLoop> {
        let n = self.ops.len();
        // adjacency with edge payloads
        let mut adj: Vec<Vec<(usize, VarId, u32)>> = vec![Vec::new(); n];
        for e in self.data_edges() {
            adj[e.from.index()].push((e.to.index(), e.var, e.distance));
        }
        let mut result = Vec::new();
        let mut blocked = vec![false; n];
        let mut block_map: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut stack: Vec<(usize, VarId, u32)> = Vec::new();

        fn unblock(v: usize, blocked: &mut [bool], block_map: &mut [Vec<usize>]) {
            blocked[v] = false;
            let waiters = std::mem::take(&mut block_map[v]);
            for w in waiters {
                if blocked[w] {
                    unblock(w, blocked, block_map);
                }
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn circuit(
            v: usize,
            start: usize,
            adj: &[Vec<(usize, VarId, u32)>],
            blocked: &mut Vec<bool>,
            block_map: &mut Vec<Vec<usize>>,
            stack: &mut Vec<(usize, VarId, u32)>,
            result: &mut Vec<CdfgLoop>,
            max: usize,
        ) -> bool {
            let mut found = false;
            blocked[v] = true;
            for &(w, var, dist) in &adj[v] {
                if w < start || result.len() >= max {
                    continue;
                }
                if w == start {
                    // complete cycle: stack holds edges start..v, plus this edge
                    let mut ops: Vec<OpId> = vec![OpId(start as u32)];
                    let mut vars = Vec::new();
                    let mut total = 0;
                    for &(node, evar, edist) in stack.iter() {
                        ops.push(OpId(node as u32));
                        vars.push(evar);
                        total += edist;
                    }
                    // rotate: stack entries are (to-node, var-on-edge-into-it, dist)
                    vars.push(var);
                    total += dist;
                    if total >= 1 {
                        result.push(CdfgLoop {
                            ops,
                            vars,
                            total_distance: total,
                        });
                    }
                    found = true;
                } else if !blocked[w] {
                    stack.push((w, var, dist));
                    if circuit(w, start, adj, blocked, block_map, stack, result, max) {
                        found = true;
                    }
                    stack.pop();
                }
            }
            if found {
                unblock(v, blocked, block_map);
            } else {
                for &(w, _, _) in &adj[v] {
                    if w >= start && !block_map[w].contains(&v) {
                        block_map[w].push(v);
                    }
                }
            }
            found
        }

        for start in 0..n {
            if result.len() >= max {
                break;
            }
            for b in blocked.iter_mut() {
                *b = false;
            }
            for m in block_map.iter_mut() {
                m.clear();
            }
            stack.clear();
            circuit(
                start,
                start,
                &adj,
                &mut blocked,
                &mut block_map,
                &mut stack,
                &mut result,
                max,
            );
        }
        result
    }

    /// Runs the behavior for `input_streams.values().next().len()`
    /// iterations and returns the per-iteration values of every variable.
    ///
    /// `input_streams` maps each primary input name to its value per
    /// iteration; loop-carried reads that reach before iteration 0 see
    /// `initial.get(name)` or 0. This reference interpreter is what the
    /// transformation tests use to prove behavior preservation.
    ///
    /// # Panics
    ///
    /// Panics if a primary input is missing from `input_streams` or the
    /// streams have unequal lengths; use
    /// [`try_evaluate`](Self::try_evaluate) to get those as errors.
    pub fn evaluate(
        &self,
        input_streams: &HashMap<String, Vec<u64>>,
        initial: &HashMap<String, u64>,
        width: u32,
    ) -> HashMap<String, Vec<u64>> {
        self.try_evaluate(input_streams, initial, width)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`evaluate`](Self::evaluate), but malformed stimuli are errors.
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::BadInputStream`] when a primary input has no
    /// stream or the streams have unequal lengths.
    pub fn try_evaluate(
        &self,
        input_streams: &HashMap<String, Vec<u64>>,
        initial: &HashMap<String, u64>,
        width: u32,
    ) -> Result<HashMap<String, Vec<u64>>, CdfgError> {
        let iterations = input_streams.values().map(Vec::len).next().unwrap_or(0);
        for (name, s) in input_streams {
            if s.len() != iterations {
                return Err(CdfgError::BadInputStream {
                    what: format!(
                        "stream `{name}` has {} values, expected {iterations}",
                        s.len()
                    ),
                });
            }
        }
        for v in self.inputs() {
            if !input_streams.contains_key(&v.name) {
                return Err(CdfgError::BadInputStream {
                    what: format!("missing stream for input `{}`", v.name),
                });
            }
        }
        let order = self.topo_order();
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        // history[var][iter]
        let mut history: Vec<Vec<u64>> = vec![Vec::with_capacity(iterations); self.vars.len()];
        for it in 0..iterations {
            // Seed inputs and constants for this iteration, masked to the
            // data-path width (hardware pins carry only `width` bits).
            for v in &self.vars {
                match &v.kind {
                    VarKind::Input => {
                        // Presence and length were checked above.
                        let stream = &input_streams[&v.name];
                        history[v.id.index()].push(stream[it] & mask);
                    }
                    VarKind::Constant(c) => history[v.id.index()].push(*c & mask),
                    _ => history[v.id.index()].push(0), // placeholder, filled below
                }
            }
            for &opid in &order {
                let op = &self.ops[opid.index()];
                let inputs: Vec<u64> = op
                    .inputs
                    .iter()
                    .map(|operand| {
                        let d = operand.distance as usize;
                        if d > it {
                            let v = &self.vars[operand.var.index()];
                            *initial.get(&v.name).unwrap_or(&0) & mask
                        } else {
                            history[operand.var.index()][it - d]
                        }
                    })
                    .collect();
                let value = op.kind.eval(&inputs, width);
                history[op.output.index()][it] = value;
            }
        }
        Ok(self
            .vars
            .iter()
            .map(|v| (v.name.clone(), history[v.id.index()].clone()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;

    fn chain() -> Cdfg {
        let mut b = CdfgBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op(OpKind::Add, &[a, c], "t");
        let _o = b.op_output(OpKind::Mul, &[t, c], "o");
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_validates_chain() {
        let g = chain();
        assert_eq!(g.num_ops(), 2);
        assert_eq!(g.inputs().count(), 2);
        assert_eq!(g.outputs().count(), 1);
        assert!(g.loops(8).is_empty());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = chain();
        let order = g.topo_order();
        let pos: HashMap<OpId, usize> = order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        for e in g.data_edges() {
            if e.distance == 0 {
                assert!(pos[&e.from] < pos[&e.to]);
            }
        }
    }

    #[test]
    fn loop_carried_dependency_forms_a_loop() {
        let mut b = CdfgBuilder::new("acc");
        let x = b.input("x");
        let acc = b.forward("acc", 1);
        let sum = b.op_output(OpKind::Add, &[x, acc], "sum");
        b.bind_forward(acc, sum);
        let g = b.finish().unwrap();
        let loops = g.loops(8);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].total_distance, 1);
    }

    #[test]
    fn zero_distance_cycle_is_rejected() {
        // a = b + 1; b = a + 1 with no delay: combinational cycle.
        let mut b = CdfgBuilder::new("bad");
        let one = b.constant(1);
        let fa = b.forward("fa", 0);
        let vb = b.op(OpKind::Add, &[fa, one], "b");
        let va = b.op(OpKind::Add, &[vb, one], "a");
        b.bind_forward(fa, va);
        assert!(matches!(
            b.finish(),
            Err(CdfgError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn evaluate_accumulator() {
        let mut b = CdfgBuilder::new("acc");
        let x = b.input("x");
        let acc = b.forward("acc_prev", 1);
        let sum = b.op_output(OpKind::Add, &[x, acc], "sum");
        b.bind_forward(acc, sum);
        let g = b.finish().unwrap();

        let mut streams = HashMap::new();
        streams.insert("x".to_string(), vec![1, 2, 3, 4]);
        let out = g.evaluate(&streams, &HashMap::new(), 16);
        assert_eq!(out["sum"], vec![1, 3, 6, 10]);
    }

    #[test]
    fn evaluate_respects_initial_values() {
        let mut b = CdfgBuilder::new("acc");
        let x = b.input("x");
        let acc = b.forward("prev", 1);
        let sum = b.op_output(OpKind::Add, &[x, acc], "sum");
        b.bind_forward(acc, sum);
        let g = b.finish().unwrap();

        let mut streams = HashMap::new();
        streams.insert("x".to_string(), vec![1, 1]);
        let mut init = HashMap::new();
        init.insert("sum".to_string(), 100);
        let out = g.evaluate(&streams, &init, 16);
        assert_eq!(out["sum"], vec![101, 102]);
    }

    #[test]
    fn try_evaluate_rejects_malformed_stimuli() {
        let g = chain();
        // Missing input stream for `c`.
        let mut streams = HashMap::new();
        streams.insert("a".to_string(), vec![1, 2]);
        assert!(matches!(
            g.try_evaluate(&streams, &HashMap::new(), 8),
            Err(CdfgError::BadInputStream { .. })
        ));
        // Unequal stream lengths.
        streams.insert("c".to_string(), vec![1]);
        assert!(matches!(
            g.try_evaluate(&streams, &HashMap::new(), 8),
            Err(CdfgError::BadInputStream { .. })
        ));
        // Well-formed stimuli succeed.
        streams.insert("c".to_string(), vec![3, 4]);
        assert!(g.try_evaluate(&streams, &HashMap::new(), 8).is_ok());
    }

    #[test]
    fn data_edges_cover_all_operands_with_defs() {
        let g = chain();
        // t feeds o: exactly one edge between ops.
        let edges = g.data_edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].distance, 0);
    }
}
