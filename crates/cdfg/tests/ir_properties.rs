//! Property tests of the behavioral IR on random graphs.

use std::collections::HashMap;

use hlstb_cdfg::benchmarks::{random_cdfg, RandomCdfgParams};
use hlstb_cdfg::{LifetimeMap, Schedule, StepSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random(seed: u64, ops: usize, states: usize) -> hlstb_cdfg::Cdfg {
    let mut rng = StdRng::seed_from_u64(seed);
    random_cdfg(
        RandomCdfgParams {
            ops,
            inputs: 3,
            states,
            mul_percent: 25,
        },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Topological order respects every intra-iteration edge.
    #[test]
    fn topo_order_is_a_linear_extension(seed in 0u64..5000, ops in 4usize..24) {
        let g = random(seed, ops, 2);
        let order = g.topo_order();
        let pos: HashMap<_, _> = order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        for e in g.data_edges() {
            if e.distance == 0 {
                prop_assert!(pos[&e.from] < pos[&e.to]);
            }
        }
    }

    /// Every enumerated loop really is a cycle with positive distance.
    #[test]
    fn loops_are_genuine_cycles(seed in 0u64..5000, ops in 5usize..20, states in 1usize..4) {
        prop_assume!(states + 1 < ops);
        let g = random(seed, ops, states);
        for l in g.loops(256) {
            prop_assert!(l.total_distance >= 1);
            prop_assert_eq!(l.ops.len(), l.vars.len());
            // Consecutive ops are joined by a data edge through the
            // recorded variable.
            for (i, &op) in l.ops.iter().enumerate() {
                let var = l.vars[i];
                prop_assert_eq!(g.var(var).def, Some(op));
                let next = l.ops[(i + 1) % l.ops.len()];
                prop_assert!(
                    g.op(next).inputs.iter().any(|o| o.var == var),
                    "edge {} -> {} missing", op, next
                );
            }
        }
    }

    /// The interpreter is deterministic and width-masking is sound.
    #[test]
    fn evaluate_masks_and_repeats(seed in 0u64..5000, ops in 4usize..16) {
        let g = random(seed, ops, 1);
        let streams: HashMap<String, Vec<u64>> = g
            .inputs()
            .map(|v| (v.name.clone(), vec![seed & 0xff, 200, 3]))
            .collect();
        let a = g.evaluate(&streams, &HashMap::new(), 5);
        let b = g.evaluate(&streams, &HashMap::new(), 5);
        prop_assert_eq!(&a, &b);
        for vals in a.values() {
            for &v in vals {
                prop_assert!(v < 32, "value exceeds 5-bit mask");
            }
        }
    }

    /// ASAP-style packed schedules always validate and lifetimes stay in
    /// range.
    #[test]
    fn lifetimes_stay_within_period(seed in 0u64..5000, ops in 4usize..16) {
        let g = random(seed, ops, 1);
        // Serial schedule: op i at step i (latencies accounted).
        let mut t = 0u32;
        let order = g.topo_order();
        let mut start = vec![0u32; g.num_ops()];
        for &op in &order {
            start[op.index()] = t;
            t += g.op(op).kind.default_latency();
        }
        let s = Schedule::new(&g, start).expect("serial schedules are legal");
        let lt = LifetimeMap::compute(&g, &s);
        let all = StepSet::all(s.num_steps());
        for v in lt.vars().collect::<Vec<_>>() {
            let steps = lt.get(v).unwrap().steps;
            prop_assert_eq!(steps.union(all), all, "lifetime exceeds period");
        }
    }

    /// DOT output is structurally balanced for any graph.
    #[test]
    fn dot_is_balanced(seed in 0u64..5000, ops in 4usize..20) {
        let g = random(seed, ops, 2);
        let dot = hlstb_cdfg::dot::to_dot(&g);
        prop_assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        let header = format!("digraph \"{}\"", g.name());
        let has_header = dot.contains(&header);
        prop_assert!(has_header);
    }
}
