//! Offline drop-in subset of the `rand 0.8` API.
//!
//! The workspace must build with no network access, so the external
//! `rand` crate is replaced by this path dependency. It implements the
//! exact API surface the workbench uses — [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] — over a xoshiro256** generator seeded through
//! SplitMix64. Streams are deterministic per seed and stable across
//! platforms, which is all the experiments require of it (they never
//! claimed bit-compatibility with upstream `rand`; every consumer seeds
//! explicitly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The low-level generator interface: a source of 64 random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values samplable uniformly from a generator's raw 64-bit output.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types with a uniform sampler over a half-open or closed interval.
///
/// One blanket `SampleRange` impl per range shape over this trait (the
/// upstream structure) — per-type range impls would make integer-literal
/// inference fall back to `i32` in expressions like
/// `rng.gen_range(0..100) < x_u32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi]` when `inclusive`, else `[lo, hi)`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // u128 wrapping arithmetic handles signed bounds:
                // span only depends on the two's-complement distance.
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(u128::from(inclusive));
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly: `rng.gen_range(lo..hi)`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Small, fast, and statistically solid for the
    /// pattern-generation and benchmark-synthesis workloads here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va, (0..8).map(|_| c.gen()).collect::<Vec<u64>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn bits_look_mixed() {
        let mut rng = StdRng::seed_from_u64(3);
        let ones: u32 = (0..64).map(|_| rng.gen::<u64>().count_ones()).sum();
        // 64 draws × 64 bits: expect ~2048 ones; allow a wide band.
        assert!((1700..2400).contains(&ones), "{ones}");
    }
}
