//! Offline drop-in subset of the `criterion 0.5` API.
//!
//! The workspace must build with no network access, so the external
//! `criterion` crate is replaced by this path dependency implementing
//! the surface the benches use: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId::new`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs
//! `sample_size` timed samples after one warm-up and prints mean and
//! minimum wall time — no statistics engine, no HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A benchmark identifier: function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(&id.to_string(), |b| f(b));
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.name, |b| f(b, input));
    }

    /// Ends the group (upstream flushes reports here; we need nothing).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b); // warm-up, discarded
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            total += b.elapsed;
            min = min.min(b.elapsed);
        }
        let mean = total / self.sample_size as u32;
        println!(
            "  {}/{id}: mean {:>12?}  min {:>12?}  ({} samples)",
            self.name, mean, min, self.sample_size
        );
    }
}

/// Times closures for one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `f` (upstream runs many iterations per
    /// sample; one per sample is accurate enough for these multi-ms
    /// workloads and keeps bench wall time bounded).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        black_box(out);
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, counting_bench);

    #[test]
    fn group_runs_every_sample() {
        benches();
    }
}
