//! Round-trip properties of the test-environment machinery on random
//! loop-free behaviors: whatever `justify` promises, the reference
//! interpreter must deliver.

use std::collections::HashMap;

use hlstb_cdfg::benchmarks::{random_cdfg, RandomCdfgParams};
use hlstb_testgen::environment::{justify, propagate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn justify_promises_are_kept(
        seed in 0u64..5_000,
        ops in 4usize..14,
        value in 0u64..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Loop-free (states = 0): intra-iteration justification domain.
        let g = random_cdfg(
            RandomCdfgParams { ops, inputs: 3, states: 0, mul_percent: 30 },
            &mut rng,
        );
        for v in g.vars() {
            if let Some(assign) = justify(&g, v.id, value, 4) {
                let streams: HashMap<String, Vec<u64>> = g
                    .inputs()
                    .map(|i| (i.name.clone(), vec![*assign.get(&i.name).unwrap_or(&0)]))
                    .collect();
                let out = g.evaluate(&streams, &HashMap::new(), 4);
                prop_assert_eq!(
                    out[&v.name][0], value,
                    "justify({}, {}) broke its promise (seed {})", v.name, value, seed
                );
            }
        }
    }

    #[test]
    fn propagation_promises_are_kept(
        seed in 0u64..5_000,
        ops in 4usize..14,
        fill in 0u64..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_cdfg(
            RandomCdfgParams { ops, inputs: 3, states: 0, mul_percent: 30 },
            &mut rng,
        );
        for v in g.vars() {
            if let Some((assign, po)) = propagate(&g, v.id, 4) {
                let streams: HashMap<String, Vec<u64>> = g
                    .inputs()
                    .map(|i| {
                        (
                            i.name.clone(),
                            vec![*assign.get(&i.name).unwrap_or(&fill)],
                        )
                    })
                    .collect();
                let out = g.evaluate(&streams, &HashMap::new(), 4);
                prop_assert_eq!(
                    out[&po][0], out[&v.name][0],
                    "propagate({}) to {} broke value preservation (seed {})",
                    v.name, po, seed
                );
            }
        }
    }
}
