//! Symbolic test environments (Bhatia & Jha's Genesis — survey §6).
//!
//! A *test environment* for an operation is a pair of symbolic paths:
//! justification paths that can deliver **any** value to each of its
//! operands from the primary inputs, and a transparent propagation path
//! that carries its result — unchanged — to a primary output. Arithmetic
//! transparency supplies both: an adder with 0 on its side port, a
//! multiplier with 1, a mux with its select pinned.

use std::collections::HashMap;

use hlstb_cdfg::{Cdfg, OpId, OpKind, VarId, VarKind};

fn mask(width: u32) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// One transparent "mode" of an operation: the carrying port, the
/// constants required on the other ports, and the inverse mapping from
/// the desired output value to the carried value.
type Mode = (usize, Vec<(usize, u64)>, fn(u64, u64) -> u64);

/// The transparent modes of an operation.
fn modes(kind: OpKind, width: u32) -> Vec<Mode> {
    fn ident(v: u64, _m: u64) -> u64 {
        v
    }
    fn neg(v: u64, m: u64) -> u64 {
        v.wrapping_neg() & m
    }
    fn inv(v: u64, m: u64) -> u64 {
        !v & m
    }
    let ones = mask(width);
    match kind {
        OpKind::Add => vec![(0, vec![(1, 0)], ident), (1, vec![(0, 0)], ident)],
        OpKind::Sub => vec![(0, vec![(1, 0)], ident), (1, vec![(0, 0)], neg)],
        OpKind::Mul => vec![(0, vec![(1, 1)], ident), (1, vec![(0, 1)], ident)],
        OpKind::And => vec![(0, vec![(1, ones)], ident), (1, vec![(0, ones)], ident)],
        OpKind::Or | OpKind::Xor => vec![(0, vec![(1, 0)], ident), (1, vec![(0, 0)], ident)],
        OpKind::Not => vec![(0, vec![], inv)],
        OpKind::Shl | OpKind::Shr => vec![(0, vec![(1, 0)], ident)],
        OpKind::Select => vec![(1, vec![(0, 1)], ident), (2, vec![(0, 0)], ident)],
        OpKind::Pass => vec![(0, vec![], ident)],
        OpKind::Lt | OpKind::Eq => Vec::new(), // comparators are opaque
    }
}

/// Whether each variable can be justified to an arbitrary value from the
/// primary inputs within one iteration (optimistic: simultaneity
/// conflicts are checked only during concrete translation).
pub fn justifiable_any(cdfg: &Cdfg, width: u32) -> Vec<bool> {
    let mut ok = vec![false; cdfg.num_vars()];
    for v in cdfg.vars() {
        if v.kind == VarKind::Input {
            ok[v.id.index()] = true;
        }
    }
    let const_of = |v: VarId| match cdfg.var(v).kind {
        VarKind::Constant(c) => Some(c & mask(width)),
        _ => None,
    };
    let mut changed = true;
    while changed {
        changed = false;
        for op in cdfg.ops() {
            if ok[op.output.index()] {
                continue;
            }
            for (carry, fixed, _) in modes(op.kind, width) {
                let carry_op = op.inputs[carry];
                if carry_op.distance != 0 || !ok[carry_op.var.index()] {
                    continue;
                }
                let fixed_ok = fixed.iter().all(|&(p, k)| {
                    let o = op.inputs[p];
                    o.distance == 0
                        && (const_of(o.var) == Some(k & mask(width)) || ok[o.var.index()])
                });
                if fixed_ok {
                    ok[op.output.index()] = true;
                    changed = true;
                    break;
                }
            }
        }
    }
    ok
}

/// Whether each variable's value can propagate unchanged (modulo
/// invertible unaries excluded here for simplicity) to a primary output.
pub fn observable_any(cdfg: &Cdfg, width: u32) -> Vec<bool> {
    let just = justifiable_any(cdfg, width);
    let const_of = |v: VarId| match cdfg.var(v).kind {
        VarKind::Constant(c) => Some(c & mask(width)),
        _ => None,
    };
    let mut ok = vec![false; cdfg.num_vars()];
    for v in cdfg.vars() {
        if v.kind == VarKind::Output {
            ok[v.id.index()] = true;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for op in cdfg.ops() {
            if !ok[op.output.index()] {
                continue;
            }
            for (carry, fixed, f) in modes(op.kind, width) {
                // Only value-preserving propagation (identity inverse).
                if f(5, mask(width)) != 5 {
                    continue;
                }
                let carry_op = op.inputs[carry];
                if carry_op.distance != 0 || ok[carry_op.var.index()] {
                    continue;
                }
                let fixed_ok = fixed.iter().all(|&(p, k)| {
                    let o = op.inputs[p];
                    o.distance == 0
                        && (const_of(o.var) == Some(k & mask(width)) || just[o.var.index()])
                });
                if fixed_ok {
                    ok[carry_op.var.index()] = true;
                    changed = true;
                }
            }
        }
    }
    ok
}

/// Whether an operation has a full test environment: every operand
/// justifiable to arbitrary values and its result observable.
pub fn has_environment(cdfg: &Cdfg, op: OpId, width: u32) -> bool {
    let just = justifiable_any(cdfg, width);
    let obs = observable_any(cdfg, width);
    let o = cdfg.op(op);
    o.inputs.iter().all(|operand| {
        operand.distance == 0
            && (just[operand.var.index()]
                || matches!(cdfg.var(operand.var).kind, VarKind::Constant(_)))
    }) && (obs[o.output.index()] || cdfg.var(o.output).kind == VarKind::Output)
}

/// Concretely justifies `var = value`: returns the primary-input
/// assignment that produces it, or `None` when no conflict-free
/// justification exists.
///
/// # Example
///
/// ```
/// use hlstb_cdfg::benchmarks;
/// use hlstb_testgen::environment::justify;
///
/// let cdfg = benchmarks::figure1();
/// let e = cdfg.var_by_name("e").unwrap().id; // internal sum
/// let assignment = justify(&cdfg, e, 9, 4).expect("figure 1 is transparent");
/// assert!(!assignment.is_empty());
/// ```
pub fn justify(cdfg: &Cdfg, var: VarId, value: u64, width: u32) -> Option<HashMap<String, u64>> {
    let value = value & mask(width);
    let v = cdfg.var(var);
    match v.kind {
        VarKind::Input => {
            let mut m = HashMap::new();
            m.insert(v.name.clone(), value);
            Some(m)
        }
        VarKind::Constant(c) => (c & mask(width) == value).then(HashMap::new),
        _ => {
            let def = v.def?;
            let op = cdfg.op(def);
            // Constant-amount shifts are concretely invertible when no
            // set bits fall off the end, even though they are not
            // arbitrary-value transparent.
            if matches!(op.kind, OpKind::Shl | OpKind::Shr) {
                if let VarKind::Constant(k) = cdfg.var(op.inputs[1].var).kind {
                    let k = (k & 63) as u32;
                    let m = mask(width);
                    let needed = match op.kind {
                        OpKind::Shl => value >> k,
                        _ => (value << k) & m,
                    };
                    let round_trip = match op.kind {
                        OpKind::Shl => (needed << k) & m,
                        _ => (needed & m) >> k,
                    };
                    if round_trip == value && op.inputs[0].distance == 0 {
                        if let Some(acc) = justify(cdfg, op.inputs[0].var, needed, width) {
                            return Some(acc);
                        }
                    }
                }
            }
            for (carry, fixed, f) in modes(op.kind, width) {
                let carry_operand = op.inputs[carry];
                if carry_operand.distance != 0 {
                    continue;
                }
                let needed = f(value, mask(width));
                let Some(mut acc) = justify(cdfg, carry_operand.var, needed, width) else {
                    continue;
                };
                let mut okm = true;
                for &(p, k) in &fixed {
                    let o = op.inputs[p];
                    if o.distance != 0 {
                        okm = false;
                        break;
                    }
                    match justify(cdfg, o.var, k, width) {
                        Some(sub) => {
                            if !merge(&mut acc, &sub) {
                                okm = false;
                                break;
                            }
                        }
                        None => {
                            okm = false;
                            break;
                        }
                    }
                }
                if okm {
                    return Some(acc);
                }
            }
            None
        }
    }
}

/// Concretely sensitizes a value-preserving path from `var` to a primary
/// output: returns the side-input assignment and the output's name.
pub fn propagate(cdfg: &Cdfg, var: VarId, width: u32) -> Option<(HashMap<String, u64>, String)> {
    let v = cdfg.var(var);
    if v.kind == VarKind::Output {
        return Some((HashMap::new(), v.name.clone()));
    }
    for &(user, port) in &v.uses {
        let op = cdfg.op(user);
        if op.inputs[port].distance != 0 {
            continue;
        }
        for (carry, fixed, f) in modes(op.kind, width) {
            if carry != port || f(5, mask(width)) != 5 {
                continue;
            }
            let mut acc = HashMap::new();
            let mut okm = true;
            for &(p, k) in &fixed {
                let o = op.inputs[p];
                if o.distance != 0 {
                    okm = false;
                    break;
                }
                match justify(cdfg, o.var, k, width) {
                    Some(sub) => {
                        if !merge(&mut acc, &sub) {
                            okm = false;
                            break;
                        }
                    }
                    None => {
                        okm = false;
                        break;
                    }
                }
            }
            if !okm {
                continue;
            }
            if let Some((rest, po)) = propagate(cdfg, op.output, width) {
                if merge(&mut acc, &rest) {
                    return Some((acc, po));
                }
            }
        }
    }
    None
}

/// Merges `other` into `acc`; `false` on a conflicting assignment.
pub fn merge(acc: &mut HashMap<String, u64>, other: &HashMap<String, u64>) -> bool {
    for (k, &v) in other {
        match acc.get(k) {
            Some(&cur) if cur != v => return false,
            _ => {
                acc.insert(k.clone(), v);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlstb_cdfg::benchmarks;
    use hlstb_cdfg::CdfgBuilder;

    fn streams_from(cdfg: &Cdfg, assign: &HashMap<String, u64>) -> HashMap<String, Vec<u64>> {
        cdfg.inputs()
            .map(|v| (v.name.clone(), vec![*assign.get(&v.name).unwrap_or(&0)]))
            .collect()
    }

    #[test]
    fn justify_through_add_chain() {
        // o = ((a + b) + c) — justify the inner sum to 42.
        let mut b = CdfgBuilder::new("t");
        let a = b.input("a");
        let b2 = b.input("b");
        let c = b.input("c");
        let s1 = b.op(OpKind::Add, &[a, b2], "s1");
        b.op_output(OpKind::Add, &[s1, c], "o");
        let g = b.finish().unwrap();
        let s1_id = g.var_by_name("s1").unwrap().id;
        let assign = justify(&g, s1_id, 42, 8).unwrap();
        let out = g.evaluate(&streams_from(&g, &assign), &HashMap::new(), 8);
        assert_eq!(out["s1"][0], 42);
    }

    #[test]
    fn justify_through_mul_uses_unit_constant() {
        let mut b = CdfgBuilder::new("t");
        let a = b.input("a");
        let k = b.input("k");
        let m = b.op(OpKind::Mul, &[a, k], "m");
        b.op_output(OpKind::Pass, &[m], "o");
        let g = b.finish().unwrap();
        let m_id = g.var_by_name("m").unwrap().id;
        let assign = justify(&g, m_id, 77, 8).unwrap();
        let out = g.evaluate(&streams_from(&g, &assign), &HashMap::new(), 8);
        assert_eq!(out["m"][0], 77);
    }

    #[test]
    fn justify_inverts_sub_and_not() {
        let mut b = CdfgBuilder::new("t");
        let a = b.input("a");
        let n = b.op(OpKind::Not, &[a], "n");
        b.op_output(OpKind::Pass, &[n], "o");
        let g = b.finish().unwrap();
        let n_id = g.var_by_name("n").unwrap().id;
        let assign = justify(&g, n_id, 0xA5 & 0xff, 8).unwrap();
        let out = g.evaluate(&streams_from(&g, &assign), &HashMap::new(), 8);
        assert_eq!(out["n"][0], 0xA5);
    }

    #[test]
    fn propagation_reaches_an_output_unchanged() {
        let g = benchmarks::tseng();
        let t1 = g.var_by_name("t1").unwrap().id;
        if let Some((assign, po)) = propagate(&g, t1, 8) {
            // Drive t1's producers with something and check the PO
            // carries t1's value.
            let mut full = assign.clone();
            full.entry("r1".into()).or_insert(5);
            full.entry("r2".into()).or_insert(9);
            let out = g.evaluate(&streams_from(&g, &full), &HashMap::new(), 8);
            assert_eq!(out[&po][0], out["t1"][0]);
        }
    }

    #[test]
    fn constants_justify_only_their_own_value() {
        let mut b = CdfgBuilder::new("t");
        let a = b.input("a");
        let k = b.constant(7);
        let s = b.op(OpKind::Add, &[a, k], "s");
        b.op_output(OpKind::Pass, &[s], "o");
        let g = b.finish().unwrap();
        let k_id = g.ops().next().unwrap().inputs[1].var;
        assert!(justify(&g, k_id, 7, 8).is_some());
        assert!(justify(&g, k_id, 8, 8).is_none());
    }

    #[test]
    fn environment_exists_for_simple_dataflow_ops() {
        let g = benchmarks::figure1();
        for op in g.ops() {
            assert!(
                has_environment(&g, op.id, 8),
                "{} lacks an environment",
                op.id
            );
        }
    }

    #[test]
    fn comparator_outputs_are_not_justifiable_any() {
        let g = benchmarks::diffeq();
        let just = justifiable_any(&g, 8);
        let c = g.var_by_name("c").unwrap().id; // comparison output
        assert!(!just[c.index()]);
    }

    #[test]
    fn merge_detects_conflicts() {
        let mut a = HashMap::new();
        a.insert("x".to_string(), 1u64);
        let mut b = HashMap::new();
        b.insert("x".to_string(), 2u64);
        assert!(!merge(&mut a, &b));
        b.insert("x".to_string(), 1u64);
        let mut a2 = HashMap::new();
        a2.insert("x".to_string(), 1u64);
        assert!(merge(&mut a2, &b));
    }
}
