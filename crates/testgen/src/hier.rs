//! Hierarchical test composition from precomputed module tests
//! (Murray & Hayes, ITC'88; Vishakantaiah, Abraham & Saab's CHEETA —
//! survey §6).
//!
//! Each functional unit is tested in isolation by combinational ATPG on
//! its own gate structure (small, fast, exact), and every module pattern
//! is then *translated* to chip-level primary-input vectors through a
//! test environment of one of the module's operations. The claim this
//! reproduces: hierarchical generation reaches module-test coverage with
//! a fraction of the effort flat sequential ATPG needs.

use std::collections::HashMap;

use hlstb_cdfg::{Cdfg, OpId, OpKind};
use hlstb_hls::bind::Binding;
use hlstb_netlist::atpg::{generate_all, AtpgOptions, Effort};
use hlstb_netlist::fault::collapsed_faults;
use hlstb_netlist::net::{Netlist, NetlistBuilder};

use crate::environment::{has_environment, justify, merge, propagate};

/// A standalone gate-level model of one operation kind at `width` bits.
pub fn module_netlist(kind: OpKind, width: u32) -> Netlist {
    let mut b = NetlistBuilder::new(format!("mod_{kind:?}"));
    let a = b.inputs("a", width);
    let c = b.inputs("b", width);
    let out = match kind {
        OpKind::Add => {
            let (s, co) = b.ripple_add(&a, &c);
            b.output("cout", co);
            s
        }
        OpKind::Sub => {
            let (s, co) = b.ripple_sub(&a, &c);
            b.output("cout", co);
            s
        }
        OpKind::Mul => b.array_mul(&a, &c),
        OpKind::And => b.bitwise(hlstb_netlist::net::GateKind::And, &a, &c),
        OpKind::Or => b.bitwise(hlstb_netlist::net::GateKind::Or, &a, &c),
        OpKind::Xor => b.bitwise(hlstb_netlist::net::GateKind::Xor, &a, &c),
        OpKind::Not => a.iter().map(|&x| b.not(x)).collect(),
        OpKind::Shl | OpKind::Shr | OpKind::Pass | OpKind::Select => {
            a.clone() // transparent structures: trivially tested via Pass
        }
        OpKind::Lt => {
            let bit = b.lt_bus(&a, &c);
            vec![bit]
        }
        OpKind::Eq => {
            let bit = b.eq_bus(&a, &c);
            vec![bit]
        }
    };
    b.outputs("y", &out);
    b.finish().expect("module blocks are valid")
}

/// Module-level test patterns as `(a, b)` operand pairs, plus the ATPG
/// effort spent obtaining them.
pub fn module_patterns(kind: OpKind, width: u32) -> (Vec<(u64, u64)>, Effort, f64) {
    let nl = module_netlist(kind, width);
    let faults = collapsed_faults(&nl);
    let run = generate_all(&nl, &faults, &AtpgOptions::default());
    let mut patterns = Vec::new();
    for frame in &run.patterns {
        let mut a = 0u64;
        let mut b = 0u64;
        for bit in 0..width as usize {
            if frame.pi.get(bit).copied().unwrap_or(0) & 1 == 1 {
                a |= 1 << bit;
            }
            if frame.pi.get(width as usize + bit).copied().unwrap_or(0) & 1 == 1 {
                b |= 1 << bit;
            }
        }
        patterns.push((a, b));
    }
    (patterns, run.effort, run.coverage_percent())
}

/// One translated chip-level test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslatedTest {
    /// The module (functional-unit index).
    pub module: usize,
    /// The environment operation used.
    pub op: OpId,
    /// Primary-input assignment (missing inputs are don't-care 0).
    pub assignment: HashMap<String, u64>,
    /// The observing primary output.
    pub po: String,
    /// The module pattern this realizes.
    pub pattern: (u64, u64),
}

/// Result of hierarchical test composition.
#[derive(Debug, Clone)]
pub struct HierResult {
    /// Successfully translated chip-level tests.
    pub tests: Vec<TranslatedTest>,
    /// Module patterns that could not be translated conflict-free.
    pub untranslated: usize,
    /// Total module-level ATPG effort.
    pub module_effort: Effort,
    /// Mean module-level fault coverage (percent).
    pub module_coverage: f64,
}

/// Generates module tests for every unit and translates them through the
/// test environment of one of the unit's operations.
pub fn hierarchical_tests(cdfg: &Cdfg, binding: &Binding, width: u32) -> HierResult {
    let _span = hlstb_trace::span("testgen.hier");
    let mut tests = Vec::new();
    let mut untranslated = 0;
    let mut module_effort = Effort::default();
    let mut cov_sum = 0.0;
    let mut cov_n = 0usize;
    for (m, fu) in binding.fus.iter().enumerate() {
        // Pick an environment op per kind executed on this module.
        let mut kinds: Vec<OpKind> = fu.ops.iter().map(|&o| cdfg.op(o).kind).collect();
        kinds.sort();
        kinds.dedup();
        for kind in kinds {
            // Prefer an operation with a full symbolic environment, but
            // fall back to concrete per-pattern attempts on every
            // operation of the kind — specific values often translate
            // even when arbitrary values cannot.
            let mut candidates: Vec<OpId> = fu
                .ops
                .iter()
                .copied()
                .filter(|&o| cdfg.op(o).kind == kind)
                .collect();
            candidates.sort_by_key(|&o| (!has_environment(cdfg, o, width), o.0));
            let (patterns, effort, cov) = module_patterns(kind, width);
            module_effort.absorb(effort);
            cov_sum += cov;
            cov_n += 1;
            for (a, b) in patterns {
                let translated = candidates.iter().find_map(|&cand| {
                    let op = cdfg.op(cand);
                    let mut acc = justify(cdfg, op.inputs[0].var, a, width)?;
                    if op.inputs.len() > 1 {
                        let sub = justify(cdfg, op.inputs[1].var, b, width)?;
                        if !merge(&mut acc, &sub) {
                            return None;
                        }
                    }
                    let (side, po) = propagate(cdfg, op.output, width)?;
                    if !merge(&mut acc, &side) {
                        return None;
                    }
                    Some((cand, acc, po))
                });
                match translated {
                    Some((cand, assignment, po)) => tests.push(TranslatedTest {
                        module: m,
                        op: cand,
                        assignment,
                        po,
                        pattern: (a, b),
                    }),
                    None => untranslated += 1,
                }
            }
        }
    }
    HierResult {
        tests,
        untranslated,
        module_effort,
        module_coverage: if cov_n == 0 {
            100.0
        } else {
            cov_sum / cov_n as f64
        },
    }
}

/// Validates a translated test against the behavioral reference: the
/// environment op must see the pattern at its inputs and the observing
/// output must equal the op's result.
pub fn validate_test(cdfg: &Cdfg, test: &TranslatedTest, width: u32) -> bool {
    let streams: HashMap<String, Vec<u64>> = cdfg
        .inputs()
        .map(|v| {
            (
                v.name.clone(),
                vec![*test.assignment.get(&v.name).unwrap_or(&0)],
            )
        })
        .collect();
    let history = cdfg.evaluate(&streams, &HashMap::new(), width);
    let op = cdfg.op(test.op);
    let operand = |i: usize| {
        let v = cdfg.var(op.inputs[i].var);
        history[&v.name][0]
    };
    if operand(0) != test.pattern.0 {
        return false;
    }
    if op.inputs.len() > 1 && operand(1) != test.pattern.1 {
        return false;
    }
    let out_name = &cdfg.var(op.output).name;
    history[&test.po][0] == history[out_name][0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlstb_cdfg::benchmarks;
    use hlstb_hls::bind::{self, BindOptions};
    use hlstb_hls::fu::ResourceLimits;
    use hlstb_hls::sched::{self, ListPriority};

    fn binding_for(g: &Cdfg) -> Binding {
        let lim = ResourceLimits::minimal_for(g);
        let s = sched::list_schedule(g, &lim, ListPriority::Slack).unwrap();
        bind::bind(g, &s, &BindOptions::default()).unwrap()
    }

    #[test]
    fn module_atpg_fully_covers_arithmetic_blocks() {
        for kind in [OpKind::Add, OpKind::Sub, OpKind::Xor] {
            let (patterns, _, cov) = module_patterns(kind, 4);
            assert!(!patterns.is_empty());
            assert!((cov - 100.0).abs() < 1e-9, "{kind:?}: {cov}");
        }
    }

    #[test]
    fn figure1_translates_all_module_tests() {
        let g = benchmarks::figure1();
        let b = binding_for(&g);
        let r = hierarchical_tests(&g, &b, 4);
        assert!(!r.tests.is_empty());
        assert_eq!(r.untranslated, 0, "figure 1 is fully transparent");
    }

    #[test]
    fn translated_tests_validate_behaviorally() {
        let g = benchmarks::figure1();
        let b = binding_for(&g);
        let r = hierarchical_tests(&g, &b, 4);
        let valid = r.tests.iter().filter(|t| validate_test(&g, t, 4)).count();
        assert_eq!(valid, r.tests.len(), "{valid}/{}", r.tests.len());
    }

    #[test]
    fn tseng_translations_are_sound() {
        // Tseng's reconvergent structure makes many module patterns
        // untranslatable (the constraint-extraction motivation of §6);
        // whatever does translate must be behaviorally valid.
        let g = benchmarks::tseng();
        let b = binding_for(&g);
        let r = hierarchical_tests(&g, &b, 4);
        assert!(r.tests.len() + r.untranslated > 0);
        for t in &r.tests {
            assert!(validate_test(&g, t, 4));
        }
    }

    #[test]
    fn module_effort_is_recorded() {
        let g = benchmarks::diffeq();
        let b = binding_for(&g);
        let r = hierarchical_tests(&g, &b, 4);
        assert!(r.module_effort.implications > 0);
        assert!(r.module_coverage > 75.0, "{}", r.module_coverage);
    }
}
