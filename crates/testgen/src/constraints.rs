//! Constraint extraction and behavioral repair (Vishakantaiah, Abraham &
//! Abadir's ATKET; AMBIANT — survey §6 and §3.4).
//!
//! Extracting a module's test environment can fail: some operand is not
//! justifiable to arbitrary values (it hangs off a comparator, a
//! loop-carried edge, or a constant-blocked cone), or the result never
//! propagates transparently. Those failures are exactly the *global
//! constraints that cannot be satisfied*; AMBIANT's answer is to modify
//! the behavior — add test-mode injection and observation statements —
//! until every module has an environment.

use hlstb_cdfg::{Cdfg, CdfgError, OpId, OpKind, Operand, Operation, VarId, VarKind, Variable};

use crate::environment::has_environment;

/// Operations lacking a test environment at the given width.
pub fn ops_without_environment(cdfg: &Cdfg, width: u32) -> Vec<OpId> {
    cdfg.ops()
        .map(|o| o.id)
        .filter(|&o| !has_environment(cdfg, o, width))
        .collect()
}

/// The repaired behavior plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Repaired {
    /// The rewritten CDFG.
    pub cdfg: Cdfg,
    /// Added injection inputs.
    pub added_inputs: Vec<String>,
    /// Added observation outputs.
    pub added_outputs: Vec<String>,
}

/// Repairs every operation without an environment by injecting a
/// test-mode value into each unjustifiable operand and tapping
/// unobservable results. `test_mode = 0` preserves the behavior.
///
/// # Errors
///
/// Propagates [`CdfgError`] if the rewrite fails validation.
pub fn repair(cdfg: &Cdfg, width: u32) -> Result<Repaired, CdfgError> {
    let broken = ops_without_environment(cdfg, width);
    let just = crate::environment::justifiable_any(cdfg, width);
    let obs = crate::environment::observable_any(cdfg, width);

    let mut vars: Vec<Variable> = cdfg.vars().cloned().collect();
    let mut ops: Vec<Operation> = cdfg.ops().cloned().collect();
    let mut added_inputs = Vec::new();
    let mut added_outputs = Vec::new();
    let mut test_mode: Option<VarId> = None;

    let fresh = |vars: &mut Vec<Variable>, name: String, kind: VarKind| -> VarId {
        let id = VarId(vars.len() as u32);
        vars.push(Variable {
            id,
            name,
            kind,
            def: None,
            uses: Vec::new(),
        });
        id
    };

    let mut patched: Vec<(VarId, u32)> = Vec::new();
    let mut tapped: Vec<VarId> = Vec::new();
    for &bid in &broken {
        let op = cdfg.op(bid).clone();
        for operand in &op.inputs {
            let needs = operand.distance > 0
                || (!just[operand.var.index()]
                    && !matches!(cdfg.var(operand.var).kind, VarKind::Constant(_)));
            if needs && !patched.contains(&(operand.var, operand.distance)) {
                patched.push((operand.var, operand.distance));
                let base = format!("{}_d{}", cdfg.var(operand.var).name, operand.distance);
                let tm = *test_mode
                    .get_or_insert_with(|| fresh(&mut vars, "test_mode".into(), VarKind::Input));
                let inj = fresh(&mut vars, format!("{base}_inj"), VarKind::Input);
                let muxed = fresh(&mut vars, format!("{base}_tc"), VarKind::Intermediate);
                let sel = OpId(ops.len() as u32);
                ops.push(Operation {
                    id: sel,
                    kind: OpKind::Select,
                    inputs: vec![
                        Operand::now(tm),
                        Operand::now(inj),
                        Operand {
                            var: operand.var,
                            distance: operand.distance,
                        },
                    ],
                    output: muxed,
                });
                // Redirect this broken op's read (all reads at the same
                // distance benefit identically, so redirect them all).
                let dist = operand.distance;
                for o2 in ops.iter_mut() {
                    if o2.id == sel {
                        continue;
                    }
                    for x in o2.inputs.iter_mut() {
                        if x.var == operand.var && x.distance == dist {
                            *x = Operand::now(muxed);
                        }
                    }
                }
                added_inputs.push(format!("{base}_inj"));
            }
        }
        let out_ok = obs[op.output.index()] || cdfg.var(op.output).kind == VarKind::Output;
        if !out_ok && !tapped.contains(&op.output) {
            tapped.push(op.output);
            let base = cdfg.var(op.output).name.clone();
            let o = fresh(&mut vars, format!("{base}_obs"), VarKind::Output);
            ops.push(Operation {
                id: OpId(ops.len() as u32),
                kind: OpKind::Pass,
                inputs: vec![Operand::now(op.output)],
                output: o,
            });
            added_outputs.push(format!("{base}_obs"));
        }
    }

    for v in vars.iter_mut() {
        v.def = None;
        v.uses.clear();
    }
    for op in &ops {
        vars[op.output.index()].def = Some(op.id);
        for (port, o) in op.inputs.iter().enumerate() {
            vars[o.var.index()].uses.push((op.id, port));
        }
    }
    let cdfg = Cdfg::new(format!("{}_rep", cdfg.name()), vars, ops)?;
    Ok(Repaired {
        cdfg,
        added_inputs,
        added_outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlstb_cdfg::benchmarks;
    use std::collections::HashMap;

    #[test]
    fn diffeq_has_unsupported_ops() {
        // Loop-carried reads block intra-iteration justification.
        let g = benchmarks::diffeq();
        assert!(!ops_without_environment(&g, 8).is_empty());
    }

    #[test]
    fn repair_gives_every_op_an_environment() {
        for g in [
            benchmarks::diffeq(),
            benchmarks::iir_biquad(),
            benchmarks::ar_lattice(),
        ] {
            let r = repair(&g, 8).unwrap();
            // The inserted Select/Pass test statements themselves read
            // loop-carried values and are not expected to have
            // arbitrary-value environments; the claim is about the
            // original (functional) operations.
            let still: Vec<_> = ops_without_environment(&r.cdfg, 8)
                .into_iter()
                .filter(|id| id.index() < g.num_ops())
                .collect();
            assert!(
                still.is_empty(),
                "{}: {} functional ops still lack environments",
                g.name(),
                still.len()
            );
        }
    }

    #[test]
    fn repair_preserves_functional_behavior() {
        let g = benchmarks::ar_lattice();
        let r = repair(&g, 8).unwrap();
        let mut streams: HashMap<String, Vec<u64>> = g
            .inputs()
            .map(|v| (v.name.clone(), vec![5, 9, 2, 14]))
            .collect();
        let before = g.evaluate(&streams, &HashMap::new(), 8);
        streams.insert("test_mode".into(), vec![0; 4]);
        for name in &r.added_inputs {
            streams.insert(name.clone(), vec![0; 4]);
        }
        let after = r.cdfg.evaluate(&streams, &HashMap::new(), 8);
        for o in g.outputs() {
            assert_eq!(before[&o.name], after[&o.name], "{}", o.name);
        }
    }

    #[test]
    fn clean_designs_need_no_repair() {
        let g = benchmarks::figure1();
        let r = repair(&g, 8).unwrap();
        assert!(r.added_inputs.is_empty());
        assert!(r.added_outputs.is_empty());
        assert_eq!(r.cdfg.num_ops(), g.num_ops());
    }
}
