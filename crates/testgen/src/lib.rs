//! High-level synthesis and test generation — the survey's §6.
//!
//! Gate-level sequential ATPG on a whole chip is the expensive road.
//! The surveyed alternative is hierarchical: generate tests for each
//! module in isolation (cheap — the module is small and combinational),
//! then *translate* them to chip-level vectors through the module's
//! **test environment**: symbolic justification paths that deliver
//! arbitrary values to the module's inputs and a transparent propagation
//! path that carries its response to a primary output.
//!
//! * [`environment`] — symbolic justifiability/observability analysis
//!   and concrete value justification/propagation through arithmetic
//!   transparency (Bhatia & Jha's Genesis, EDTC'94);
//! * [`hier`] — precomputed module tests composed into chip-level
//!   vectors (Murray & Hayes, ITC'88; Vishakantaiah et al.'s
//!   ATKET/CHEETA);
//! * [`constraints`] — detection of operations without a test
//!   environment and AMBIANT-style behavioral repair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraints;
pub mod environment;
pub mod hier;
