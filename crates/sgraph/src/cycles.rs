//! Bounded enumeration of elementary cycles (Johnson's algorithm).

use crate::graph::{NodeId, SGraph};

/// An elementary cycle: each node appears once; `nodes[i] → nodes[i+1]`
/// and `nodes.last() → nodes[0]` are edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cycle {
    /// The nodes on the cycle in traversal order, starting from the
    /// smallest node id.
    pub nodes: Vec<NodeId>,
}

impl Cycle {
    /// Length of the cycle (1 for a self-loop).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cycle has no nodes (never true for a found cycle).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether the cycle is a self-loop.
    pub fn is_self_loop(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Whether the cycle passes through `node`.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }
}

/// Limits for [`enumerate_cycles`]; enumeration is worst-case exponential,
/// so both a count cap and a length cap are enforced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleLimits {
    /// Stop after this many cycles.
    pub max_cycles: usize,
    /// Ignore cycles longer than this.
    pub max_len: usize,
}

impl Default for CycleLimits {
    fn default() -> Self {
        CycleLimits {
            max_cycles: 10_000,
            max_len: 64,
        }
    }
}

/// Enumerates elementary cycles, self-loops included, up to the limits.
///
/// Cycles are found in increasing order of their smallest node id
/// (Johnson's start-vertex order), so truncation by `max_cycles` is
/// deterministic.
pub fn enumerate_cycles(g: &SGraph, limits: CycleLimits) -> Vec<Cycle> {
    let _span = hlstb_trace::span("sgraph.cycles");
    let n = g.num_nodes();
    let mut result = Vec::new();
    let mut blocked = vec![false; n];
    let mut block_map: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut path: Vec<usize> = Vec::new();

    fn unblock(v: usize, blocked: &mut [bool], block_map: &mut [Vec<usize>]) {
        blocked[v] = false;
        let waiters = std::mem::take(&mut block_map[v]);
        for w in waiters {
            if blocked[w] {
                unblock(w, blocked, block_map);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn circuit(
        v: usize,
        start: usize,
        g: &SGraph,
        blocked: &mut Vec<bool>,
        block_map: &mut Vec<Vec<usize>>,
        path: &mut Vec<usize>,
        result: &mut Vec<Cycle>,
        limits: CycleLimits,
    ) -> bool {
        let mut found = false;
        path.push(v);
        blocked[v] = true;
        for w in g.successors(NodeId(v as u32)).map(|x| x.index()) {
            if w < start || result.len() >= limits.max_cycles {
                continue;
            }
            if w == start {
                if path.len() <= limits.max_len {
                    result.push(Cycle {
                        nodes: path.iter().map(|&x| NodeId(x as u32)).collect(),
                    });
                }
                found = true;
            } else if !blocked[w]
                && path.len() < limits.max_len
                && circuit(w, start, g, blocked, block_map, path, result, limits)
            {
                found = true;
            }
        }
        if found {
            unblock(v, blocked, block_map);
        } else {
            for w in g.successors(NodeId(v as u32)).map(|x| x.index()) {
                if w >= start && !block_map[w].contains(&v) {
                    block_map[w].push(v);
                }
            }
        }
        path.pop();
        found
    }

    for start in 0..n {
        if result.len() >= limits.max_cycles {
            break;
        }
        for b in blocked.iter_mut() {
            *b = false;
        }
        for m in block_map.iter_mut() {
            m.clear();
        }
        path.clear();
        circuit(
            start,
            start,
            g,
            &mut blocked,
            &mut block_map,
            &mut path,
            &mut result,
            limits,
        );
    }
    result
}

/// Length of the shortest cycle through each node, ignoring self-loops
/// (`None` when the node is on no such cycle). BFS from each node back to
/// itself — the "loop length" input to the ATPG complexity model.
pub fn shortest_cycle_lengths(g: &SGraph) -> Vec<Option<usize>> {
    let n = g.num_nodes();
    let mut out = vec![None; n];
    #[allow(clippy::needless_range_loop)] // `s` also seeds the BFS below
    for s in 0..n {
        // BFS from s; shortest path back to s of length >= 2, or 1 if
        // a self-loop exists — here self-loops are ignored by contract.
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for w in g.successors(NodeId(s as u32)) {
            if w.index() != s && dist[w.index()] == usize::MAX {
                dist[w.index()] = 1;
                queue.push_back(w.index());
            }
        }
        let mut best = None;
        while let Some(u) = queue.pop_front() {
            if u == s {
                continue;
            }
            for w in g.successors(NodeId(u as u32)) {
                if w.index() == s {
                    best = Some(best.map_or(dist[u] + 1, |b: usize| b.min(dist[u] + 1)));
                } else if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[u] + 1;
                    queue.push_back(w.index());
                }
            }
        }
        out[s] = best;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_has_one_cycle() {
        let g = SGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let cycles = enumerate_cycles(&g, CycleLimits::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 3);
    }

    #[test]
    fn self_loops_are_length_one_cycles() {
        let g = SGraph::from_edges(2, [(0, 0), (1, 1)]);
        let cycles = enumerate_cycles(&g, CycleLimits::default());
        assert_eq!(cycles.len(), 2);
        assert!(cycles.iter().all(Cycle::is_self_loop));
    }

    #[test]
    fn complete_digraph_cycle_count() {
        // K3 with all 6 arcs: 3 two-cycles + 2 three-cycles.
        let g = SGraph::from_edges(3, [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
        let cycles = enumerate_cycles(&g, CycleLimits::default());
        assert_eq!(cycles.len(), 5);
    }

    #[test]
    fn limits_are_respected() {
        let g = SGraph::from_edges(3, [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
        let cycles = enumerate_cycles(
            &g,
            CycleLimits {
                max_cycles: 2,
                max_len: 64,
            },
        );
        assert_eq!(cycles.len(), 2);
        let short = enumerate_cycles(
            &g,
            CycleLimits {
                max_cycles: 100,
                max_len: 2,
            },
        );
        assert!(short.iter().all(|c| c.len() <= 2));
        assert_eq!(short.len(), 3);
    }

    #[test]
    fn shortest_cycle_length_ignores_self_loops() {
        let g = SGraph::from_edges(3, [(0, 0), (0, 1), (1, 2), (2, 0)]);
        let lens = shortest_cycle_lengths(&g);
        assert_eq!(lens, vec![Some(3), Some(3), Some(3)]);
        let dag = SGraph::from_edges(2, [(0, 1)]);
        assert_eq!(shortest_cycle_lengths(&dag), vec![None, None]);
    }
}
