//! The empirical ATPG-complexity model of survey §3.1.
//!
//! "The complexity of generating sequential test patterns grows
//! exponentially with the length of cycles in the S-graph, and linearly
//! with the sequential depth of the FFs" [Cheng & Agrawal 1990;
//! Lee & Reddy 1990]. The simultaneous scheduling/assignment technique
//! of [33] minimizes exactly this cost while synthesizing; experiment E1
//! validates the model's shape against the in-tree sequential ATPG.

use crate::cycles::{enumerate_cycles, CycleLimits};
use crate::depth::sequential_depth;
use crate::graph::{NodeId, SGraph};

/// Weights of the complexity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Base of the exponential cycle term: a cycle of length `L`
    /// contributes `cycle_base^L`. Must be ≥ 1.
    pub cycle_base: f64,
    /// Weight of the linear sequential-depth term.
    pub depth_weight: f64,
    /// Cost charged per self-loop (0 when self-loops are tolerated, as
    /// in conventional partial scan).
    pub self_loop_cost: f64,
    /// Limits for cycle enumeration.
    pub limits: CycleLimits,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            cycle_base: 2.0,
            depth_weight: 1.0,
            self_loop_cost: 0.0,
            limits: CycleLimits {
                max_cycles: 2_000,
                max_len: 24,
            },
        }
    }
}

/// The decomposed complexity estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtpgComplexity {
    /// Σ over non-self-loop cycles of `cycle_base^len`.
    pub cycle_cost: f64,
    /// `depth_weight ×` Σ of combined control+observe depths.
    pub depth_cost: f64,
    /// `self_loop_cost ×` number of self-loops.
    pub self_loop_cost: f64,
    /// Number of cycles found (possibly truncated by the limits).
    pub cycles_found: usize,
    /// Whether cycle enumeration hit its cap (the estimate is then a
    /// lower bound).
    pub truncated: bool,
}

impl AtpgComplexity {
    /// The total estimated complexity.
    pub fn total(&self) -> f64 {
        self.cycle_cost + self.depth_cost + self.self_loop_cost
    }
}

/// Estimates sequential ATPG complexity for an S-graph with the given
/// input/output registers.
///
/// # Example
///
/// ```
/// use hlstb_sgraph::{SGraph, NodeId, cost::{estimate, CostWeights}};
///
/// let ring = SGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// let chain = SGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let w = CostWeights::default();
/// let io = [NodeId(0)];
/// let po = [NodeId(3)];
/// assert!(estimate(&ring, &io, &po, &w).total() > estimate(&chain, &io, &po, &w).total());
/// ```
pub fn estimate(
    g: &SGraph,
    inputs: &[NodeId],
    outputs: &[NodeId],
    weights: &CostWeights,
) -> AtpgComplexity {
    assert!(weights.cycle_base >= 1.0, "cycle_base must be >= 1");
    let cycles = enumerate_cycles(g, weights.limits);
    let truncated = cycles.len() >= weights.limits.max_cycles;
    let mut cycle_cost = 0.0;
    let mut self_loops = 0usize;
    for c in &cycles {
        if c.is_self_loop() {
            self_loops += 1;
        } else {
            cycle_cost += weights.cycle_base.powi(c.len() as i32);
        }
    }
    let depth = sequential_depth(g, inputs, outputs);
    // Uncontrollable/unobservable registers are charged the worst depth
    // plus one — they are harder than anything reachable.
    let worst = (depth.max_control() + depth.max_observe() + 1) as f64;
    let mut depth_cost = 0.0;
    for n in g.nodes() {
        match depth.combined(n) {
            Some(d) => depth_cost += d as f64,
            None => depth_cost += worst,
        }
    }
    AtpgComplexity {
        cycle_cost,
        depth_cost: depth_cost * weights.depth_weight,
        self_loop_cost: self_loops as f64 * weights.self_loop_cost,
        cycles_found: cycles.len(),
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> SGraph {
        SGraph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn longer_cycles_cost_exponentially_more() {
        let w = CostWeights::default();
        let c3 = estimate(&ring(3), &[NodeId(0)], &[NodeId(0)], &w);
        let c6 = estimate(&ring(6), &[NodeId(0)], &[NodeId(0)], &w);
        assert!(
            c6.cycle_cost >= c3.cycle_cost * 7.9,
            "{} vs {}",
            c6.cycle_cost,
            c3.cycle_cost
        );
    }

    #[test]
    fn deeper_chains_cost_linearly_more() {
        let chain = |n: u32| SGraph::from_edges(n as usize, (0..n - 1).map(|i| (i, i + 1)));
        let w = CostWeights::default();
        let d4 = estimate(&chain(4), &[NodeId(0)], &[NodeId(3)], &w);
        let d8 = estimate(&chain(8), &[NodeId(0)], &[NodeId(7)], &w);
        assert_eq!(d4.cycle_cost, 0.0);
        // Depth cost of a chain of n nodes in->out is n*(n-1): roughly
        // quadratic in n because every node pays its own depth; the
        // per-node growth is linear.
        assert!(d8.depth_cost > d4.depth_cost);
        assert!(d8.depth_cost / 8.0 > d4.depth_cost / 4.0);
    }

    #[test]
    fn self_loops_are_separated() {
        let g = SGraph::from_edges(2, [(0, 0), (0, 1)]);
        let mut w = CostWeights::default();
        let free = estimate(&g, &[NodeId(0)], &[NodeId(1)], &w);
        assert_eq!(free.self_loop_cost, 0.0);
        assert_eq!(free.cycle_cost, 0.0);
        w.self_loop_cost = 5.0;
        let charged = estimate(&g, &[NodeId(0)], &[NodeId(1)], &w);
        assert_eq!(charged.self_loop_cost, 5.0);
    }

    #[test]
    fn truncation_is_reported() {
        // K4 has many cycles; cap at 3.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = SGraph::from_edges(4, edges);
        let w = CostWeights {
            limits: CycleLimits {
                max_cycles: 3,
                max_len: 24,
            },
            ..Default::default()
        };
        let e = estimate(&g, &[NodeId(0)], &[NodeId(0)], &w);
        assert!(e.truncated);
        assert_eq!(e.cycles_found, 3);
    }

    #[test]
    fn acyclic_shallow_graph_is_cheap() {
        let g = SGraph::from_edges(2, [(0, 1)]);
        let e = estimate(&g, &[NodeId(0)], &[NodeId(1)], &CostWeights::default());
        assert_eq!(e.cycle_cost, 0.0);
        assert_eq!(e.total(), e.depth_cost);
    }
}
