//! Strongly connected components (iterative Tarjan).

use crate::graph::{NodeId, SGraph};

/// Computes the strongly connected components of the graph.
///
/// Components are returned in reverse topological order (Tarjan's
/// property: a component is emitted only after all components it can
/// reach). Every node appears in exactly one component; trivial
/// single-node components without self-loops are included.
pub fn strongly_connected_components(g: &SGraph) -> Vec<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps = Vec::new();

    // Iterative Tarjan with an explicit call stack of (node, succ cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let succs: Vec<usize> = g.successors(NodeId(v as u32)).map(|s| s.index()).collect();
            if *cursor < succs.len() {
                let w = succs[*cursor];
                *cursor += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(NodeId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    comps.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    comps
}

/// Components that actually contain a cycle: more than one node, or a
/// single node with a self-loop. These are the only parts of the S-graph
/// that feedback-vertex-set selection needs to look at.
pub fn cyclic_components(g: &SGraph) -> Vec<Vec<NodeId>> {
    strongly_connected_components(g)
        .into_iter()
        .filter(|c| c.len() > 1 || g.has_self_loop(c[0]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_rings_and_an_isolate() {
        let g = SGraph::from_edges(5, [(0, 1), (1, 0), (2, 3), (3, 2), (2, 4)]);
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 3);
        let cyc = cyclic_components(&g);
        assert_eq!(cyc.len(), 2);
        assert!(cyc.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn self_loop_is_cyclic_component() {
        let g = SGraph::from_edges(2, [(0, 0), (0, 1)]);
        let cyc = cyclic_components(&g);
        assert_eq!(cyc, vec![vec![NodeId(0)]]);
    }

    #[test]
    fn dag_has_no_cyclic_components() {
        let g = SGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert!(cyclic_components(&g).is_empty());
        assert_eq!(strongly_connected_components(&g).len(), 4);
    }

    #[test]
    fn reverse_topological_emission() {
        // 0 -> 1 (two trivial comps): component of 1 emitted first.
        let g = SGraph::from_edges(2, [(0, 1)]);
        let comps = strongly_connected_components(&g);
        assert_eq!(comps, vec![vec![NodeId(1)], vec![NodeId(0)]]);
    }

    #[test]
    fn big_ring_is_one_component() {
        let n = 50u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = SGraph::from_edges(n as usize, edges);
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n as usize);
    }
}
