//! Sequential depth: how many clock cycles it takes to control a
//! register from the primary inputs and to observe it at the primary
//! outputs.
//!
//! Survey §3.1–3.2: sequential ATPG effort grows linearly with the
//! sequential depth of the flip-flops, so register assignment that
//! minimizes the input-register → output-register depth improves the
//! controllability/observability of the whole data path [25,26].

use std::collections::VecDeque;

use crate::graph::{NodeId, SGraph};

/// Controllability/observability depths of every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepthReport {
    /// Shortest distance (in registers crossed) from an input register;
    /// 0 for input registers themselves, `None` if uncontrollable
    /// through the data path.
    pub control: Vec<Option<u32>>,
    /// Shortest distance to an output register; 0 for output registers,
    /// `None` if unobservable.
    pub observe: Vec<Option<u32>>,
}

impl DepthReport {
    /// The maximum control depth over controllable nodes (0 when empty).
    pub fn max_control(&self) -> u32 {
        self.control.iter().flatten().copied().max().unwrap_or(0)
    }

    /// The maximum observe depth over observable nodes (0 when empty).
    pub fn max_observe(&self) -> u32 {
        self.observe.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Combined sequential depth of a node: control + observe, when both
    /// are defined.
    pub fn combined(&self, n: NodeId) -> Option<u32> {
        Some(self.control[n.index()]? + self.observe[n.index()]?)
    }

    /// The number of nodes that are both controllable and observable.
    pub fn testable_nodes(&self) -> usize {
        (0..self.control.len())
            .filter(|&i| self.control[i].is_some() && self.observe[i].is_some())
            .count()
    }

    /// Sum of combined depths over testable nodes — the linear term of
    /// the ATPG complexity model.
    pub fn total_combined(&self) -> u64 {
        (0..self.control.len())
            .filter_map(|i| self.combined(NodeId(i as u32)))
            .map(u64::from)
            .sum()
    }
}

/// Computes sequential depths by BFS from the input registers (forward)
/// and from the output registers (backward).
pub fn sequential_depth(g: &SGraph, inputs: &[NodeId], outputs: &[NodeId]) -> DepthReport {
    let _span = hlstb_trace::span("sgraph.depth");
    DepthReport {
        control: bfs(g, inputs, false),
        observe: bfs(g, outputs, true),
    }
}

fn bfs(g: &SGraph, sources: &[NodeId], backward: bool) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.num_nodes()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()].expect("queued nodes have distances");
        let next: Vec<NodeId> = if backward {
            g.predecessors(u).collect()
        } else {
            g.successors(u).collect()
        };
        for v in next {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_depths() {
        // in(0) -> 1 -> 2 -> out(3)
        let g = SGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let r = sequential_depth(&g, &[NodeId(0)], &[NodeId(3)]);
        assert_eq!(r.control, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(r.observe, vec![Some(3), Some(2), Some(1), Some(0)]);
        assert_eq!(r.combined(NodeId(1)), Some(3));
        assert_eq!(r.max_control(), 3);
        assert_eq!(r.testable_nodes(), 4);
    }

    #[test]
    fn unreachable_nodes_are_none() {
        let g = SGraph::from_edges(3, [(0, 1)]);
        let r = sequential_depth(&g, &[NodeId(0)], &[NodeId(1)]);
        assert_eq!(r.control[2], None);
        assert_eq!(r.observe[2], None);
        assert_eq!(r.combined(NodeId(2)), None);
        assert_eq!(r.testable_nodes(), 2);
    }

    #[test]
    fn cycles_do_not_trap_bfs() {
        let g = SGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        let r = sequential_depth(&g, &[NodeId(0)], &[NodeId(2)]);
        assert_eq!(r.control, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn multiple_sources_take_minimum() {
        let g = SGraph::from_edges(3, [(0, 2), (1, 2)]);
        let r = sequential_depth(&g, &[NodeId(0), NodeId(1)], &[NodeId(2)]);
        assert_eq!(r.control[2], Some(1));
        assert_eq!(r.total_combined(), 1 + 1 + 1);
    }
}
