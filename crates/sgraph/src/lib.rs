//! S-graph analysis: the topological testability substrate of the
//! `hlstb` workbench.
//!
//! Survey §3.1: sequential ATPG complexity grows *exponentially* with
//! the length of cycles in the S-graph and *linearly* with sequential
//! depth [Cheng & Agrawal 1990; Lee & Reddy 1990]. Each S-graph node is
//! a flip-flop or register; a directed edge `u → v` means a purely
//! combinational path leads from `u` to `v`. Gate-level partial scan
//! breaks all loops except self-loops by scanning a (near-)minimum
//! feedback vertex set; the behavioral techniques this workbench
//! reproduces use the same measures one level up.
//!
//! This crate is deliberately free of HLS types: nodes are dense
//! [`NodeId`]s, and `hlstb-hls` / `hlstb-netlist` build [`SGraph`]s from
//! their own structures.
//!
//! # Example
//!
//! ```
//! use hlstb_sgraph::{SGraph, mfvs};
//!
//! // A 3-register ring plus a self-loop on node 0.
//! let g = SGraph::from_edges(3, [(0, 1), (1, 2), (2, 0), (0, 0)]);
//! let fvs = mfvs::minimum_feedback_vertex_set(&g, mfvs::MfvsOptions::default());
//! // One scanned register breaks the ring; the self-loop is tolerated.
//! assert_eq!(fvs.nodes.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cycles;
pub mod depth;
pub mod graph;
pub mod mfvs;
pub mod scc;

pub use cost::{AtpgComplexity, CostWeights};
pub use cycles::Cycle;
pub use graph::{NodeId, SGraph};
pub use mfvs::{FeedbackVertexSet, MfvsOptions};
