//! The S-graph data structure.

use std::collections::BTreeSet;
use std::fmt;

/// A node of an [`SGraph`] — one flip-flop or register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed graph over registers: edge `u → v` iff a purely
/// combinational path leads from register `u` to register `v`.
///
/// Parallel edges are collapsed; self-loops are kept (they matter:
/// partial scan tolerates them, BILBO self-adjacency does not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SGraph {
    /// Sorted successor sets, indexed by node.
    succs: Vec<BTreeSet<u32>>,
    /// Sorted predecessor sets, indexed by node.
    preds: Vec<BTreeSet<u32>>,
    /// Optional human-readable node labels (register names).
    labels: Vec<String>,
}

impl SGraph {
    /// Creates an edgeless graph with `n` nodes labelled `n0..`.
    pub fn new(n: usize) -> Self {
        SGraph {
            succs: vec![BTreeSet::new(); n],
            preds: vec![BTreeSet::new(); n],
            labels: (0..n).map(|i| format!("n{i}")).collect(),
        }
    }

    /// Creates a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = SGraph::new(n);
        for (u, v) in edges {
            g.add_edge(NodeId(u), NodeId(v));
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.succs.len()
    }

    /// Number of distinct edges (self-loops count once).
    pub fn num_edges(&self) -> usize {
        self.succs.iter().map(BTreeSet::len).sum()
    }

    /// Adds an edge, collapsing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u.index() < self.succs.len() && v.index() < self.succs.len());
        self.succs[u.index()].insert(v.0);
        self.preds[v.index()].insert(u.0);
    }

    /// Whether the edge `u → v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.succs.get(u.index()).is_some_and(|s| s.contains(&v.0))
    }

    /// Whether node `u` has a self-loop.
    pub fn has_self_loop(&self, u: NodeId) -> bool {
        self.has_edge(u, u)
    }

    /// Successors of `u` in ascending order.
    pub fn successors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.succs[u.index()].iter().map(|&v| NodeId(v))
    }

    /// Predecessors of `u` in ascending order.
    pub fn predecessors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.preds[u.index()].iter().map(|&v| NodeId(v))
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.succs[u.index()].len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.preds[u.index()].len()
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.succs.len() as u32).map(NodeId)
    }

    /// All edges in `(u, v)` lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.successors(u).map(move |v| (u, v)))
    }

    /// Sets a node's label.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_label(&mut self, u: NodeId, label: impl Into<String>) {
        self.labels[u.index()] = label.into();
    }

    /// A node's label.
    pub fn label(&self, u: NodeId) -> &str {
        &self.labels[u.index()]
    }

    /// The subgraph induced by `keep`, with nodes renumbered densely in
    /// ascending original order. Returns the subgraph and the mapping
    /// from new ids to original ids.
    pub fn induced_subgraph(&self, keep: &BTreeSet<NodeId>) -> (SGraph, Vec<NodeId>) {
        let order: Vec<NodeId> = keep.iter().copied().collect();
        let mut back = vec![u32::MAX; self.num_nodes()];
        for (new, &old) in order.iter().enumerate() {
            back[old.index()] = new as u32;
        }
        let mut g = SGraph::new(order.len());
        for (new, &old) in order.iter().enumerate() {
            g.labels[new] = self.labels[old.index()].clone();
            for v in self.successors(old) {
                if keep.contains(&v) {
                    g.add_edge(NodeId(new as u32), NodeId(back[v.index()]));
                }
            }
        }
        (g, order)
    }

    /// The graph with the given nodes deleted (the standard "scan these
    /// registers" operation: a scanned register's node is removed from
    /// the S-graph along with all incident edges).
    pub fn without_nodes(&self, removed: &BTreeSet<NodeId>) -> (SGraph, Vec<NodeId>) {
        let keep: BTreeSet<NodeId> = self.nodes().filter(|n| !removed.contains(n)).collect();
        self.induced_subgraph(&keep)
    }

    /// Whether the graph is acyclic when self-loops are ignored
    /// (`tolerate_self_loops`) or considered (`!tolerate_self_loops`).
    pub fn is_acyclic(&self, tolerate_self_loops: bool) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum C {
            W,
            G,
            B,
        }
        if !tolerate_self_loops && self.nodes().any(|n| self.has_self_loop(n)) {
            return false;
        }
        let n = self.num_nodes();
        let mut color = vec![C::W; n];
        for s in 0..n {
            if color[s] != C::W {
                continue;
            }
            let mut stack = vec![(s, self.succs[s].iter().copied().collect::<Vec<_>>(), 0usize)];
            color[s] = C::G;
            while let Some((node, succs, idx)) = stack.last_mut() {
                if *idx < succs.len() {
                    let next = succs[*idx] as usize;
                    *idx += 1;
                    if next == *node {
                        continue; // self-loop, tolerated (checked above otherwise)
                    }
                    match color[next] {
                        C::W => {
                            color[next] = C::G;
                            let sl = self.succs[next].iter().copied().collect();
                            stack.push((next, sl, 0));
                        }
                        C::G => return false,
                        C::B => {}
                    }
                } else {
                    color[*node] = C::B;
                    stack.pop();
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_deduplicated() {
        let g = SGraph::from_edges(2, [(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn degrees_and_iteration() {
        let g = SGraph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(2)), 2);
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn acyclicity_with_and_without_self_loops() {
        let g = SGraph::from_edges(2, [(0, 1), (1, 1)]);
        assert!(g.is_acyclic(true));
        assert!(!g.is_acyclic(false));
        let ring = SGraph::from_edges(2, [(0, 1), (1, 0)]);
        assert!(!ring.is_acyclic(true));
    }

    #[test]
    fn node_removal_breaks_ring() {
        let ring = SGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let removed: BTreeSet<NodeId> = [NodeId(1)].into_iter().collect();
        let (g, map) = ring.without_nodes(&removed);
        assert_eq!(g.num_nodes(), 2);
        assert!(g.is_acyclic(true));
        assert_eq!(map, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn induced_subgraph_preserves_labels() {
        let mut g = SGraph::new(3);
        g.set_label(NodeId(2), "RA1");
        g.add_edge(NodeId(0), NodeId(2));
        let keep: BTreeSet<NodeId> = [NodeId(0), NodeId(2)].into_iter().collect();
        let (sub, _) = g.induced_subgraph(&keep);
        assert_eq!(sub.label(NodeId(1)), "RA1");
        assert!(sub.has_edge(NodeId(0), NodeId(1)));
    }
}
