//! Minimum feedback vertex set selection — the gate-level partial-scan
//! baseline (Cheng & Agrawal; Lee & Reddy) the behavioral techniques are
//! compared against.
//!
//! Scanning the registers of a feedback vertex set (FVS) makes the
//! remaining S-graph acyclic (self-loops optionally tolerated), which is
//! what makes sequential ATPG tractable. Exact minimization is NP-hard;
//! this module combines Levy–Low-style reductions, an exact
//! branch-and-bound for small strongly connected components, and a
//! degree-product greedy fallback.

use std::collections::BTreeSet;

use crate::graph::{NodeId, SGraph};
use crate::scc::cyclic_components;

/// Options for FVS selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MfvsOptions {
    /// Tolerate self-loops (the partial-scan convention: a single
    /// register looping through an ALU back to itself is sequentially
    /// testable and need not be scanned). When `false`, every node with a
    /// self-loop is forced into the set.
    pub tolerate_self_loops: bool,
    /// Components with at most this many nodes are solved exactly by
    /// branch and bound; larger ones fall back to the greedy heuristic.
    pub exact_threshold: usize,
}

impl Default for MfvsOptions {
    fn default() -> Self {
        MfvsOptions {
            tolerate_self_loops: true,
            exact_threshold: 16,
        }
    }
}

/// A feedback vertex set and whether it is provably minimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedbackVertexSet {
    /// The selected nodes.
    pub nodes: BTreeSet<NodeId>,
    /// `true` when every component was solved by exact branch and bound.
    pub optimal: bool,
}

/// Checks that removing `set` leaves the graph acyclic (under the given
/// self-loop tolerance).
pub fn is_feedback_vertex_set(
    g: &SGraph,
    set: &BTreeSet<NodeId>,
    tolerate_self_loops: bool,
) -> bool {
    let (rest, _) = g.without_nodes(set);
    rest.is_acyclic(tolerate_self_loops)
}

/// Selects a (near-)minimum feedback vertex set.
///
/// Deterministic: ties in the greedy heuristic break toward smaller node
/// ids, and branch-and-bound explores nodes in ascending order.
///
/// # Example
///
/// ```
/// use hlstb_sgraph::{SGraph, mfvs::{minimum_feedback_vertex_set, MfvsOptions}};
///
/// // Two rings sharing node 0: scanning it breaks both.
/// let g = SGraph::from_edges(3, [(0, 1), (1, 0), (0, 2), (2, 0)]);
/// let fvs = minimum_feedback_vertex_set(&g, MfvsOptions::default());
/// assert_eq!(fvs.nodes.len(), 1);
/// ```
pub fn minimum_feedback_vertex_set(g: &SGraph, options: MfvsOptions) -> FeedbackVertexSet {
    let _span = hlstb_trace::span("sgraph.mfvs");
    let mut selected: BTreeSet<NodeId> = BTreeSet::new();
    let mut optimal = true;

    let mut work = g.clone();
    let mut names: Vec<NodeId> = g.nodes().collect(); // work id -> original id

    if !options.tolerate_self_loops {
        // Self-loop nodes are unavoidable members.
        let forced: BTreeSet<NodeId> = work.nodes().filter(|&n| work.has_self_loop(n)).collect();
        for n in &forced {
            selected.insert(names[n.index()]);
        }
        let (ng, map) = work.without_nodes(&forced);
        names = map.iter().map(|m| names[m.index()]).collect();
        work = ng;
    }

    // Decompose into cyclic SCCs and solve each independently (an FVS of
    // the whole graph is the union of FVSs of its SCCs).
    for comp in cyclic_components(&work) {
        let keep: BTreeSet<NodeId> = comp.iter().copied().collect();
        let (sub, map) = work.induced_subgraph(&keep);
        let local = if sub.num_nodes() <= options.exact_threshold {
            exact_fvs(&sub)
        } else {
            optimal = false;
            greedy_fvs(&sub)
        };
        for n in local {
            selected.insert(names[map[n.index()].index()]);
        }
    }
    debug_assert!(is_feedback_vertex_set(
        g,
        &selected,
        options.tolerate_self_loops || selected_covers_self_loops(g, &selected)
    ));
    FeedbackVertexSet {
        nodes: selected,
        optimal,
    }
}

fn selected_covers_self_loops(g: &SGraph, set: &BTreeSet<NodeId>) -> bool {
    g.nodes()
        .filter(|&n| g.has_self_loop(n))
        .all(|n| set.contains(&n))
}

/// Exact minimum FVS (self-loops already handled by the caller; they are
/// ignored here) by iterative deepening over set size, branching on the
/// nodes of a shortest cycle.
fn exact_fvs(g: &SGraph) -> Vec<NodeId> {
    if g.is_acyclic(true) {
        return Vec::new();
    }
    for k in 1..=g.num_nodes() {
        if let Some(sol) = search(g, k, &mut BTreeSet::new()) {
            return sol;
        }
    }
    unreachable!("removing all nodes always breaks all cycles");
}

fn search(g: &SGraph, budget: usize, removed: &mut BTreeSet<NodeId>) -> Option<Vec<NodeId>> {
    let (rest, map) = g.without_nodes(removed);
    let cycle = match find_short_cycle(&rest) {
        None => return Some(removed.iter().copied().collect()),
        Some(c) => c,
    };
    if budget == 0 {
        return None;
    }
    for n in cycle {
        let orig = map[n.index()];
        removed.insert(orig);
        if let Some(sol) = search(g, budget - 1, removed) {
            return Some(sol);
        }
        removed.remove(&orig);
    }
    None
}

/// A shortest non-self-loop cycle, by BFS from every node.
fn find_short_cycle(g: &SGraph) -> Option<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut best: Option<Vec<NodeId>> = None;
    for s in 0..n {
        // BFS tracking parents; find shortest path s -> ... -> s.
        let mut parent = vec![usize::MAX; n];
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for w in g.successors(NodeId(s as u32)).map(|x| x.index()) {
            if w == s {
                continue;
            }
            if dist[w] == usize::MAX {
                dist[w] = 1;
                parent[w] = s;
                queue.push_back(w);
            }
        }
        'bfs: while let Some(u) = queue.pop_front() {
            for w in g.successors(NodeId(u as u32)).map(|x| x.index()) {
                if w == s {
                    // reconstruct
                    let mut path = vec![NodeId(u as u32)];
                    let mut cur = u;
                    while parent[cur] != s {
                        cur = parent[cur];
                        path.push(NodeId(cur as u32));
                    }
                    path.push(NodeId(s as u32));
                    path.reverse();
                    if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                        best = Some(path);
                    }
                    break 'bfs;
                }
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    parent[w] = u;
                    queue.push_back(w);
                }
            }
        }
        if best.as_ref().is_some_and(|b| b.len() == 2) {
            break; // cannot do better than a 2-cycle
        }
    }
    best
}

/// Greedy FVS: repeatedly remove the node with the largest
/// in-degree × out-degree product (ignoring self-loops) until acyclic.
fn greedy_fvs(g: &SGraph) -> Vec<NodeId> {
    let mut removed: BTreeSet<NodeId> = BTreeSet::new();
    loop {
        let (rest, map) = g.without_nodes(&removed);
        if rest.is_acyclic(true) {
            return removed.into_iter().collect();
        }
        // Only nodes inside cyclic SCCs are candidates.
        let mut best: Option<(usize, NodeId)> = None;
        for comp in cyclic_components(&rest) {
            for &n in &comp {
                let ind = rest.predecessors(n).filter(|&p| p != n).count();
                let outd = rest.successors(n).filter(|&s| s != n).count();
                let score = ind * outd;
                let orig = map[n.index()];
                if best.is_none_or(|(bs, bn)| score > bs || (score == bs && orig < bn)) {
                    best = Some((score, orig));
                }
            }
        }
        removed.insert(best.expect("cyclic graph has candidates").1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_needs_one() {
        let g = SGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let fvs = minimum_feedback_vertex_set(&g, MfvsOptions::default());
        assert_eq!(fvs.nodes.len(), 1);
        assert!(fvs.optimal);
        assert!(is_feedback_vertex_set(&g, &fvs.nodes, true));
    }

    #[test]
    fn self_loops_tolerated_by_default() {
        let g = SGraph::from_edges(3, [(0, 0), (1, 1), (2, 2)]);
        let fvs = minimum_feedback_vertex_set(&g, MfvsOptions::default());
        assert!(fvs.nodes.is_empty());
    }

    #[test]
    fn self_loops_forced_when_not_tolerated() {
        let g = SGraph::from_edges(2, [(0, 0), (0, 1)]);
        let opts = MfvsOptions {
            tolerate_self_loops: false,
            ..Default::default()
        };
        let fvs = minimum_feedback_vertex_set(&g, opts);
        assert_eq!(
            fvs.nodes.iter().copied().collect::<Vec<_>>(),
            vec![NodeId(0)]
        );
        assert!(is_feedback_vertex_set(&g, &fvs.nodes, false));
    }

    #[test]
    fn two_disjoint_rings_need_two() {
        let g = SGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let fvs = minimum_feedback_vertex_set(&g, MfvsOptions::default());
        assert_eq!(fvs.nodes.len(), 2);
        assert!(fvs.optimal);
    }

    #[test]
    fn shared_hub_is_exploited() {
        // Two rings sharing node 0: one removal suffices, and exact B&B
        // must find it.
        let g = SGraph::from_edges(5, [(0, 1), (1, 0), (0, 2), (2, 0), (3, 4), (4, 3)]);
        let fvs = minimum_feedback_vertex_set(&g, MfvsOptions::default());
        assert_eq!(fvs.nodes.len(), 2); // node 0 plus one in the 3-4 ring
        assert!(fvs.nodes.contains(&NodeId(0)));
    }

    #[test]
    fn greedy_matches_exact_on_small_graphs() {
        let edges = [(0u32, 1u32), (1, 2), (2, 0), (2, 3), (3, 1)];
        let g = SGraph::from_edges(4, edges);
        let exact = minimum_feedback_vertex_set(
            &g,
            MfvsOptions {
                exact_threshold: 16,
                ..Default::default()
            },
        );
        let greedy = minimum_feedback_vertex_set(
            &g,
            MfvsOptions {
                exact_threshold: 0,
                ..Default::default()
            },
        );
        assert!(is_feedback_vertex_set(&g, &greedy.nodes, true));
        // Node 1 or 2 alone breaks both cycles.
        assert_eq!(exact.nodes.len(), 1);
        assert!(greedy.nodes.len() >= exact.nodes.len());
    }

    #[test]
    fn dag_needs_nothing() {
        let g = SGraph::from_edges(4, [(0, 1), (1, 2), (0, 3)]);
        let fvs = minimum_feedback_vertex_set(&g, MfvsOptions::default());
        assert!(fvs.nodes.is_empty());
        assert!(fvs.optimal);
    }
}
