//! Property tests for the S-graph algorithms on random digraphs.

use hlstb_sgraph::cycles::{enumerate_cycles, CycleLimits};
use hlstb_sgraph::depth::sequential_depth;
use hlstb_sgraph::mfvs::{is_feedback_vertex_set, minimum_feedback_vertex_set, MfvsOptions};
use hlstb_sgraph::scc::{cyclic_components, strongly_connected_components};
use hlstb_sgraph::{NodeId, SGraph};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = SGraph> {
    (
        2usize..14,
        proptest::collection::vec((0u32..14, 0u32..14), 0..50),
    )
        .prop_map(|(n, edges)| {
            SGraph::from_edges(
                n,
                edges.into_iter().map(|(a, b)| (a % n as u32, b % n as u32)),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// SCCs partition the node set.
    #[test]
    fn sccs_partition_nodes(g in graph_strategy()) {
        let comps = strongly_connected_components(&g);
        let mut seen = vec![false; g.num_nodes()];
        for c in &comps {
            for n in c {
                prop_assert!(!seen[n.index()], "node in two components");
                seen[n.index()] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// Every enumerated cycle lies inside one cyclic SCC and is a real
    /// cycle.
    #[test]
    fn cycles_live_in_cyclic_components(g in graph_strategy()) {
        let comps = cyclic_components(&g);
        let in_comp = |n: NodeId| comps.iter().position(|c| c.contains(&n));
        for cy in enumerate_cycles(&g, CycleLimits { max_cycles: 256, max_len: 14 }) {
            // Edges exist.
            for (i, &u) in cy.nodes.iter().enumerate() {
                let v = cy.nodes[(i + 1) % cy.nodes.len()];
                prop_assert!(g.has_edge(u, v), "missing edge {u} -> {v}");
            }
            // All nodes share a component.
            let c0 = in_comp(cy.nodes[0]);
            prop_assert!(c0.is_some());
            for &n in &cy.nodes {
                prop_assert_eq!(in_comp(n), c0);
            }
        }
    }

    /// An FVS found by the solver is an FVS; removing it kills all
    /// enumerated non-self cycles.
    #[test]
    fn fvs_kills_every_cycle(g in graph_strategy()) {
        let fvs = minimum_feedback_vertex_set(&g, MfvsOptions::default());
        prop_assert!(is_feedback_vertex_set(&g, &fvs.nodes, true));
        for cy in enumerate_cycles(&g, CycleLimits { max_cycles: 256, max_len: 14 }) {
            if cy.is_self_loop() {
                continue;
            }
            prop_assert!(
                cy.nodes.iter().any(|n| fvs.nodes.contains(n)),
                "cycle untouched by FVS"
            );
        }
    }

    /// Exact solutions are never larger than greedy ones.
    #[test]
    fn exact_is_never_worse_than_greedy(g in graph_strategy()) {
        let exact = minimum_feedback_vertex_set(
            &g,
            MfvsOptions { exact_threshold: 14, ..Default::default() },
        );
        let greedy = minimum_feedback_vertex_set(
            &g,
            MfvsOptions { exact_threshold: 0, ..Default::default() },
        );
        prop_assert!(exact.nodes.len() <= greedy.nodes.len());
    }

    /// Depth is monotone under edge addition (more paths can only help).
    #[test]
    fn depth_improves_with_more_edges(g in graph_strategy()) {
        if g.num_nodes() < 2 {
            return Ok(());
        }
        let inputs = [NodeId(0)];
        let outputs = [NodeId(g.num_nodes() as u32 - 1)];
        let before = sequential_depth(&g, &inputs, &outputs);
        let mut g2 = g.clone();
        g2.add_edge(NodeId(0), NodeId(g.num_nodes() as u32 - 1));
        let after = sequential_depth(&g2, &inputs, &outputs);
        for n in g.nodes() {
            if let (Some(b), Some(a)) = (before.control[n.index()], after.control[n.index()]) {
                prop_assert!(a <= b, "control depth worsened at {n}");
            }
            if let Some(b) = before.control[n.index()] {
                // Reachability can only grow.
                prop_assert!(after.control[n.index()].is_some_and(|a| a <= b));
            }
        }
    }
}
