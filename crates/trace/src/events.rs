//! The structured event journal: a durable, thread-safe record of
//! *what happened* during a run, as opposed to the aggregate view the
//! collector in the crate root keeps.
//!
//! # Model
//!
//! A journal is an append-only sequence of [`Record`]s. Each record
//! carries:
//!
//! * a **per-thread monotonic sequence number** (`seq`) — gap-free per
//!   recording thread, which is what lets a reader reconstruct each
//!   thread's own event order without trusting wall clocks;
//! * the recording thread's dense id (`tid`, shared with the span
//!   collector) and a microsecond timestamp since the trace epoch;
//! * a static `kind` (e.g. `point.completed`, `span.open`), an
//!   optional **point index** attributing the record to one unit of
//!   work (a sweep point), and a list of typed [`Field`]s.
//!
//! Records and fields are classified **stable** or **volatile**:
//! stable content is a pure function of the run's inputs (point
//! coordinates, coverage, error kinds), while volatile content varies
//! run to run (timestamps, durations, cache hit/miss outcomes under
//! racing workers, thread ids). The canonical exporter
//! ([`Journal::to_canonical_jsonl`]) keeps only stable records and
//! fields and re-sorts them by `(point, seq)` — every record of one
//! point is emitted by the one worker thread that evaluated it, so the
//! per-thread sequence gives a total order within each point and the
//! projection is **byte-identical across thread counts and cache
//! settings**. That extends the workbench's byte-compare CI style from
//! reports to telemetry.
//!
//! # Buffering and overhead
//!
//! Each recording thread appends to its **own** buffer — an
//! `Arc<Mutex<Vec<Record>>>` registered in a global registry on the
//! thread's first emission — so concurrent emitters never contend
//! with each other, only (briefly) with a drain. The registry, not
//! thread-local storage, owns the buffers: [`drain`] sweeps every
//! registered buffer under its lock, which makes it safe to drain
//! right after a `thread::scope` join (TLS destructors of exited
//! workers may still be pending at that point — a registry sweep does
//! not care). When the journal is disabled (the default) every entry
//! point is a single relaxed atomic load and an immediate return —
//! the field-builder closure is never called, so the disabled path
//! allocates nothing (enforced alongside the span primitives by
//! `tests/zero_alloc.rs`).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{number_f64, Obj};

/// Hard cap on retained journal records across all threads; past it
/// new records are counted as dropped instead of stored.
pub const MAX_RECORDS: usize = 1 << 20;

static JOURNAL_ON: AtomicBool = AtomicBool::new(false);
/// All per-thread buffers ever registered (buffers of exited threads
/// are pruned once drained empty).
static REGISTRY: Mutex<Vec<Arc<Mutex<Vec<Record>>>>> = Mutex::new(Vec::new());
/// Total records currently held across buffers, for cap enforcement.
static TOTAL: AtomicUsize = AtomicUsize::new(0);
/// Records discarded past [`MAX_RECORDS`].
static DROPPED: AtomicU64 = AtomicU64::new(0);

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static LOCAL: RefCell<Local> = const {
        RefCell::new(Local {
            next_seq: 0,
            open_spans: Vec::new(),
            buf: None,
            worker: None,
        })
    };
}

/// Per-thread journal state. The record buffer itself is shared with
/// the global registry so a drain never depends on this thread still
/// being alive (or on its TLS destructors having run).
struct Local {
    next_seq: u64,
    /// Seqs of this thread's currently open journaled spans, for
    /// parent attribution.
    open_spans: Vec<u64>,
    /// This thread's registered buffer, created on first emission.
    buf: Option<Arc<Mutex<Vec<Record>>>>,
    /// The executor lane this thread serves (see [`set_worker`]).
    worker: Option<u32>,
}

impl Local {
    fn buffer(&mut self) -> Arc<Mutex<Vec<Record>>> {
        if let Some(b) = &self.buf {
            return Arc::clone(b);
        }
        let b = Arc::new(Mutex::new(Vec::new()));
        lock(&REGISTRY).push(Arc::clone(&b));
        self.buf = Some(Arc::clone(&b));
        b
    }
}

/// One typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A float (rendered via [`crate::json::number_f64`]).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on export).
    Str(String),
}

/// One named field of a record, tagged stable or volatile.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (static, like counter names).
    pub name: &'static str,
    /// The value.
    pub value: FieldValue,
    /// Whether the field survives the canonical projection.
    pub stable: bool,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Per-thread monotonic sequence number (gap-free per `tid`).
    pub seq: u64,
    /// Dense id of the recording thread (shared with span events).
    pub tid: u32,
    /// Microseconds since the trace epoch.
    pub t_us: u64,
    /// Event kind, e.g. `point.completed`.
    pub kind: &'static str,
    /// The work unit (sweep point index) this record belongs to.
    pub point: Option<u64>,
    /// The executor lane (pool thread or sweep worker process) that
    /// recorded this — volatile identity like `tid`, kept only by the
    /// full export (which lane evaluates which point races run to run).
    pub worker: Option<u32>,
    /// Whether the record survives the canonical projection.
    pub stable: bool,
    /// Typed payload fields, in emission order.
    pub fields: Vec<Field>,
}

impl Record {
    /// Renders the record as one JSON object. `canonical` drops the
    /// run-varying identity (`seq`/`tid`/`t_us`) and volatile fields.
    fn to_json(&self, canonical: bool) -> String {
        let mut o = Obj::new();
        if !canonical {
            o.number_u64("seq", self.seq)
                .number_u64("tid", u64::from(self.tid))
                .number_u64("t_us", self.t_us);
            if let Some(w) = self.worker {
                o.number_u64("worker", u64::from(w));
            }
        }
        o.string("kind", self.kind);
        if let Some(p) = self.point {
            o.number_u64("point", p);
        }
        for f in &self.fields {
            if canonical && !f.stable {
                continue;
            }
            match &f.value {
                FieldValue::U64(v) => o.number_u64(f.name, *v),
                FieldValue::F64(v) => o.raw(f.name, &number_f64(*v)),
                FieldValue::Bool(v) => o.boolean(f.name, *v),
                FieldValue::Str(v) => o.string(f.name, v),
            };
        }
        o.finish()
    }
}

/// Collects the fields of one record; handed to the closure passed to
/// [`emit`] so field construction is skipped entirely when the journal
/// is disabled.
#[derive(Debug, Default)]
pub struct EventBuilder {
    fields: Vec<Field>,
}

impl EventBuilder {
    fn push(&mut self, name: &'static str, value: FieldValue, stable: bool) -> &mut Self {
        self.fields.push(Field {
            name,
            value,
            stable,
        });
        self
    }

    /// Adds a stable unsigned-integer field.
    pub fn u64(&mut self, name: &'static str, v: u64) -> &mut Self {
        self.push(name, FieldValue::U64(v), true)
    }

    /// Adds a stable float field.
    pub fn f64(&mut self, name: &'static str, v: f64) -> &mut Self {
        self.push(name, FieldValue::F64(v), true)
    }

    /// Adds a stable boolean field.
    pub fn bool(&mut self, name: &'static str, v: bool) -> &mut Self {
        self.push(name, FieldValue::Bool(v), true)
    }

    /// Adds a stable string field.
    pub fn str(&mut self, name: &'static str, v: &str) -> &mut Self {
        self.push(name, FieldValue::Str(v.to_string()), true)
    }

    /// Adds a volatile (run-varying) unsigned-integer field.
    pub fn volatile_u64(&mut self, name: &'static str, v: u64) -> &mut Self {
        self.push(name, FieldValue::U64(v), false)
    }

    /// Adds a volatile (run-varying) boolean field.
    pub fn volatile_bool(&mut self, name: &'static str, v: bool) -> &mut Self {
        self.push(name, FieldValue::Bool(v), false)
    }

    /// Adds a volatile (run-varying) string field.
    pub fn volatile_str(&mut self, name: &'static str, v: &str) -> &mut Self {
        self.push(name, FieldValue::Str(v.to_string()), false)
    }
}

/// Turns the journal on or off. Enabling pins the trace epoch so
/// timestamps share the span collector's zero.
pub fn set_enabled(on: bool) {
    if on {
        crate::pin_epoch();
    }
    JOURNAL_ON.store(on, Ordering::Relaxed);
}

/// Whether the journal is recording — one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    JOURNAL_ON.load(Ordering::Relaxed)
}

/// Tags the calling thread with an executor lane id (a sweep pool
/// thread or worker process). Every record the thread emits from here
/// on carries the id in the full export — `trace-view` rolls these up
/// into per-worker lanes. Like `tid`, the tag is volatile identity and
/// never appears in the canonical projection.
pub fn set_worker(id: u32) {
    LOCAL.with(|l| l.borrow_mut().worker = Some(id));
}

/// Discards every record in every registered buffer and zeroes the
/// dropped count. Call between runs (concurrent emitters racing a
/// reset keep whatever they emit after it, as expected).
pub fn reset() {
    LOCAL.with(|l| l.borrow_mut().open_spans.clear());
    let mut reg = lock(&REGISTRY);
    for buf in reg.iter() {
        lock(buf).clear();
    }
    // Prune buffers whose thread has exited (registry holds the only
    // other reference).
    reg.retain(|b| Arc::strong_count(b) > 1);
    TOTAL.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
}

fn record(kind: &'static str, point: Option<u64>, stable: bool, fields: Vec<Field>) -> u64 {
    let tid = crate::thread_tid();
    let t_us = crate::epoch_us();
    if TOTAL.fetch_add(1, Ordering::Relaxed) >= MAX_RECORDS {
        TOTAL.fetch_sub(1, Ordering::Relaxed);
        DROPPED.fetch_add(1, Ordering::Relaxed);
        // Dropped records are accounted centrally; the per-thread seq
        // does not advance, so stored sequences stay gap-free.
        return LOCAL.with(|l| l.borrow().next_seq);
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        let seq = l.next_seq;
        l.next_seq += 1;
        let worker = l.worker;
        let buf = l.buffer();
        lock(&buf).push(Record {
            seq,
            tid,
            t_us,
            kind,
            point,
            worker,
            stable,
            fields,
        });
        seq
    })
}

/// Emits one **stable** record (kept by the canonical projection).
/// `fill` is only called when the journal is enabled, so call sites in
/// hot loops stay allocation-free when it is off.
#[inline]
pub fn emit(kind: &'static str, point: Option<u64>, fill: impl FnOnce(&mut EventBuilder)) {
    if !enabled() {
        return;
    }
    let mut b = EventBuilder::default();
    fill(&mut b);
    record(kind, point, true, b.fields);
}

/// Emits one **volatile** record (dropped by the canonical
/// projection): timings, cache outcomes under racing workers, span
/// scaffolding.
#[inline]
pub fn emit_volatile(kind: &'static str, point: Option<u64>, fill: impl FnOnce(&mut EventBuilder)) {
    if !enabled() {
        return;
    }
    let mut b = EventBuilder::default();
    fill(&mut b);
    record(kind, point, false, b.fields);
}

/// Journals a span opening (volatile) with parent attribution — the
/// seq of the innermost still-open journaled span on this thread.
/// Returns the open record's seq for [`span_close`]. Called by
/// [`crate::span`]; not part of the typical user surface.
pub(crate) fn span_open(name: &'static str) -> u64 {
    let parent = LOCAL.with(|l| l.borrow().open_spans.last().copied());
    let mut fields = vec![Field {
        name: "name",
        value: FieldValue::Str(name.to_string()),
        stable: false,
    }];
    if let Some(p) = parent {
        fields.push(Field {
            name: "parent",
            value: FieldValue::U64(p),
            stable: false,
        });
    }
    let seq = record("span.open", None, false, fields);
    LOCAL.with(|l| l.borrow_mut().open_spans.push(seq));
    seq
}

/// Journals a span closing (volatile), referencing its open record.
pub(crate) fn span_close(name: &'static str, open_seq: u64, dur_us: u64) {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        // Spans are RAII guards, so closes normally pop in stack
        // order; a guard moved across an early return still finds and
        // removes its own entry.
        if let Some(pos) = l.open_spans.iter().rposition(|&s| s == open_seq) {
            l.open_spans.remove(pos);
        }
    });
    record(
        "span.close",
        None,
        false,
        vec![
            Field {
                name: "name",
                value: FieldValue::Str(name.to_string()),
                stable: false,
            },
            Field {
                name: "open",
                value: FieldValue::U64(open_seq),
                stable: false,
            },
            Field {
                name: "dur_us",
                value: FieldValue::U64(dur_us),
                stable: false,
            },
        ],
    );
}

/// Journals a counter add (volatile). Called by [`crate::counter`].
pub(crate) fn counter_event(name: &'static str, delta: u64) {
    record(
        "counter",
        None,
        false,
        vec![
            Field {
                name: "name",
                value: FieldValue::Str(name.to_string()),
                stable: false,
            },
            Field {
                name: "delta",
                value: FieldValue::U64(delta),
                stable: false,
            },
        ],
    );
}

/// Takes every record from every registered per-thread buffer. Emits
/// happen under each buffer's lock, so a drain after a
/// `thread::scope` join observes everything the joined workers wrote
/// — no dependency on their TLS destructors having run.
pub fn drain() -> Journal {
    let mut records = Vec::new();
    let mut reg = lock(&REGISTRY);
    for buf in reg.iter() {
        records.append(&mut *lock(buf));
    }
    reg.retain(|b| Arc::strong_count(b) > 1);
    drop(reg);
    TOTAL.fetch_sub(records.len(), Ordering::Relaxed);
    Journal {
        records,
        dropped: DROPPED.swap(0, Ordering::Relaxed),
    }
}

/// A drained journal, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Every record, in global flush order (not meaningful; the
    /// exporters re-sort).
    pub records: Vec<Record>,
    /// Records discarded past [`MAX_RECORDS`].
    pub dropped: u64,
}

/// The canonical record order: point-major, then each point's own
/// emission order via the per-thread sequence (every record of one
/// point comes from the one thread that evaluated it). Records with no
/// point (sweep begin/end, spans, counters) sort after all points.
fn canonical_key(r: &Record) -> (u64, u64, u32, &'static str) {
    (r.point.unwrap_or(u64::MAX), r.seq, r.tid, r.kind)
}

impl Journal {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records attributed to some point, in canonical order.
    pub fn point_records(&self) -> Vec<&Record> {
        let mut v: Vec<&Record> = self.records.iter().filter(|r| r.point.is_some()).collect();
        v.sort_by_key(|r| canonical_key(r));
        v
    }

    /// The full journal as JSONL, one record per line, re-sorted into
    /// canonical order so the file's content does not depend on which
    /// thread flushed first. Timestamps, seqs, and tids are included —
    /// this is the file `hlstb trace-view` rolls up.
    pub fn to_jsonl(&self) -> String {
        let mut sorted: Vec<&Record> = self.records.iter().collect();
        sorted.sort_by_key(|r| canonical_key(r));
        let mut out = String::new();
        for r in sorted {
            out.push_str(&r.to_json(false));
            out.push('\n');
        }
        out
    }

    /// The canonical projection as JSONL: stable records only, stable
    /// fields only, no seq/tid/timestamps, re-sorted by `(point,
    /// seq)`. Byte-identical across thread counts and cache settings
    /// for the same spec — the telemetry analogue of
    /// `SweepReport::canonical_json`.
    pub fn to_canonical_jsonl(&self) -> String {
        let mut sorted: Vec<&Record> = self.records.iter().filter(|r| r.stable).collect();
        sorted.sort_by_key(|r| canonical_key(r));
        let mut out = String::new();
        for r in sorted {
            out.push_str(&r.to_json(true));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The journal is process-global; tests serialize on this lock.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_journal_records_nothing_and_skips_the_closure() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        let mut called = false;
        emit("probe", None, |_| called = true);
        emit_volatile("probe", None, |_| called = true);
        assert!(!called, "builder closure must not run when disabled");
        assert!(drain().is_empty());
    }

    #[test]
    fn records_carry_seq_point_and_typed_fields() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        emit("point.completed", Some(3), |e| {
            e.f64("coverage_percent", 92.5)
                .bool("timed_out", false)
                .volatile_u64("wall_us", 1234);
        });
        emit_volatile("counterish", None, |e| {
            e.str("name", "x");
        });
        set_enabled(false);
        let j = drain();
        assert_eq!(j.records.len(), 2);
        let first = &j.records[0];
        assert_eq!(first.kind, "point.completed");
        assert_eq!(first.point, Some(3));
        assert!(first.stable);
        let full = first.to_json(false);
        assert!(full.contains("\"seq\""), "{full}");
        assert!(full.contains("\"wall_us\": 1234"), "{full}");
        let canon = first.to_json(true);
        assert!(!canon.contains("wall_us"), "{canon}");
        assert!(!canon.contains("seq"), "{canon}");
        assert!(canon.contains("\"coverage_percent\": 92.5"), "{canon}");
        assert!(!j.records[1].stable);
    }

    #[test]
    fn worker_tag_rides_full_export_only() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        let h = std::thread::spawn(|| {
            set_worker(7);
            emit("point.completed", Some(0), |e| {
                e.bool("timed_out", false);
            });
        });
        h.join().expect("worker thread");
        set_enabled(false);
        let j = drain();
        let r = &j.records[0];
        assert_eq!(r.worker, Some(7));
        assert!(r.to_json(false).contains("\"worker\": 7"));
        assert!(!r.to_json(true).contains("worker"));
    }

    #[test]
    fn canonical_jsonl_drops_volatile_and_sorts_by_point() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        emit("sweep.begin", None, |e| {
            e.u64("points", 2);
        });
        emit("point.scheduled", Some(1), |_| {});
        emit("point.scheduled", Some(0), |_| {});
        emit_volatile("span.openish", None, |_| {});
        set_enabled(false);
        let j = drain();
        let canon = j.to_canonical_jsonl();
        let lines: Vec<&str> = canon.lines().collect();
        assert_eq!(lines.len(), 3, "{canon}");
        assert!(lines[0].contains("\"point\": 0"), "{canon}");
        assert!(lines[1].contains("\"point\": 1"), "{canon}");
        assert!(lines[2].contains("sweep.begin"), "{canon}");
        for line in lines {
            crate::json::parse(line).expect("every canonical line parses");
        }
        // The full export keeps everything.
        assert_eq!(j.to_jsonl().lines().count(), 4);
    }

    #[test]
    fn spans_journal_open_close_with_parent_attribution() {
        let _x = exclusive();
        crate::set_enabled(false);
        set_enabled(true);
        reset();
        {
            let _outer = crate::span("outer");
            let _inner = crate::span("inner");
        }
        set_enabled(false);
        let j = drain();
        let kinds: Vec<&str> = j.records.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec!["span.open", "span.open", "span.close", "span.close"]
        );
        let outer_seq = j.records[0].seq;
        let inner_open = &j.records[1];
        assert!(
            inner_open
                .fields
                .iter()
                .any(|f| f.name == "parent" && f.value == FieldValue::U64(outer_seq)),
            "{inner_open:?}"
        );
        // Inner closes before outer, referencing its own open seq.
        let inner_close = &j.records[2];
        assert!(inner_close
            .fields
            .iter()
            .any(|f| f.name == "open" && f.value == FieldValue::U64(inner_open.seq)));
        // Nothing canonical came out of spans alone.
        assert!(j.to_canonical_jsonl().is_empty());
    }

    #[test]
    fn counters_journal_volatile_records_when_enabled() {
        let _x = exclusive();
        crate::set_enabled(true);
        set_enabled(true);
        crate::reset();
        reset();
        crate::counter("probe.count", 5);
        set_enabled(false);
        crate::set_enabled(false);
        let j = drain();
        crate::reset();
        let c = j
            .records
            .iter()
            .find(|r| r.kind == "counter")
            .expect("counter journaled");
        assert!(c
            .fields
            .iter()
            .any(|f| f.name == "delta" && f.value == FieldValue::U64(5)));
    }
}
