//! One parser for the `HLSTB_TRACE*` environment hooks, shared by the
//! `hlstb` CLI and the `exp_*` experiment binaries so the two agree on
//! semantics.
//!
//! Every hook selects by **value**, never by mere presence:
//!
//! * unset, empty, or `"0"` → off;
//! * `HLSTB_TRACE=<file>` → write a Chrome trace (chrome://tracing,
//!   Perfetto) to `<file>` on finish;
//! * `HLSTB_TRACE_METRICS=<file>` → write the flat metrics JSON to
//!   `<file>`;
//! * `HLSTB_TRACE_EVENTS=<file>` → enable the [`crate::events`]
//!   journal and write it as JSONL to `<file>`;
//! * `HLSTB_TRACE_SUMMARY=<anything else, e.g. 1>` → print the
//!   per-phase text summary to stderr.
//!
//! Historically `HLSTB_TRACE_SUMMARY` was tested by presence (so
//! `HLSTB_TRACE_SUMMARY=0` still enabled it) while `HLSTB_TRACE` used
//! its value as a path — this module is the single source of truth
//! that resolves that inconsistency.

/// The resolved hook configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvHooks {
    /// Chrome-trace output path (`HLSTB_TRACE`).
    pub chrome: Option<String>,
    /// Flat metrics JSON output path (`HLSTB_TRACE_METRICS`).
    pub metrics: Option<String>,
    /// Event-journal JSONL output path (`HLSTB_TRACE_EVENTS`).
    pub events: Option<String>,
    /// Whether to print the text summary to stderr
    /// (`HLSTB_TRACE_SUMMARY`).
    pub summary: bool,
}

impl EnvHooks {
    /// Whether any hook asks for the aggregate collector (spans,
    /// counters, gauges).
    pub fn wants_trace(&self) -> bool {
        self.chrome.is_some() || self.metrics.is_some() || self.summary
    }

    /// Whether any hook asks for the event journal.
    pub fn wants_events(&self) -> bool {
        self.events.is_some()
    }

    /// Whether every hook is off.
    pub fn is_off(&self) -> bool {
        !self.wants_trace() && !self.wants_events()
    }
}

/// Off when unset, empty, or `"0"`; otherwise the value.
fn value_hook(v: Option<String>) -> Option<String> {
    v.filter(|s| !s.is_empty() && s != "0")
}

/// Resolves hooks from a lookup function — the pure core, unit-tested
/// without touching the process environment.
pub fn parse(get: impl Fn(&str) -> Option<String>) -> EnvHooks {
    EnvHooks {
        chrome: value_hook(get("HLSTB_TRACE")),
        metrics: value_hook(get("HLSTB_TRACE_METRICS")),
        events: value_hook(get("HLSTB_TRACE_EVENTS")),
        summary: value_hook(get("HLSTB_TRACE_SUMMARY")).is_some(),
    }
}

/// Resolves hooks from the process environment.
pub fn from_env() -> EnvHooks {
    parse(|k| std::env::var(k).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(name, _)| *name == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn unset_empty_and_zero_are_all_off() {
        assert!(parse(env_of(&[])).is_off());
        assert!(parse(env_of(&[
            ("HLSTB_TRACE", ""),
            ("HLSTB_TRACE_METRICS", "0"),
            ("HLSTB_TRACE_EVENTS", ""),
            ("HLSTB_TRACE_SUMMARY", "0"),
        ]))
        .is_off());
    }

    #[test]
    fn paths_come_from_values_and_summary_is_truthy() {
        let hooks = parse(env_of(&[
            ("HLSTB_TRACE", "out.trace.json"),
            ("HLSTB_TRACE_EVENTS", "out.events.jsonl"),
            ("HLSTB_TRACE_SUMMARY", "1"),
        ]));
        assert_eq!(hooks.chrome.as_deref(), Some("out.trace.json"));
        assert_eq!(hooks.metrics, None);
        assert_eq!(hooks.events.as_deref(), Some("out.events.jsonl"));
        assert!(hooks.summary);
        assert!(hooks.wants_trace());
        assert!(hooks.wants_events());
    }

    #[test]
    fn summary_zero_no_longer_counts_as_presence() {
        // The historical by-presence bug: SUMMARY=0 used to enable it.
        let hooks = parse(env_of(&[("HLSTB_TRACE_SUMMARY", "0")]));
        assert!(!hooks.summary);
        assert!(hooks.is_off());
    }

    #[test]
    fn events_alone_wants_journal_but_not_collector() {
        let hooks = parse(env_of(&[("HLSTB_TRACE_EVENTS", "j.jsonl")]));
        assert!(!hooks.wants_trace());
        assert!(hooks.wants_events());
        assert!(!hooks.is_off());
    }
}
