//! `hlstb-trace` — the workbench's structured-observability facade.
//!
//! A zero-dependency, in-tree crate (in the style of the offline
//! `rand`/`proptest`/`criterion` subsets) that every synthesis crate
//! links against. It provides:
//!
//! * **RAII spans** ([`span`]): scoped wall-time measurements of the
//!   synthesis phases (scheduling, binding, expansion, scan selection,
//!   BIST planning, ATPG, fault grading, …);
//! * **counters** ([`counter`]) and **gauges** ([`gauge`]): merged
//!   monotonically — counters add, gauges keep the maximum — so
//!   concurrent workers never need coordination beyond the collector
//!   lock;
//! * **per-phase histograms**: every span feeds a log₂-bucketed
//!   duration histogram keyed by span name;
//! * **exporters** (via [`snapshot`]): a Chrome trace-event JSON file
//!   loadable in Perfetto / `chrome://tracing`, a flat metrics JSON,
//!   and a human-readable text summary.
//!
//! # Overhead guarantee
//!
//! Tracing is **off by default**. When disabled, every entry point is a
//! single relaxed atomic load followed by an immediate return: no
//! allocation, no lock, no syscall. The hot fault-simulation loop can
//! therefore stay instrumented unconditionally (enforced by the
//! `zero_alloc` integration test).
//!
//! # Determinism
//!
//! The collector only *observes*: no instrumented algorithm branches on
//! [`enabled`], and no trace call touches an RNG or reorders work.
//! Enabling tracing changes wall time, never results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envhook;
pub mod events;
pub mod json;

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Histogram buckets: bucket `i` counts durations in `[2^i, 2^(i+1))`
/// microseconds (bucket 0 also holds sub-microsecond spans).
pub const HIST_BUCKETS: usize = 32;

/// Hard cap on retained span events; past it the histograms and phase
/// totals keep aggregating but individual events are counted as
/// dropped instead of stored (bounds memory on pathological runs).
const MAX_EVENTS: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static COLLECTOR: Mutex<Collector> = Mutex::new(Collector::new());

thread_local! {
    static TID: Cell<u32> = const { Cell::new(0) };
}

/// Pins the trace epoch (timestamp zero) if not already pinned, so the
/// span collector and the event journal share one time base.
pub(crate) fn pin_epoch() {
    EPOCH.get_or_init(Instant::now);
}

/// Microseconds elapsed since the trace epoch (pinning it on first use).
pub(crate) fn epoch_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Small dense id of the calling thread (assigned on first traced use).
pub(crate) fn thread_tid() -> u32 {
    TID.with(|c| {
        let v = c.get();
        if v != 0 {
            v
        } else {
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            c.set(v);
            v
        }
    })
}

fn lock_collector() -> std::sync::MutexGuard<'static, Collector> {
    COLLECTOR.lock().unwrap_or_else(|e| e.into_inner())
}

/// One completed span occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SpanEvent {
    name: &'static str,
    tid: u32,
    start_us: u64,
    dur_us: u64,
}

/// Aggregated wall-time statistics of one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PhaseStat {
    count: u64,
    total: Duration,
    min: Duration,
    max: Duration,
    buckets: [u64; HIST_BUCKETS],
}

impl PhaseStat {
    fn new() -> Self {
        PhaseStat {
            count: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
            buckets: [0; HIST_BUCKETS],
        }
    }

    fn record(&mut self, d: Duration) {
        self.count += 1;
        self.total += d;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        let us = d.as_micros().max(1) as u64;
        let bucket = (63 - us.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }
}

struct Collector {
    events: Vec<SpanEvent>,
    dropped_events: u64,
    phases: BTreeMap<&'static str, PhaseStat>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
}

impl Collector {
    const fn new() -> Self {
        Collector {
            events: Vec::new(),
            dropped_events: 0,
            phases: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }

    fn clear(&mut self) {
        self.events.clear();
        self.dropped_events = 0;
        self.phases.clear();
        self.counters.clear();
        self.gauges.clear();
    }
}

/// Turns the global collector on or off. Enabling also pins the trace
/// epoch (timestamp zero) on first use. Disabling leaves collected data
/// in place so it can still be exported.
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the collector is currently recording. A single relaxed
/// atomic load — cheap enough for the innermost loops.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Discards all collected events, histograms, counters and gauges.
/// The enabled flag and epoch are unchanged.
pub fn reset() {
    lock_collector().clear();
}

/// An RAII span guard: measures wall time from construction to drop and
/// records one event under its name. When tracing is disabled at
/// construction the guard is inert (no allocation, no lock on drop).
#[derive(Debug)]
#[must_use = "a span measures until dropped; binding it to `_` drops immediately"]
pub struct Span {
    inner: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    name: &'static str,
    start: Instant,
    /// Whether to record into the aggregate collector on drop.
    collect: bool,
    /// Seq of the journal's `span.open` record, when the event journal
    /// is on (see [`events`]).
    journal_open: Option<u64>,
}

/// Opens a span named `name`. Close it by dropping the guard (or
/// explicitly via [`Span::end`]). Records into the aggregate collector
/// when tracing is enabled and additionally journals open/close
/// records (with parent attribution) when the [`events`] journal is
/// enabled; inert when both are off.
#[inline]
pub fn span(name: &'static str) -> Span {
    let collect = enabled();
    let journal = events::enabled();
    if !collect && !journal {
        return Span { inner: None };
    }
    let journal_open = if journal {
        Some(events::span_open(name))
    } else {
        None
    };
    Span {
        inner: Some(ActiveSpan {
            name,
            start: Instant::now(),
            collect,
            journal_open,
        }),
    }
}

impl Span {
    /// Ends the span now (sugar for dropping the guard).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            let dur = s.start.elapsed();
            if let Some(open_seq) = s.journal_open {
                events::span_close(s.name, open_seq, dur.as_micros() as u64);
            }
            if !s.collect {
                return;
            }
            let epoch = *EPOCH.get_or_init(Instant::now);
            let start_us = s.start.saturating_duration_since(epoch).as_micros() as u64;
            let event = SpanEvent {
                name: s.name,
                tid: thread_tid(),
                start_us,
                dur_us: dur.as_micros() as u64,
            };
            let mut c = lock_collector();
            c.phases
                .entry(s.name)
                .or_insert_with(PhaseStat::new)
                .record(dur);
            if c.events.len() < MAX_EVENTS {
                c.events.push(event);
            } else {
                c.dropped_events += 1;
            }
        }
    }
}

/// Adds `delta` to the counter `name` (created at zero). Also journals
/// a volatile `counter` record when the [`events`] journal is on.
/// No-op when both are disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if events::enabled() {
        events::counter_event(name, delta);
    }
    if !enabled() {
        return;
    }
    let mut c = lock_collector();
    let slot = c.counters.entry(name).or_insert(0);
    *slot = slot.saturating_add(delta);
}

/// Merges `value` into the gauge `name`, keeping the maximum observed —
/// the monotone merge that needs no coordination between concurrent
/// reporters. No-op when tracing is disabled.
#[inline]
pub fn gauge(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut c = lock_collector();
    let slot = c.gauges.entry(name).or_insert(0);
    *slot = (*slot).max(value);
}

/// One exported span event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Span name.
    pub name: &'static str,
    /// Dense id of the recording thread.
    pub tid: u32,
    /// Start, in microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Aggregated statistics of one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Span name.
    pub name: &'static str,
    /// Occurrences.
    pub count: u64,
    /// Summed wall time.
    pub total: Duration,
    /// Shortest occurrence.
    pub min: Duration,
    /// Longest occurrence.
    pub max: Duration,
    /// log₂(µs) duration histogram (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

/// A point-in-time copy of everything the collector holds, with the
/// exporters. Snapshots are plain data: taking one does not stop or
/// clear collection.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Completed span events, sorted by `(start_us, dur_us, tid,
    /// name)` — a deterministic order regardless of which worker's
    /// span happened to reach the collector first.
    pub events: Vec<Event>,
    /// Events discarded past the retention cap.
    pub dropped_events: u64,
    /// Per-span-name aggregates, name-sorted.
    pub phases: Vec<PhaseSummary>,
    /// Counters, name-sorted.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauges, name-sorted.
    pub gauges: Vec<(&'static str, u64)>,
}

/// Copies the collector's current contents. Span events are re-sorted
/// into a completion-order-independent order so the exporters emit the
/// same bytes no matter how concurrent workers raced to the collector
/// (timestamps still vary run to run, of course; the point is that a
/// single run's snapshot renders one way).
pub fn snapshot() -> Snapshot {
    let c = lock_collector();
    let mut events: Vec<Event> = c
        .events
        .iter()
        .map(|e| Event {
            name: e.name,
            tid: e.tid,
            start_us: e.start_us,
            dur_us: e.dur_us,
        })
        .collect();
    events.sort_by_key(|e| (e.start_us, e.dur_us, e.tid, e.name));
    Snapshot {
        events,
        dropped_events: c.dropped_events,
        phases: c
            .phases
            .iter()
            .map(|(&name, p)| PhaseSummary {
                name,
                count: p.count,
                total: p.total,
                min: p.min,
                max: p.max,
                buckets: p.buckets,
            })
            .collect(),
        counters: c.counters.iter().map(|(&k, &v)| (k, v)).collect(),
        gauges: c.gauges.iter().map(|(&k, &v)| (k, v)).collect(),
    }
}

impl Snapshot {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Total wall time of the span `name`, if it occurred.
    pub fn phase_total(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|p| p.name == name).map(|p| p.total)
    }

    /// Current value of counter `name`, if it was touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
    }

    /// Renders the snapshot as a Chrome trace-event JSON document
    /// (the `chrome://tracing` / Perfetto "JSON array format" with
    /// complete `ph: "X"` events; counters become `ph: "C"` samples).
    pub fn chrome_trace_json(&self) -> String {
        let mut events = json::Arr::new();
        let mut meta = json::Obj::new();
        meta.string("name", "process_name");
        meta.string("ph", "M");
        meta.number_u64("pid", 1);
        let mut args = json::Obj::new();
        args.string("name", "hlstb");
        meta.raw("args", &args.finish());
        events.raw(&meta.finish());
        let mut end_us = 0u64;
        for e in &self.events {
            end_us = end_us.max(e.start_us + e.dur_us);
            let mut o = json::Obj::new();
            o.string("name", e.name);
            o.string("cat", "hlstb");
            o.string("ph", "X");
            o.number_u64("ts", e.start_us);
            o.number_u64("dur", e.dur_us);
            o.number_u64("pid", 1);
            o.number_u64("tid", e.tid as u64);
            events.raw(&o.finish());
        }
        for &(name, value) in &self.counters {
            let mut o = json::Obj::new();
            o.string("name", name);
            o.string("cat", "hlstb");
            o.string("ph", "C");
            o.number_u64("ts", end_us);
            o.number_u64("pid", 1);
            let mut args = json::Obj::new();
            args.number_u64("value", value);
            o.raw("args", &args.finish());
            events.raw(&o.finish());
        }
        let mut doc = json::Obj::new();
        doc.string("displayTimeUnit", "ms");
        doc.number_u64("droppedEvents", self.dropped_events);
        doc.raw("traceEvents", &events.finish());
        doc.finish()
    }

    /// Renders the snapshot as one flat metrics JSON object: per-phase
    /// aggregates (count / total / min / max / histogram), counters,
    /// and gauges.
    pub fn metrics_json(&self) -> String {
        let ms = |d: Duration| json::number_f64(d.as_secs_f64() * 1e3);
        let mut phases = json::Obj::new();
        for p in &self.phases {
            let mut o = json::Obj::new();
            o.number_u64("count", p.count);
            o.raw("total_ms", &ms(p.total));
            o.raw("min_ms", &ms(p.min));
            o.raw("max_ms", &ms(p.max));
            let last = p.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
            let mut hist = json::Arr::new();
            for &b in &p.buckets[..last] {
                hist.raw(&b.to_string());
            }
            o.raw("hist_log2_us", &hist.finish());
            phases.raw(p.name, &o.finish());
        }
        let mut counters = json::Obj::new();
        for &(k, v) in &self.counters {
            counters.number_u64(k, v);
        }
        let mut gauges = json::Obj::new();
        for &(k, v) in &self.gauges {
            gauges.number_u64(k, v);
        }
        let mut doc = json::Obj::new();
        doc.number_u64("events", self.events.len() as u64);
        doc.number_u64("dropped_events", self.dropped_events);
        doc.raw("phases", &phases.finish());
        doc.raw("counters", &counters.finish());
        doc.raw("gauges", &gauges.finish());
        doc.finish()
    }

    /// Renders a human-readable per-phase breakdown (wall-time-sorted)
    /// plus the counters and gauges.
    pub fn text_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>7} {:>12} {:>12} {:>12}\n",
            "phase", "count", "total ms", "min ms", "max ms"
        ));
        let mut phases: Vec<&PhaseSummary> = self.phases.iter().collect();
        phases.sort_by(|a, b| b.total.cmp(&a.total).then(a.name.cmp(b.name)));
        for p in phases {
            out.push_str(&format!(
                "{:<28} {:>7} {:>12.3} {:>12.3} {:>12.3}\n",
                p.name,
                p.count,
                p.total.as_secs_f64() * 1e3,
                p.min.as_secs_f64() * 1e3,
                p.max.as_secs_f64() * 1e3,
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for &(k, v) in &self.counters {
                out.push_str(&format!("  {k:<26} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for &(k, v) in &self.gauges {
                out.push_str(&format!("  {k:<26} {v}\n"));
            }
        }
        if self.dropped_events > 0 {
            out.push_str(&format!(
                "({} events dropped past the retention cap)\n",
                self.dropped_events
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is process-global; tests that need it serialize on
    /// this lock so `cargo test`'s threading cannot interleave them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _x = exclusive();
        set_enabled(false);
        reset();
        {
            let _s = span("phase");
            counter("work", 3);
            gauge("peak", 9);
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn spans_counters_and_gauges_are_collected_and_merged() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        {
            let _s = span("alpha");
            std::thread::sleep(Duration::from_millis(1));
        }
        span("alpha").end();
        counter("work", 2);
        counter("work", 3);
        gauge("peak", 4);
        gauge("peak", 2);
        set_enabled(false);
        let snap = snapshot();
        let alpha = snap.phases.iter().find(|p| p.name == "alpha").unwrap();
        assert_eq!(alpha.count, 2);
        assert!(alpha.total >= Duration::from_millis(1));
        assert!(alpha.min <= alpha.max);
        assert_eq!(alpha.buckets.iter().sum::<u64>(), 2);
        assert_eq!(snap.counter("work"), Some(5));
        assert_eq!(snap.gauges, vec![("peak", 4)]);
        assert_eq!(snap.events.len(), 2);
        assert!(snap.phase_total("alpha").unwrap() >= Duration::from_millis(1));
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn spans_from_worker_threads_get_distinct_tids() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| span("worker").end());
            }
        });
        span("main").end();
        set_enabled(false);
        let snap = snapshot();
        let mut tids: Vec<u32> = snap.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "{:?}", snap.events);
        reset();
    }

    #[test]
    fn exporters_render_name_sorted_regardless_of_insertion_order() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        // Insert counters and spans in reverse-alphabetical order; the
        // exporters must still render them name-sorted.
        counter("zeta", 1);
        counter("alpha", 1);
        span("zz_last").end();
        span("aa_first").end();
        set_enabled(false);
        let snap = snapshot();
        reset();
        let names: Vec<&str> = snap.counters.iter().map(|&(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        let phases: Vec<&str> = snap.phases.iter().map(|p| p.name).collect();
        assert_eq!(phases, vec!["aa_first", "zz_last"]);
        let metrics = snap.metrics_json();
        assert!(
            metrics.find("\"alpha\"").unwrap() < metrics.find("\"zeta\"").unwrap(),
            "{metrics}"
        );
        assert!(
            metrics.find("\"aa_first\"").unwrap() < metrics.find("\"zz_last\"").unwrap(),
            "{metrics}"
        );
        // Event order in exporters follows the deterministic sort key,
        // not collector insertion order.
        let starts: Vec<u64> = snap.events.iter().map(|e| e.start_us).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn exporters_produce_parseable_json() {
        let _x = exclusive();
        set_enabled(true);
        reset();
        span("sched").end();
        counter("fsim.fault_evals", 7);
        gauge("threads", 2);
        set_enabled(false);
        let snap = snapshot();
        reset();

        let chrome = json::parse(&snap.chrome_trace_json()).expect("chrome JSON parses");
        let events = chrome
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .expect("traceEvents array");
        // Metadata + 1 span + 1 counter sample.
        assert_eq!(events.len(), 3);
        assert!(events.iter().any(|e| {
            e.get("name").and_then(json::Value::as_str) == Some("sched")
                && e.get("ph").and_then(json::Value::as_str) == Some("X")
        }));

        let metrics = json::parse(&snap.metrics_json()).expect("metrics JSON parses");
        let sched = metrics.get("phases").and_then(|p| p.get("sched")).unwrap();
        assert_eq!(sched.get("count").and_then(json::Value::as_f64), Some(1.0));
        assert_eq!(
            metrics
                .get("counters")
                .and_then(|c| c.get("fsim.fault_evals"))
                .and_then(json::Value::as_f64),
            Some(7.0)
        );

        let text = snap.text_summary();
        assert!(text.contains("sched"));
        assert!(text.contains("fsim.fault_evals"));
    }
}
