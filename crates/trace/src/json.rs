//! The workspace's shared hand-written JSON vocabulary.
//!
//! The build is fully offline, so every JSON document the workbench
//! emits (`synth --json` reports, `BENCH_fsim.json`, the trace
//! exporters) is hand-written. This module is the single home of the
//! three things those emitters kept reimplementing:
//!
//! * [`escape`] — string-literal escaping;
//! * [`number_f64`] — `f64` formatting that is always a valid JSON
//!   token (non-finite values degrade to `null`);
//! * [`Obj`] / [`Arr`] — compact single-line object/array writers
//!   emitting the workbench's `"key": value` house style;
//!
//! plus a minimal recursive-descent [`parse`]r, used by tests and the
//! `hlstb trace-check` CLI to verify emitted documents are structurally
//! valid without pulling a JSON dependency.

/// Escapes `s` as a complete JSON string literal, quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a valid JSON number token: integral values get a
/// trailing `.0`, and non-finite values (never produced by healthy
/// reports, but possible in degenerate sweeps) degrade to `null`
/// rather than emit unparseable text.
pub fn number_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

/// A compact single-line JSON object writer (`{"a": 1, "b": "x"}`).
#[derive(Debug, Clone, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj { buf: String::new() }
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
    }

    /// Adds `key` with a pre-rendered JSON value (object, array, or any
    /// token the caller already formatted).
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Obj {
        self.sep();
        self.buf.push_str(&escape(key));
        self.buf.push_str(": ");
        self.buf.push_str(value);
        self
    }

    /// Adds a string field (value escaped).
    pub fn string(&mut self, key: &str, value: &str) -> &mut Obj {
        let v = escape(value);
        self.raw(key, &v)
    }

    /// Adds an unsigned integer field.
    pub fn number_u64(&mut self, key: &str, value: u64) -> &mut Obj {
        self.raw(key, &value.to_string())
    }

    /// Adds a float field via [`number_f64`].
    pub fn number_f64(&mut self, key: &str, value: f64) -> &mut Obj {
        let v = number_f64(value);
        self.raw(key, &v)
    }

    /// Adds a boolean field.
    pub fn boolean(&mut self, key: &str, value: bool) -> &mut Obj {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Closes the object and returns the rendered text.
    pub fn finish(&mut self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// A compact single-line JSON array writer (`[1, "x", {}]`).
#[derive(Debug, Clone, Default)]
pub struct Arr {
    buf: String,
}

impl Arr {
    /// Starts an empty array.
    pub fn new() -> Arr {
        Arr { buf: String::new() }
    }

    /// Appends a pre-rendered JSON value.
    pub fn raw(&mut self, value: &str) -> &mut Arr {
        if !self.buf.is_empty() {
            self.buf.push_str(", ");
        }
        self.buf.push_str(value);
        self
    }

    /// Appends a string element (escaped).
    pub fn string(&mut self, value: &str) -> &mut Arr {
        let v = escape(value);
        self.raw(&v)
    }

    /// Closes the array and returns the rendered text.
    pub fn finish(&mut self) -> String {
        format!("[{}]", self.buf)
    }
}

/// A parsed JSON value — the minimal model the validating parser needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order (duplicate keys kept).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value's fields in source order, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// anything else after the first value is an error).
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogates (which the emitters never
                            // produce) degrade to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("empty string tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\t\r\u{1}"), "\"\\t\\r\\u0001\"");
        assert_eq!(escape("plain"), "\"plain\"");
    }

    #[test]
    fn number_f64_is_always_a_token() {
        assert_eq!(number_f64(2.0), "2.0");
        assert_eq!(number_f64(2.5), "2.5");
        assert_eq!(number_f64(f64::NAN), "null");
        assert_eq!(number_f64(f64::INFINITY), "null");
    }

    #[test]
    fn writers_compose_and_roundtrip() {
        let mut inner = Arr::new();
        inner.raw("1").string("two").raw("null");
        let mut o = Obj::new();
        o.string("name", "x\"y")
            .number_u64("n", 7)
            .number_f64("f", 1.5)
            .boolean("ok", true)
            .raw("list", &inner.finish());
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x\"y"));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("list").and_then(Value::as_array).unwrap().len(), 3);
    }

    #[test]
    fn escaped_strings_roundtrip_through_the_parser() {
        for s in [
            "",
            "quote\" backslash\\ nl\n tab\t",
            "µ unicode 木",
            "\u{7}",
        ] {
            let v = parse(&escape(s)).unwrap();
            assert_eq!(v.as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("truth").is_err());
    }

    #[test]
    fn parser_accepts_nested_documents() {
        let v = parse(r#" {"a": [1, {"b": null}, -2.5e1], "c": false} "#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[2].as_f64(), Some(-25.0));
        assert_eq!(a[1].get("b"), Some(&Value::Null));
    }
}
