//! Property tests for the event journal under concurrency: N worker
//! threads hammer spans, counters, and point events simultaneously;
//! the drained journal must parse line by line, every thread's
//! sequence numbers must be gap-free, and both the stable record set
//! and the counter totals must match a single-threaded ground-truth
//! emission of the same logical work.

use proptest::prelude::*;
use std::sync::Mutex;

/// The journal and collector are process-global; tests (and proptest
/// cases) serialize on this lock.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The per-thread workload: for each of `per_thread` logical points,
/// emit a stable scheduled/completed pair wrapped in a span, plus a
/// counter add. `worker` only namespaces the point ids so threads
/// never collide on a point.
fn hammer(worker: u64, per_thread: u64) {
    for i in 0..per_thread {
        let point = worker * 10_000 + i;
        let span = hlstb_trace::span("jc.point");
        hlstb_trace::events::emit("point.scheduled", Some(point), |e| {
            e.u64("worker", worker);
        });
        hlstb_trace::counter("jc.work", 3);
        hlstb_trace::events::emit("point.completed", Some(point), |e| {
            e.f64("coverage_percent", 50.0).bool("timed_out", false);
        });
        span.end();
    }
}

fn setup() {
    hlstb_trace::set_enabled(true);
    hlstb_trace::events::set_enabled(true);
    hlstb_trace::reset();
    hlstb_trace::events::reset();
}

fn teardown() {
    hlstb_trace::set_enabled(false);
    hlstb_trace::events::set_enabled(false);
    hlstb_trace::reset();
    hlstb_trace::events::reset();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_journal_is_parseable_gap_free_and_complete(
        threads in 1u64..5,
        per_thread in 1u64..50,
    ) {
        let _x = exclusive();

        // Single-threaded ground truth of the same logical work.
        setup();
        for w in 0..threads {
            hammer(w, per_thread);
        }
        let truth = hlstb_trace::events::drain();
        let truth_canonical = truth.to_canonical_jsonl();
        let truth_counters = hlstb_trace::snapshot().counter("jc.work");

        // The same work spread over real threads.
        setup();
        std::thread::scope(|scope| {
            for w in 0..threads {
                scope.spawn(move || hammer(w, per_thread));
            }
        });
        let journal = hlstb_trace::events::drain();
        let snap = hlstb_trace::snapshot();
        teardown();

        // Every line of the full export parses.
        let full = journal.to_jsonl();
        for line in full.lines() {
            hlstb_trace::json::parse(line)
                .unwrap_or_else(|e| panic!("unparseable journal line: {e}\n{line}"));
        }
        prop_assert_eq!(journal.dropped, 0);

        // Per-thread sequences are gap-free: each tid's seq set is a
        // contiguous run (spans, counters, and events share one
        // stream, so any lost record would leave a hole).
        let mut by_tid: std::collections::BTreeMap<u32, Vec<u64>> = Default::default();
        for r in &journal.records {
            by_tid.entry(r.tid).or_default().push(r.seq);
        }
        for (tid, mut seqs) in by_tid {
            seqs.sort_unstable();
            for pair in seqs.windows(2) {
                prop_assert_eq!(
                    pair[1], pair[0] + 1,
                    "seq gap on tid {}: {} -> {}", tid, pair[0], pair[1]
                );
            }
        }

        // The stable record set matches single-threaded ground truth
        // byte for byte once canonically re-sorted.
        prop_assert_eq!(
            journal.to_canonical_jsonl(),
            truth_canonical,
            "canonical projection must not depend on threading"
        );
        let stable = journal.records.iter().filter(|r| r.stable).count() as u64;
        prop_assert_eq!(stable, threads * per_thread * 2);

        // Counter totals match ground truth too.
        prop_assert_eq!(snap.counter("jc.work"), truth_counters);
        prop_assert_eq!(snap.counter("jc.work"), Some(threads * per_thread * 3));
    }
}

#[test]
fn drain_after_scope_sees_every_worker_buffer() {
    let _x = exclusive();
    setup();
    // Workers exit before the drain, and their TLS destructors may
    // still be pending at join time — this test pins that the
    // registry sweep sees their buffers anyway.
    std::thread::scope(|scope| {
        for w in 0..3u64 {
            scope.spawn(move || {
                hlstb_trace::events::emit("point.scheduled", Some(w), |_| {});
            });
        }
    });
    let journal = hlstb_trace::events::drain();
    teardown();
    assert_eq!(journal.records.len(), 3, "{:?}", journal.records);
}
