//! The overhead guarantee, enforced: with tracing disabled, the
//! primitives the hot fault-simulation loop calls (span open/close,
//! counter adds, gauge merges) perform **zero** heap allocations. This
//! is what lets `hlstb-netlist`'s grading engine stay instrumented
//! unconditionally without regressing the E21 sweep.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// `ALLOCATIONS` counts every thread's allocations, and the companion
/// test below really does allocate (it records), so the two tests must
/// never overlap — libtest runs them on parallel threads by default.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn disabled_tracing_allocates_nothing_on_the_hot_path() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    hlstb_trace::set_enabled(false);
    hlstb_trace::events::set_enabled(false);
    // Warm up thread-locals and lazy statics outside the window.
    for _ in 0..8 {
        let _span = hlstb_trace::span("fsim.fault");
        hlstb_trace::counter("fsim.fault_evals", 1);
        hlstb_trace::gauge("fsim.threads", 1);
        hlstb_trace::events::emit("point.probe", Some(0), |e| {
            e.u64("n", 1);
        });
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        // The exact primitive mix of one faulty-machine evaluation in
        // the grading engine's inner loop, plus the journal entry
        // points the sweep path calls unconditionally.
        let span = hlstb_trace::span("fsim.fault");
        hlstb_trace::counter("fsim.fault_evals", 1);
        hlstb_trace::counter("fsim.screened", 1);
        hlstb_trace::gauge("fsim.threads", 4);
        hlstb_trace::events::emit("point.probe", Some(0), |e| {
            e.u64("n", 1).str("stage", "grading");
        });
        hlstb_trace::events::emit_volatile("point.timing", Some(0), |e| {
            e.volatile_u64("wall_us", 3);
        });
        assert!(!hlstb_trace::enabled());
        assert!(!hlstb_trace::events::enabled());
        span.end();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate on the fsim hot loop"
    );
}

#[test]
fn enabled_tracing_actually_records() {
    // Companion sanity check: the same primitives do record once the
    // collector is on (so the zero-alloc test is not vacuous). Runs in
    // the same process as the test above; order is irrelevant because
    // this test snapshots only its own names.
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    hlstb_trace::set_enabled(true);
    {
        let _span = hlstb_trace::span("zero_alloc.enabled_probe");
        hlstb_trace::counter("zero_alloc.probe_count", 2);
    }
    hlstb_trace::set_enabled(false);
    let snap = hlstb_trace::snapshot();
    assert!(snap.phase_total("zero_alloc.enabled_probe").is_some());
    assert_eq!(snap.counter("zero_alloc.probe_count"), Some(2));
}
