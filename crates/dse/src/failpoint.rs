//! Deterministic fault injection for sweep robustness tests.
//!
//! A [`FailPlan`] makes chosen sweep points fail on purpose, so the
//! panic-isolation, deadline, and retry machinery can be exercised
//! deterministically (the proptests byte-compare reports across thread
//! counts, so injected failures must not depend on timing):
//!
//! * `panic` — the point panics on every attempt; after the bounded
//!   retries it is reported as a [`crate::PointError::Panic`].
//! * `stall` — the point consumes its whole budget (sleeping it off
//!   when one is set) and reports a [`crate::PointError::Timeout`] on
//!   every attempt.
//! * `flaky` — the point panics on its first attempt and succeeds on
//!   any retry: with `retries >= 1` it lands in the report as a normal
//!   success, proving the retry path.
//! * `io` — the point itself succeeds, but its *checkpoint append*
//!   fails, exercising the degrade-to-checkpoint-less path (a single
//!   warning plus a `checkpoint_degraded` envelope flag, never an
//!   aborted sweep).
//!
//! The CLI builds a plan from the `HLSTB_FAIL_POINT` environment
//! variable (see [`FailPlan::ENV`]); the library itself never reads the
//! environment, so programmatic sweeps stay pure.

use std::collections::BTreeMap;

/// How an injected point fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Panic on every attempt.
    Panic,
    /// Exhaust the point budget and report a timeout on every attempt.
    Stall,
    /// Panic on the first attempt only; succeed on retries.
    Flaky,
    /// Evaluate normally, but fail the point's checkpoint append.
    Io,
}

impl FailMode {
    fn parse(s: &str) -> Option<FailMode> {
        match s {
            "panic" => Some(FailMode::Panic),
            "stall" => Some(FailMode::Stall),
            "flaky" => Some(FailMode::Flaky),
            "io" => Some(FailMode::Io),
            _ => None,
        }
    }
}

/// Point index → injected failure mode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailPlan {
    modes: BTreeMap<usize, FailMode>,
}

impl FailPlan {
    /// The environment variable the CLI reads:
    /// `HLSTB_FAIL_POINT="panic:1,4;stall:2;flaky:3"`.
    pub const ENV: &'static str = "HLSTB_FAIL_POINT";

    /// Parses the spec syntax: `;`-separated groups of
    /// `<mode>:<index>[,<index>…]` with modes `panic`, `stall`,
    /// `flaky`, `io`. Empty input yields an empty plan.
    pub fn parse(s: &str) -> Result<FailPlan, String> {
        let mut plan = FailPlan::default();
        for group in s.split(';').filter(|g| !g.trim().is_empty()) {
            let (mode_s, idx_s) = group
                .split_once(':')
                .ok_or_else(|| format!("bad fail-point group `{group}`: expected mode:indices"))?;
            let mode = FailMode::parse(mode_s.trim()).ok_or_else(|| {
                format!("bad fail-point mode `{mode_s}`: expected panic, stall, flaky, or io")
            })?;
            for idx in idx_s.split(',') {
                let index: usize = idx
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad fail-point index `{idx}`"))?;
                if plan.modes.insert(index, mode).is_some() {
                    return Err(format!("fail-point index {index} listed twice"));
                }
            }
        }
        Ok(plan)
    }

    /// Reads and parses [`ENV`](Self::ENV); `Ok(None)` when unset or
    /// empty.
    pub fn from_env() -> Result<Option<FailPlan>, String> {
        match std::env::var(Self::ENV) {
            Ok(s) if !s.trim().is_empty() => Self::parse(&s).map(Some),
            _ => Ok(None),
        }
    }

    /// Renders the plan back into the [`parse`](Self::parse) syntax
    /// (`parse(to_spec()) == self`), so a sweep coordinator can ship
    /// its plan to worker processes over the wire protocol verbatim.
    pub fn to_spec(&self) -> String {
        let mut groups: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
        for (&index, mode) in &self.modes {
            let name = match mode {
                FailMode::Panic => "panic",
                FailMode::Stall => "stall",
                FailMode::Flaky => "flaky",
                FailMode::Io => "io",
            };
            groups.entry(name).or_default().push(index);
        }
        groups
            .iter()
            .map(|(mode, indices)| {
                let list: Vec<String> = indices.iter().map(ToString::to_string).collect();
                format!("{mode}:{}", list.join(","))
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Injects one point (test convenience).
    pub fn insert(&mut self, index: usize, mode: FailMode) {
        self.modes.insert(index, mode);
    }

    /// The injected mode for a point index, if any.
    pub fn mode(&self, index: usize) -> Option<FailMode> {
        self.modes.get(&index).copied()
    }

    /// Number of injected points.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Whether no point is injected.
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Indices that fail on every attempt (panic + stall) — the
    /// expected error count of a sweep run with `retries >= 1`. Flaky
    /// points recover, and `io` points fail only their checkpoint
    /// append, so neither counts.
    pub fn hard_failures(&self) -> usize {
        self.modes
            .values()
            .filter(|m| !matches!(m, FailMode::Flaky | FailMode::Io))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_syntax() {
        let p = FailPlan::parse("panic:1,4;stall:2;flaky:3").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.mode(1), Some(FailMode::Panic));
        assert_eq!(p.mode(4), Some(FailMode::Panic));
        assert_eq!(p.mode(2), Some(FailMode::Stall));
        assert_eq!(p.mode(3), Some(FailMode::Flaky));
        assert_eq!(p.mode(0), None);
        assert_eq!(p.hard_failures(), 3);
    }

    #[test]
    fn tolerates_whitespace_and_empty_groups() {
        let p = FailPlan::parse(" panic : 0 ; ").unwrap();
        assert_eq!(p.mode(0), Some(FailMode::Panic));
        assert!(FailPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn io_mode_parses_and_is_not_a_hard_failure() {
        let p = FailPlan::parse("io:2;panic:1").unwrap();
        assert_eq!(p.mode(2), Some(FailMode::Io));
        assert_eq!(p.hard_failures(), 1);
    }

    #[test]
    fn to_spec_round_trips() {
        for s in ["panic:1,4;stall:2;flaky:3", "", "stall:0", "io:5;panic:1"] {
            let p = FailPlan::parse(s).unwrap();
            assert_eq!(FailPlan::parse(&p.to_spec()).unwrap(), p, "{s}");
        }
        assert!(FailPlan::default().to_spec().is_empty());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(FailPlan::parse("explode:1").is_err());
        assert!(FailPlan::parse("panic").is_err());
        assert!(FailPlan::parse("panic:x").is_err());
        assert!(FailPlan::parse("panic:1;stall:1").is_err());
    }
}
