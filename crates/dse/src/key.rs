//! Content-derived cache keys.
//!
//! Every artifact the workspace synthesizes derives `Debug`, and the
//! cache lives only for the duration of one in-process sweep, so a
//! stage key is the FNV-1a hash of the `Debug` rendering of the stage's
//! inputs: stable within a run, sensitive to any content change, and
//! free of serialization machinery. The hasher implements
//! [`std::fmt::Write`], so hashing never materializes the formatted
//! string.

use std::fmt::{self, Write};

/// 64-bit FNV-1a running hash.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl fmt::Write for Fnv1a {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Hashes a value's `Debug` rendering without allocating it.
pub fn hash_debug<T: fmt::Debug + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv1a::new();
    // Formatting into an FNV sink cannot fail.
    let _ = write!(h, "{value:?}");
    h.finish()
}

/// Folds several stage keys into one (order-sensitive).
pub fn combine(parts: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    for p in parts {
        h.write_bytes(&p.to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_content_equal_key() {
        assert_eq!(hash_debug(&(1u32, "x")), hash_debug(&(1u32, "x")));
        assert_ne!(hash_debug(&(1u32, "x")), hash_debug(&(2u32, "x")));
        assert_ne!(hash_debug(&"ab"), hash_debug(&"ba"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]));
        assert_eq!(combine(&[1, 2]), combine(&[1, 2]));
        assert_ne!(combine(&[]), combine(&[0]));
    }

    #[test]
    fn sink_matches_byte_hashing() {
        let via_debug = hash_debug(&"abc");
        let mut h = Fnv1a::new();
        h.write_bytes(b"\"abc\"");
        assert_eq!(via_debug, h.finish());
    }
}
