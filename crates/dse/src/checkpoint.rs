//! JSONL sweep checkpoints: stream completed points, resume cheaply.
//!
//! # Format
//!
//! One JSON object per line, appended (and flushed) as each point
//! completes, so an interrupted sweep loses at most the in-flight
//! points:
//!
//! ```text
//! {"v": 1, "key": "<16-hex content key>", "index": 3, "canonical": "<the point's canonical JSON, escaped>"}
//! ```
//!
//! The `key` is the point's content key ([`crate::engine::point_key`]):
//! a hash of the design's content plus every axis coordinate, so a
//! checkpoint written against an edited spec simply misses and the
//! point is recomputed — stale results are never served. The `index`
//! must also match, because the canonical payload embeds it.
//!
//! # Byte-exact resume
//!
//! The `canonical` field stores the point's canonical JSON object
//! *verbatim* (as an escaped string). On resume the bytes are spliced
//! back into the report unchanged, which is what makes a resumed
//! sweep's [`crate::SweepReport::canonical_json`] byte-identical to an
//! uninterrupted run's — no float re-formatting, no field-order drift.
//! The payload is *also* parsed back into a typed [`PointRecord`] so
//! tables, summaries, and programmatic consumers see real metrics; a
//! line that fails to parse (e.g. the torn tail of a killed run) is
//! ignored and its point recomputed.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use hlstb::report::TestabilityReport;
use hlstb_trace::json::{self, Obj, Value};

use crate::error::PointError;
use crate::report::{PointMetrics, PointRecord};

/// Streams completed points to a JSONL file (append mode, one flush
/// per point). Shared by the worker pool behind a mutex.
///
/// A failing append (ENOSPC, a yanked volume) does not abort the
/// sweep: callers route write errors through
/// [`degrade`](Checkpoint::degrade), which warns on stderr exactly
/// once and latches the checkpoint into a no-op — the sweep finishes
/// checkpoint-less and the envelope carries a `checkpoint_degraded`
/// flag.
pub struct Checkpoint {
    file: Mutex<File>,
    degraded: AtomicBool,
}

impl Checkpoint {
    /// Opens (creating if needed) the checkpoint for appending.
    pub fn open_append(path: &Path) -> Result<Checkpoint, PointError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| PointError::Io {
                message: format!("checkpoint {}: {e}", path.display()),
            })?;
        Ok(Checkpoint {
            file: Mutex::new(file),
            degraded: AtomicBool::new(false),
        })
    }

    /// Whether a write failure already downgraded this checkpoint to a
    /// no-op.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Latches the checkpoint into degraded (no-op) mode, warning on
    /// stderr only on the first call — concurrent workers all hitting
    /// the same dead disk produce one line, not one per point.
    pub fn degrade(&self, why: &str) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            eprintln!("warning: {why}; continuing without checkpointing");
        }
    }

    /// Appends one completed point. The record is written and flushed
    /// atomically with respect to other workers — and, because the
    /// whole line (newline included) goes down in **one** `write_all`
    /// on an `O_APPEND` descriptor, also with respect to *other
    /// processes* appending to the same file (a coordinator and a
    /// resumed run never interleave partial lines).
    pub fn record(&self, key: u64, index: usize, canonical: &str) -> Result<(), PointError> {
        if self.degraded() {
            return Ok(());
        }
        let mut line = encode_line(key, index, canonical);
        line.push('\n');
        let io_err = |e: std::io::Error| PointError::Io {
            message: format!("checkpoint write: {e}"),
        };
        let mut f = self.file.lock().expect("checkpoint lock");
        f.write_all(line.as_bytes()).map_err(io_err)?;
        f.flush().map_err(io_err)
    }
}

/// Renders one checkpoint record line (no trailing newline). This is
/// also the wire frame a sweep worker streams back per completed point
/// — the formats are identical by construction, not by convention.
pub(crate) fn encode_line(key: u64, index: usize, canonical: &str) -> String {
    let mut o = Obj::new();
    o.number_u64("v", 1)
        .string("key", &format!("{key:016x}"))
        .number_u64("index", index as u64)
        .string("canonical", canonical);
    o.finish()
}

/// Parses one checkpoint/wire record line back into `(key, index,
/// canonical)`. `None` on anything malformed — a torn tail line, a
/// wrong version, a missing field.
pub(crate) fn parse_line(line: &str) -> Option<(u64, usize, String)> {
    let v = json::parse(line).ok()?;
    if v.get("v").and_then(Value::as_f64) != Some(1.0) {
        return None;
    }
    let key = v
        .get("key")
        .and_then(Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())?;
    let index = v.get("index").and_then(Value::as_f64)?;
    let canonical = v.get("canonical").and_then(Value::as_str)?;
    Some((key, index as usize, canonical.to_string()))
}

/// Completed points loaded from a checkpoint, keyed by content key and
/// point index.
#[derive(Debug, Default)]
pub struct RestoredSet {
    map: HashMap<(u64, usize), String>,
    skipped: usize,
}

impl RestoredSet {
    /// Loads a checkpoint file, skipping malformed lines with a single
    /// stderr warning (a killed sweep can tear its final line;
    /// everything before it is intact and a torn tail must not fail
    /// the whole resume). A missing file is an error — resuming from
    /// nothing is almost always a typo'd path.
    pub fn load(path: &Path) -> Result<RestoredSet, PointError> {
        let text = std::fs::read_to_string(path).map_err(|e| PointError::Io {
            message: format!("resume checkpoint {}: {e}", path.display()),
        })?;
        let mut set = RestoredSet::default();
        for line in text.lines() {
            let Some((key, index, canonical)) = parse_line(line) else {
                set.skipped += 1;
                continue;
            };
            // Later lines win: a re-run after an interrupted resume may
            // append the same point again with identical content.
            set.map.insert((key, index), canonical);
        }
        if set.skipped > 0 {
            eprintln!(
                "warning: resume checkpoint {}: skipped {} malformed line(s) \
                 (torn tail of an interrupted run?); the affected points recompute",
                path.display(),
                set.skipped
            );
        }
        Ok(set)
    }

    /// How many malformed lines the load skipped (0 for a clean file).
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// The stored canonical JSON for a point, when present.
    pub fn lookup(&self, key: u64, index: usize) -> Option<&str> {
        self.map.get(&(key, index)).map(String::as_str)
    }

    /// Number of restorable points.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the checkpoint held no restorable points.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn as_usize(v: &Value, key: &str) -> Option<usize> {
    v.get(key).and_then(Value::as_f64).map(|n| n as usize)
}

/// Rebuilds a typed [`PointRecord`] from a checkpointed canonical
/// payload. The verbatim text is kept on the record so re-rendering is
/// byte-exact; the parsed fields feed the table/summary/programmatic
/// views. Returns `None` (point recomputed) on any structural mismatch.
pub(crate) fn record_from_canonical(text: &str) -> Option<PointRecord> {
    let v = json::parse(text).ok()?;
    let outcome = match v.get("error") {
        Some(Value::Null) | None => {
            let coverage_percent = v.get("coverage_percent").and_then(Value::as_f64);
            let timed_out = v.get("timed_out").and_then(Value::as_bool).unwrap_or(false);
            let report = report_from_json(v.get("report")?)?;
            Ok(PointMetrics {
                report,
                coverage_percent,
                timed_out,
            })
        }
        Some(err) => Err(PointError::from_parts(
            err.get("kind").and_then(Value::as_str)?,
            err.get("message").and_then(Value::as_str)?,
        )?),
    };
    Some(PointRecord {
        index: as_usize(&v, "index")?,
        design: v.get("design").and_then(Value::as_str)?.to_string(),
        scheduler: v.get("scheduler").and_then(Value::as_str)?.to_string(),
        policy: v.get("policy").and_then(Value::as_str)?.to_string(),
        strategy: v.get("strategy").and_then(Value::as_str)?.to_string(),
        width: as_usize(&v, "width")? as u32,
        patterns: as_usize(&v, "patterns")?,
        outcome,
        wall: Duration::ZERO,
        restored: Some(text.to_string()),
    })
}

/// Parses the flat [`TestabilityReport`] object back from canonical
/// JSON. Sweep reports never carry grading/ATPG payloads (the sweep
/// records coverage separately), so those stay `None`.
fn report_from_json(v: &Value) -> Option<TestabilityReport> {
    Some(TestabilityReport {
        name: v.get("name").and_then(Value::as_str)?.to_string(),
        period: as_usize(v, "period")? as u32,
        registers: as_usize(v, "registers")?,
        io_registers: as_usize(v, "io_registers")?,
        fus: as_usize(v, "fus")?,
        scan_registers: as_usize(v, "scan_registers")?,
        sgraph_cycles: as_usize(v, "sgraph_cycles")?,
        sgraph_acyclic_after_scan: v
            .get("sgraph_acyclic_after_scan")
            .and_then(Value::as_bool)?,
        mfvs_size: as_usize(v, "mfvs_size")?,
        max_control_depth: as_usize(v, "max_control_depth")? as u32,
        max_observe_depth: as_usize(v, "max_observe_depth")? as u32,
        gates: as_usize(v, "gates")?,
        area: v.get("area").and_then(Value::as_f64)?,
        bist_overhead_percent: v.get("bist_overhead_percent").and_then(Value::as_f64)?,
        grading: None,
        atpg: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("hlstb_ckpt_{}_{name}.jsonl", std::process::id()))
    }

    fn sample_record(ok: bool) -> PointRecord {
        let report = TestabilityReport {
            name: "fig".into(),
            period: 4,
            registers: 7,
            io_registers: 3,
            fus: 2,
            scan_registers: 1,
            sgraph_cycles: 2,
            sgraph_acyclic_after_scan: false,
            mfvs_size: 2,
            max_control_depth: 3,
            max_observe_depth: 4,
            gates: 321,
            area: 456.75,
            bist_overhead_percent: 9.25,
            grading: None,
            atpg: None,
        };
        PointRecord {
            index: 2,
            design: "fig".into(),
            scheduler: "asap".into(),
            policy: "left-edge".into(),
            strategy: "full-scan".into(),
            width: 8,
            patterns: 128,
            outcome: if ok {
                Ok(PointMetrics {
                    report,
                    coverage_percent: Some(87.5),
                    timed_out: false,
                })
            } else {
                Err(PointError::Panic {
                    message: "injected".into(),
                })
            },
            wall: Duration::from_millis(1),
            restored: None,
        }
    }

    #[test]
    fn write_load_restore_round_trips_bytes() {
        let path = temp("roundtrip");
        std::fs::remove_file(&path).ok();
        let ok = sample_record(true);
        let err = sample_record(false);
        {
            let ck = Checkpoint::open_append(&path).unwrap();
            ck.record(0xAB, 2, &ok.canonical_point_json()).unwrap();
            ck.record(0xCD, 2, &err.canonical_point_json()).unwrap();
        }
        let set = RestoredSet::load(&path).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.lookup(0xEE, 2).is_none());
        assert!(set.lookup(0xAB, 0).is_none(), "index must match too");

        let restored = record_from_canonical(set.lookup(0xAB, 2).unwrap()).unwrap();
        assert_eq!(
            restored.canonical_point_json(),
            ok.canonical_point_json(),
            "verbatim splice must be byte-exact"
        );
        let m = restored.outcome.as_ref().unwrap();
        assert_eq!(m.coverage_percent, Some(87.5));
        assert_eq!(m.report.gates, 321);
        assert_eq!(m.report.area, 456.75);
        assert!(!m.report.sgraph_acyclic_after_scan);

        let restored_err = record_from_canonical(set.lookup(0xCD, 2).unwrap()).unwrap();
        assert_eq!(
            restored_err.outcome.as_ref().err().map(|e| e.kind()),
            Some("panic")
        );
        assert_eq!(
            restored_err.canonical_point_json(),
            err.canonical_point_json()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_lines_are_skipped() {
        let path = temp("torn");
        let ok = sample_record(true);
        {
            let ck = Checkpoint::open_append(&path).unwrap();
            ck.record(1, 2, &ok.canonical_point_json()).unwrap();
        }
        // Simulate a kill mid-write: append half a line.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let half = &text.clone()[..text.len() / 2];
        text.push_str(half);
        std::fs::write(&path, text).unwrap();
        let set = RestoredSet::load(&path).unwrap();
        assert_eq!(set.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    /// A crash can land mid-append at *any* byte: truncating the file
    /// at every offset inside the last record must still load, keep
    /// every fully written earlier record, and never conjure a bogus
    /// one from the torn bytes.
    #[test]
    fn truncation_at_every_byte_of_the_last_record_resumes() {
        let path = temp("every_offset");
        let ok = sample_record(true);
        let err = sample_record(false);
        {
            let ck = Checkpoint::open_append(&path).unwrap();
            ck.record(1, 2, &ok.canonical_point_json()).unwrap();
            ck.record(2, 2, &err.canonical_point_json()).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let first_len = full.iter().position(|&b| b == b'\n').unwrap() + 1;
        for cut in first_len..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let set = RestoredSet::load(&path).unwrap();
            assert!(
                set.lookup(1, 2).is_some(),
                "cut at {cut}: first record must survive"
            );
            if cut == first_len {
                // Nothing of the second record is present at all.
                assert_eq!(set.len(), 1, "cut at {cut}");
                assert_eq!(set.skipped(), 0, "cut at {cut}");
            } else {
                // A partial tail either parses as the full record
                // (only at the very end, pre-newline) or is skipped
                // and counted — never a third outcome.
                assert!(set.len() <= 2, "cut at {cut}");
                if set.len() == 1 {
                    assert_eq!(set.skipped(), 1, "cut at {cut}");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_checkpoint_is_an_io_error() {
        let e = RestoredSet::load(Path::new("/definitely/not/here.jsonl")).unwrap_err();
        assert_eq!(e.kind(), "io");
    }

    #[test]
    fn garbage_canonical_payloads_are_rejected() {
        assert!(record_from_canonical("not json").is_none());
        assert!(record_from_canonical("{\"index\": 1}").is_none());
    }
}
