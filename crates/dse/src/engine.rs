//! The sweep executor: a work-stealing pool over the point list with
//! optional artifact memoization, panic isolation, per-point deadlines,
//! bounded retries, and checkpoint/resume.
//!
//! # Determinism
//!
//! Every pipeline stage is a pure function of its inputs (grading is
//! fixed-seeded), results land in per-point slots indexed by the
//! spec's enumeration order, and the cache changes only *where* an
//! artifact is computed, never *what* it is:
//!
//! * a cached grading run is evaluated once at the sweep's deepest
//!   pattern budget and shallower budgets read a curve prefix — the
//!   batch loop of `random_pattern_run_opts` draws frames and drops
//!   faults identically whether or not later batches follow, so the
//!   prefix equals a direct run at the shallow budget;
//! * every other stage returns the same artifact for the same key by
//!   construction (content-derived keys over deterministic stages).
//!
//! Hence [`run_sweep`] produces the same
//! [`SweepReport::canonical_json`] bytes for any thread count and
//! either cache setting — property-tested in
//! `tests/sweep_determinism.rs` and smoke-checked in CI.
//!
//! # Fault tolerance
//!
//! A panicking point is caught ([`std::panic::catch_unwind`]) and
//! recorded as a typed [`PointError::Panic`]; the injector is a plain
//! atomic and the cache computes outside its locks, so neither can be
//! poisoned and the remaining points complete. Injected failures
//! ([`FailPlan`]) are deterministic, so reports with failures stay
//! byte-identical across thread counts and cache settings.
//!
//! # Deadlines
//!
//! [`SweepOptions::point_budget`] arms a cooperative
//! [`Deadline`](hlstb::netlist::deadline::Deadline) that the netlist
//! grading loops poll: a point that overruns reports *partial* coverage
//! flagged `timed_out` rather than hanging the pool. Note that real
//! (non-injected) timeouts depend on wall-clock behavior and therefore
//! trade away byte-determinism — a cached deep grading run truncated
//! under one point's budget serves its prefix to sibling points. A
//! zero budget is deterministic (every poll fires on first check) and
//! is what the tests pin down.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hlstb::cdfg::Cdfg;
use hlstb::flow::{DftStrategy, SynthesisFlow, SynthesizedDesign};
use hlstb::netlist::deadline::Deadline;
use hlstb::netlist::fault::collapsed_faults;
use hlstb::netlist::fsim::ParallelOptions;
use hlstb::netlist::random::{random_pattern_run_opts, CoveragePoint, RandomRun};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{ArtifactCache, CacheOutcome, DftOutput};
use crate::checkpoint::{self, Checkpoint, RestoredSet};
use crate::error::PointError;
use crate::failpoint::{FailMode, FailPlan};
use crate::key;
use crate::report::{PointMetrics, PointRecord, SweepReport};
use crate::spec::{self, Point, SweepSpec};

/// The fixed grading seed — the same one `SynthesisFlow::grade_random`
/// uses, so sweep coverage matches a standalone graded run.
pub const SWEEP_SEED: u64 = 0xDAC_1996;

/// Reads a coverage curve at a pattern budget: the curve point of the
/// budget's last 64-pattern batch, clamped to where the run saturated
/// (a run that detects everything stops early; its final point is the
/// value every deeper budget would report).
pub fn coverage_at(curve: &[CoveragePoint], patterns: usize) -> f64 {
    let batches = patterns.div_ceil(64).max(1);
    let idx = batches.min(curve.len()).saturating_sub(1);
    curve.get(idx).map_or(0.0, |c| c.coverage_percent)
}

/// Whether a grading run's deadline truncation actually short-changed
/// a point's own budget (a curve cut past the point's budget still
/// serves a complete prefix).
fn grading_truncated(run: &RandomRun, budget: usize) -> bool {
    run.timed_out && run.curve.last().is_none_or(|c| c.patterns < budget)
}

/// How a sweep executes (never *what* it computes — except that a
/// nonzero `point_budget` may truncate grading, see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Worker threads (1 = run inline on the caller's thread).
    pub threads: usize,
    /// Memoize stage artifacts across points.
    pub cache: bool,
    /// Keep every point's full [`SynthesizedDesign`] in the outcome
    /// (memory-heavy; for post-processing passes like sequential ATPG).
    pub keep_designs: bool,
    /// Wall-clock budget per point. `None` (the default) never times
    /// out; `Some` arms the cooperative deadline the grading loops
    /// poll, and each bounded retry halves the remaining budget.
    pub point_budget: Option<Duration>,
    /// How many times a transiently failing point (panic, timeout) is
    /// retried before its typed error lands in the report. Flow errors
    /// are deterministic verdicts and are never retried.
    pub retries: u32,
    /// Print a live one-line progress meter to stderr (done/total,
    /// throughput, ETA, cache hit rate, retries/timeouts). Purely
    /// cosmetic: results and reports are unaffected.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 1,
            cache: true,
            keep_designs: false,
            point_budget: None,
            retries: 1,
            progress: false,
        }
    }
}

/// Live progress shared by the workers: one `\r`-rewritten stderr line
/// per finished point.
pub(crate) struct ProgressMeter {
    total: usize,
    t0: Instant,
    done: AtomicUsize,
    failures: AtomicUsize,
    timeouts: AtomicUsize,
}

impl ProgressMeter {
    pub(crate) fn new(total: usize, t0: Instant) -> Self {
        ProgressMeter {
            total,
            t0,
            done: AtomicUsize::new(0),
            failures: AtomicUsize::new(0),
            timeouts: AtomicUsize::new(0),
        }
    }

    pub(crate) fn tick(
        &self,
        record: &PointRecord,
        retries: u64,
        reissued: u64,
        cache: Option<&ArtifactCache>,
    ) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        match &record.outcome {
            Err(_) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
            }
            Ok(m) if m.timed_out => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) => {}
        }
        let elapsed = self.t0.elapsed().as_secs_f64().max(1e-9);
        let rate = done as f64 / elapsed;
        // Restored/spliced points can push `done` past `total` (e.g. a
        // checkpoint holding duplicates of every point), so saturate
        // instead of underflowing the unsigned subtraction.
        let eta = self.total.saturating_sub(done) as f64 / rate.max(1e-9);
        let mut line = format!(
            "\rsweep: {done}/{} pts  {rate:.1} pts/s  eta {eta:.0}s",
            self.total
        );
        if let Some(c) = cache {
            line.push_str(&format!("  cache {:.0}% hit", c.stats().hit_rate_percent()));
        }
        let failures = self.failures.load(Ordering::Relaxed);
        let timeouts = self.timeouts.load(Ordering::Relaxed);
        if retries + reissued + failures as u64 + timeouts as u64 > 0 {
            line.push_str(&format!(
                "  retries {retries}  failures {failures}  timeouts {timeouts}"
            ));
            if reissued > 0 {
                line.push_str(&format!("  reissued {reissued}"));
            }
        }
        eprint!("{line}");
    }

    /// Terminates the `\r` line so the next stderr write starts clean.
    pub(crate) fn finish(&self) {
        if self.done.load(Ordering::Relaxed) > 0 {
            eprintln!();
        }
    }
}

/// Fault-tolerance inputs that don't fit in `Copy` options: the
/// injected fail plan (tests/CI) and the checkpoint configuration.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Deterministic injected failures (see [`FailPlan`]).
    pub fail_plan: Option<FailPlan>,
    /// Stream each completed point to this JSONL file.
    pub checkpoint: Option<PathBuf>,
    /// Serve points already present in `checkpoint` instead of
    /// re-evaluating them. Restored points carry no
    /// [`SynthesizedDesign`] even under
    /// [`SweepOptions::keep_designs`].
    pub resume: bool,
}

/// What [`run_sweep`] returns: the report, plus the synthesized
/// designs (point-indexed) when [`SweepOptions::keep_designs`] asked
/// for them.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The deterministic per-point report.
    pub report: SweepReport,
    /// One entry per point: `Some` when the point succeeded and
    /// `keep_designs` was set, `None` otherwise.
    pub designs: Vec<Option<SynthesizedDesign>>,
    /// Checkpoint lines that failed to write (the sweep itself keeps
    /// going; nonzero means the checkpoint is incomplete).
    pub checkpoint_write_errors: usize,
}

/// The content key identifying one point across sweep runs: the
/// design's content plus every axis coordinate. Spec edits between an
/// interrupted run and its resume change the key, so stale checkpoint
/// entries miss and the point is recomputed.
pub fn point_key(spec: &SweepSpec, design_keys: &[u64], p: Point) -> u64 {
    key::combine(&[
        design_keys[p.design],
        key::hash_debug(&p.scheduler),
        key::hash_debug(&p.policy),
        key::hash_debug(&p.strategy),
        u64::from(p.width),
        p.patterns as u64,
        u64::from(spec.reset_controller),
    ])
}

/// The shared per-point evaluator: the spec's enumerated points, their
/// content keys, the stage cache, and the panic-isolated retry loop,
/// bundled so the in-process pool ([`run_sweep_with`]) and the
/// process-worker loop ([`crate::worker::worker_loop`]) evaluate
/// points through literally the same code — which is what makes the
/// multi-process splice byte-identical to a serial run by
/// construction.
pub struct PointRunner<'a> {
    spec: &'a SweepSpec,
    opts: SweepOptions,
    fail_plan: Option<FailPlan>,
    design_keys: Vec<u64>,
    points: Vec<Point>,
    point_keys: Vec<u64>,
    cache: Option<Arc<ArtifactCache>>,
    max_patterns: usize,
    retry_count: AtomicU64,
}

impl<'a> PointRunner<'a> {
    /// Builds a runner for `spec`: enumerates the points, derives the
    /// content keys, and allocates the stage cache when
    /// [`SweepOptions::cache`] asks for one. `progress` and `threads`
    /// are the caller's business — the runner only evaluates.
    pub fn new(spec: &'a SweepSpec, opts: &SweepOptions, fail_plan: Option<FailPlan>) -> Self {
        let cache = opts.cache.then(|| Arc::new(ArtifactCache::new()));
        PointRunner::build(spec, opts, fail_plan, cache)
    }

    /// Like [`PointRunner::new`], but sharing an externally owned
    /// cache — the serve daemon injects one bounded, daemon-lifetime
    /// cache here so artifacts coalesce across requests. The shared
    /// cache wins over [`SweepOptions::cache`].
    pub fn with_cache(
        spec: &'a SweepSpec,
        opts: &SweepOptions,
        fail_plan: Option<FailPlan>,
        cache: Arc<ArtifactCache>,
    ) -> Self {
        PointRunner::build(spec, opts, fail_plan, Some(cache))
    }

    fn build(
        spec: &'a SweepSpec,
        opts: &SweepOptions,
        fail_plan: Option<FailPlan>,
        cache: Option<Arc<ArtifactCache>>,
    ) -> Self {
        let points = spec.points();
        let design_keys: Vec<u64> = spec.designs.iter().map(key::hash_debug).collect();
        let point_keys: Vec<u64> = points
            .iter()
            .map(|p| point_key(spec, &design_keys, *p))
            .collect();
        PointRunner {
            spec,
            opts: *opts,
            fail_plan,
            design_keys,
            points,
            point_keys,
            cache,
            max_patterns: spec.max_patterns(),
            retry_count: AtomicU64::new(0),
        }
    }

    /// Number of points in the sweep.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the spec enumerates no points at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The content key of point `i` (checkpoint/wire identity).
    pub fn key(&self, i: usize) -> u64 {
        self.point_keys[i]
    }

    /// The stage cache, when enabled.
    pub fn cache(&self) -> Option<&ArtifactCache> {
        self.cache.as_deref()
    }

    /// Retry attempts so far across all evaluated points.
    pub fn retries(&self) -> u64 {
        self.retry_count.load(Ordering::Relaxed)
    }

    /// Journals point `i` entering the pipeline. Callers emit this
    /// before deciding whether the point restores from a checkpoint or
    /// evaluates, so the canonical journal shape is the same either
    /// way.
    pub fn scheduled(&self, i: usize) {
        let p = self.points[i];
        hlstb_trace::events::emit("point.scheduled", Some(p.index as u64), |e| {
            e.str("design", self.spec.designs[p.design].name())
                .str("strategy", &spec::strategy_name(p.strategy));
        });
    }

    /// Evaluates point `i` — panic-isolated, deadline-armed, retried —
    /// and journals its completion or typed failure.
    pub fn eval(&self, i: usize) -> (PointRecord, Option<SynthesizedDesign>) {
        let p = self.points[i];
        let idx = p.index as u64;
        let point_span = hlstb_trace::span("dse.point");
        let t = Instant::now();
        let (outcome, design) = eval_with_retry(
            self.spec,
            &self.design_keys,
            p,
            self.cache.as_deref(),
            self.max_patterns,
            &self.opts,
            self.fail_plan.as_ref(),
            &self.retry_count,
        );
        point_span.end();
        let record = make_record(self.spec, p, outcome, t.elapsed());
        match &record.outcome {
            Ok(m) => hlstb_trace::events::emit("point.completed", Some(idx), |e| {
                if let Some(cov) = m.coverage_percent {
                    e.f64("coverage_percent", cov);
                }
                e.bool("timed_out", m.timed_out)
                    .volatile_u64("wall_us", record.wall.as_micros() as u64);
            }),
            Err(err) => hlstb_trace::events::emit("point.failed", Some(idx), |e| {
                e.str("error", err.kind())
                    .volatile_str("message", err.message())
                    .volatile_u64("wall_us", record.wall.as_micros() as u64);
            }),
        }
        (record, design)
    }
}

/// Runs every point of `spec` and collects a [`SweepReport`] ordered
/// by point index regardless of completion order.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> SweepOutcome {
    run_sweep_with(spec, opts, &Recovery::default())
        .expect("a sweep without checkpoint I/O cannot fail to start")
}

/// [`run_sweep`] with fault-tolerance inputs: fail-point injection and
/// checkpoint/resume.
///
/// # Errors
///
/// Returns [`PointError::Io`] when the checkpoint cannot be opened or
/// the resume file cannot be read. Per-point failures never fail the
/// sweep — they land as typed errors in the report.
pub fn run_sweep_with(
    spec: &SweepSpec,
    opts: &SweepOptions,
    recovery: &Recovery,
) -> Result<SweepOutcome, PointError> {
    let sweep_span = hlstb_trace::span("dse.sweep");
    let t0 = Instant::now();
    let runner = PointRunner::new(spec, opts, recovery.fail_plan.clone());
    let points = &runner.points;
    let restored_set = match (&recovery.checkpoint, recovery.resume) {
        (Some(path), true) => Some(RestoredSet::load(path)?),
        (None, true) => {
            return Err(PointError::Io {
                message: "resume requested without a checkpoint path".into(),
            })
        }
        _ => None,
    };
    let writer = match &recovery.checkpoint {
        Some(path) => Some(Checkpoint::open_append(path)?),
        None => None,
    };
    type Slot = Mutex<Option<(PointRecord, Option<SynthesizedDesign>)>>;
    let slots: Vec<Slot> = points.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let restored_count = AtomicUsize::new(0);
    let checkpoint_errors = AtomicUsize::new(0);
    let meter = opts.progress.then(|| ProgressMeter::new(points.len(), t0));
    hlstb_trace::events::emit("sweep.begin", None, |e| {
        e.u64("points", points.len() as u64)
            .volatile_u64("threads", opts.threads as u64)
            .volatile_bool("cache", opts.cache);
    });
    // Work stealing via a shared injector: each worker claims the next
    // unclaimed index until the list is drained, so a slow point never
    // stalls the remaining work. The injector is a plain atomic and
    // each slot lock is only held for the final store, so a panicking
    // point (caught below) can poison neither.
    let worker = |lane: u32| {
        hlstb_trace::events::set_worker(lane);
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= points.len() {
                break;
            }
            let p = points[i];
            runner.scheduled(i);
            if let Some(set) = &restored_set {
                let hit = set
                    .lookup(runner.key(i), p.index)
                    .and_then(checkpoint::record_from_canonical);
                if let Some(record) = hit {
                    restored_count.fetch_add(1, Ordering::Relaxed);
                    hlstb_trace::events::emit("point.restored", Some(p.index as u64), |_| {});
                    if let Some(m) = &meter {
                        m.tick(&record, runner.retries(), 0, runner.cache());
                    }
                    *slots[i].lock().expect("slot lock") = Some((record, None));
                    continue;
                }
            }
            let (record, design) = runner.eval(i);
            if let Some(m) = &meter {
                m.tick(&record, runner.retries(), 0, runner.cache());
            }
            if let Some(ck) = &writer {
                // The `io:` fail-point targets the append itself: the
                // point evaluated fine above, only its checkpoint write
                // "fails" — exactly what a real ENOSPC looks like.
                let injected = recovery.fail_plan.as_ref().and_then(|fp| fp.mode(p.index))
                    == Some(FailMode::Io)
                    && !ck.degraded();
                let r = if injected {
                    Err(PointError::Io {
                        message: format!(
                            "checkpoint write: injected io fail-point at point {}",
                            p.index
                        ),
                    })
                } else {
                    ck.record(runner.key(i), p.index, &record.canonical_point_json())
                };
                if let Err(e) = r {
                    checkpoint_errors.fetch_add(1, Ordering::Relaxed);
                    ck.degrade(&e.to_string());
                }
            }
            *slots[i].lock().expect("slot lock") = Some((record, design));
        }
    };
    let threads = opts.threads.max(1).min(points.len().max(1));
    if threads <= 1 {
        worker(0);
    } else {
        // `&worker` is Copy, so every spawn can share the one closure;
        // each thread gets a lane id for the journal's worker column.
        let worker = &worker;
        std::thread::scope(|s| {
            for lane in 0..threads {
                s.spawn(move || worker(lane as u32));
            }
        });
    }
    if let Some(m) = &meter {
        m.finish();
    }
    let mut records = Vec::with_capacity(points.len());
    let mut designs = Vec::with_capacity(points.len());
    let mut cpu = Duration::ZERO;
    for slot in slots {
        let (record, design) = slot
            .into_inner()
            .expect("slot lock")
            .expect("every point evaluated");
        cpu += record.wall;
        records.push(record);
        designs.push(design);
    }
    hlstb_trace::counter("dse.points", records.len() as u64);
    hlstb_trace::events::emit("sweep.end", None, |e| {
        e.u64("points", records.len() as u64)
            .u64(
                "failures",
                records.iter().filter(|r| r.outcome.is_err()).count() as u64,
            )
            .volatile_u64("wall_ms", t0.elapsed().as_millis() as u64)
            .volatile_u64("retries", runner.retries());
    });
    sweep_span.end();
    Ok(SweepOutcome {
        report: SweepReport {
            points: records,
            threads,
            workers: 0,
            cache: runner.cache().map(ArtifactCache::stats),
            wall: t0.elapsed(),
            cpu,
            restored: restored_count.into_inner(),
            retries: runner.retries(),
            reissued: 0,
            checkpoint_degraded: writer.as_ref().is_some_and(Checkpoint::degraded),
        },
        designs,
        checkpoint_write_errors: checkpoint_errors.into_inner(),
    })
}

fn make_record(
    spec: &SweepSpec,
    p: Point,
    outcome: Result<PointMetrics, PointError>,
    wall: Duration,
) -> PointRecord {
    PointRecord {
        index: p.index,
        design: spec.designs[p.design].name().to_string(),
        scheduler: spec::scheduler_name(p.scheduler),
        policy: spec::policy_name(p.policy).to_string(),
        strategy: spec::strategy_name(p.strategy),
        width: p.width,
        patterns: p.patterns,
        outcome,
        wall,
        restored: None,
    }
}

/// Renders a caught panic payload (the two shapes `panic!` produces,
/// plus a fallback for exotic payloads).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Panic-isolated, deadline-armed, bounded-retry evaluation of one
/// point. Panics and timeouts retry up to `opts.retries` times with a
/// halved budget each attempt; flow errors are final on first sight.
#[allow(clippy::too_many_arguments)]
fn eval_with_retry(
    spec: &SweepSpec,
    design_keys: &[u64],
    p: Point,
    cache: Option<&ArtifactCache>,
    max_patterns: usize,
    opts: &SweepOptions,
    fail_plan: Option<&FailPlan>,
    retry_count: &AtomicU64,
) -> (Result<PointMetrics, PointError>, Option<SynthesizedDesign>) {
    let injected = fail_plan.and_then(|f| f.mode(p.index));
    let mut attempt: u32 = 0;
    loop {
        let deadline = match opts.point_budget {
            Some(b) => Deadline::after(b / 2u32.saturating_pow(attempt.min(20))),
            None => Deadline::none(),
        };
        let caught = catch_unwind(AssertUnwindSafe(|| {
            eval_point(
                spec,
                design_keys,
                p,
                cache,
                max_patterns,
                opts.keep_designs,
                deadline,
                injected,
                attempt,
            )
        }));
        let error = match caught {
            Ok(Ok((metrics, design))) => return (Ok(metrics), design),
            Ok(Err(e)) => e,
            Err(payload) => PointError::Panic {
                message: panic_message(payload),
            },
        };
        if error.retryable() && attempt < opts.retries {
            attempt += 1;
            retry_count.fetch_add(1, Ordering::Relaxed);
            hlstb_trace::events::emit("point.retry", Some(p.index as u64), |e| {
                e.u64("attempt", u64::from(attempt))
                    .str("error", error.kind());
            });
            continue;
        }
        return (Err(error), None);
    }
}

/// The flow for one point; stage composition happens in the caller.
fn base_flow(spec: &SweepSpec, design: &Cdfg, p: Point) -> SynthesisFlow {
    SynthesisFlow::new(design.clone())
        .scheduler(p.scheduler)
        .register_policy(p.policy)
        .strategy(p.strategy)
        .width(p.width)
        .reset_controller(spec.reset_controller)
}

type PointOutput = (PointMetrics, Option<SynthesizedDesign>);

#[allow(clippy::too_many_arguments)]
fn eval_point(
    spec: &SweepSpec,
    design_keys: &[u64],
    p: Point,
    cache: Option<&ArtifactCache>,
    max_patterns: usize,
    keep: bool,
    deadline: Deadline,
    injected: Option<FailMode>,
    attempt: u32,
) -> Result<PointOutput, PointError> {
    match injected {
        Some(FailMode::Panic) => panic!("injected panic at point {}", p.index),
        Some(FailMode::Flaky) if attempt == 0 => {
            panic!("injected flaky panic at point {} (attempt 0)", p.index)
        }
        Some(FailMode::Stall) => {
            // A stall burns its whole budget (really sleeping it off
            // when one is set) and yields nothing — the deterministic
            // stand-in for a pathological runaway point.
            if let Some(remaining) = deadline.remaining() {
                std::thread::sleep(remaining);
            }
            return Err(PointError::Timeout {
                message: format!("injected stall at point {}: budget exhausted", p.index),
            });
        }
        _ => {}
    }
    match cache {
        Some(c) => eval_cached(spec, design_keys, p, c, max_patterns, keep, deadline),
        None => eval_direct(spec, p, keep, deadline),
    }
}

fn grade_opts(deadline: Deadline) -> ParallelOptions {
    ParallelOptions {
        deadline,
        ..ParallelOptions::default()
    }
}

/// Journals one pipeline-stage completion for a point. The stage name
/// is a stable coordinate; the cache outcome and wall time ride
/// volatile (racing workers flip hit/miss/coalesced, and the canonical
/// projection must stay byte-identical across cache settings).
fn stage_event(p: Point, stage: &'static str, outcome: Option<CacheOutcome>, wall: Duration) {
    hlstb_trace::events::emit("point.stage", Some(p.index as u64), |e| {
        e.str("stage", stage)
            .volatile_str("cache", outcome.map_or("off", CacheOutcome::label))
            .volatile_u64("wall_us", wall.as_micros() as u64);
    });
}

/// Journals a grading run's work counters against the point whose
/// compute produced them. Entirely volatile: under a warm cache only
/// the one point that computed the shared run emits this, and which
/// point that is races under threading.
fn grading_event(p: Point, stats: &hlstb::netlist::stats::GradeStats) {
    hlstb_trace::events::emit_volatile("point.grading", Some(p.index as u64), |e| {
        e.volatile_u64("faults", stats.faults as u64)
            .volatile_u64("frames", stats.frames as u64)
            .volatile_u64("fault_evals", stats.fault_evals)
            .volatile_u64("screened", stats.screened)
            .volatile_u64("dropped", stats.dropped)
            .volatile_u64("unobservable", stats.unobservable)
            .volatile_u64("stem_memo_hits", stats.stem_memo_hits)
            .volatile_u64("stem_memo_misses", stats.stem_memo_misses)
            .volatile_u64("flip_events", stats.flip_events)
            .volatile_u64("early_exits", stats.early_exits);
    });
}

/// The memoized pipeline. Stage keys, in dependency order:
///
/// * front end — design content + scheduler + policy (the integrated
///   loop-avoidance strategy replaces the scheduler/policy pair, so it
///   keys on the design + a marker instead);
/// * S-graph facts — same key as the front end (strategy-independent);
/// * DFT output — front-end key + strategy;
/// * netlist — *content* of the marked data path + width (+ reset
///   flag), so every strategy that leaves identical marks (all four
///   no-scan strategies: none, both BISTs, k-level points) shares one
///   expansion;
/// * grading run — the netlist key; evaluated once at the sweep's
///   deepest budget, read as a prefix for shallower ones.
fn eval_cached(
    spec: &SweepSpec,
    design_keys: &[u64],
    p: Point,
    cache: &ArtifactCache,
    max_patterns: usize,
    keep: bool,
    deadline: Deadline,
) -> Result<PointOutput, PointError> {
    let design = &spec.designs[p.design];
    let flow = base_flow(spec, design, p);
    let front_key = if p.strategy == DftStrategy::SimultaneousLoopAvoidance {
        key::combine(&[design_keys[p.design], key::hash_debug("simsched")])
    } else {
        key::combine(&[
            design_keys[p.design],
            key::hash_debug(&p.scheduler),
            key::hash_debug(&p.policy),
        ])
    };
    let t = Instant::now();
    let (fe, fe_hit) = cache
        .front
        .get_or_try(front_key, || flow.front_end().map_err(PointError::from))?;
    stage_event(p, "front", Some(fe_hit), t.elapsed());
    let t = Instant::now();
    let (facts, facts_hit) = cache.facts.get_or_try(front_key, || {
        Ok::<_, PointError>(SynthesisFlow::sgraph_facts(&fe.datapath))
    })?;
    stage_event(p, "facts", Some(facts_hit), t.elapsed());
    let dft_key = key::combine(&[front_key, key::hash_debug(&p.strategy)]);
    let t = Instant::now();
    let (dft, dft_hit) = cache.dft.get_or_try(dft_key, || {
        let mut fe = (*fe).clone();
        let plans = flow.apply_dft(&mut fe);
        Ok::<_, PointError>(DftOutput {
            datapath: fe.datapath,
            plans,
        })
    })?;
    stage_event(p, "dft", Some(dft_hit), t.elapsed());
    let nl_key = key::combine(&[
        key::hash_debug(&dft.datapath),
        u64::from(p.width),
        u64::from(spec.reset_controller),
    ]);
    let t = Instant::now();
    let (expanded, nl_hit) = cache.netlist.get_or_try(nl_key, || {
        flow.expand_netlist(&dft.datapath).map_err(PointError::from)
    })?;
    stage_event(p, "netlist", Some(nl_hit), t.elapsed());
    let (coverage_percent, timed_out) = if p.patterns > 0 {
        let t = Instant::now();
        let (run, grading_hit) = cache.grading.get_or_try(nl_key, || {
            let faults = collapsed_faults(&expanded.netlist);
            let mut rng = StdRng::seed_from_u64(SWEEP_SEED);
            let (run, gstats) = random_pattern_run_opts(
                &expanded.netlist,
                &faults,
                max_patterns,
                &mut rng,
                &grade_opts(deadline),
            );
            grading_event(p, &gstats);
            Ok::<_, PointError>(run)
        })?;
        stage_event(p, "grading", Some(grading_hit), t.elapsed());
        (
            Some(coverage_at(&run.curve, p.patterns)),
            grading_truncated(&run, p.patterns),
        )
    } else {
        (None, false)
    };
    let report = flow.build_report(&dft.datapath, &expanded, dft.plans.bist.as_ref(), &facts);
    let design_out = keep.then(|| SynthesizedDesign {
        cdfg: design.clone(),
        schedule: fe.schedule.clone(),
        binding: fe.binding.clone(),
        datapath: dft.datapath.clone(),
        expanded: (*expanded).clone(),
        report: report.clone(),
        bist_plan: dft.plans.bist.clone(),
        kcontrol_plan: dft.plans.kcontrol.clone(),
    });
    Ok((
        PointMetrics {
            report,
            coverage_percent,
            timed_out,
        },
        design_out,
    ))
}

/// The uncached pipeline — the same stages, computed from scratch.
/// Grading runs at the point's own budget; [`coverage_at`] reads both
/// this curve and the cached deep curve identically (prefix property).
fn eval_direct(
    spec: &SweepSpec,
    p: Point,
    keep: bool,
    deadline: Deadline,
) -> Result<PointOutput, PointError> {
    let design = &spec.designs[p.design];
    let flow = base_flow(spec, design, p);
    let t = Instant::now();
    let mut fe = flow.front_end().map_err(PointError::from)?;
    stage_event(p, "front", None, t.elapsed());
    // Compute order matches the cached path's artifacts; stage events
    // are emitted in the same fixed front → facts → dft → netlist →
    // grading order so canonical journals agree across cache settings.
    let t_dft = Instant::now();
    let plans = flow.apply_dft(&mut fe);
    let dft_wall = t_dft.elapsed();
    let t = Instant::now();
    let facts = SynthesisFlow::sgraph_facts(&fe.datapath);
    stage_event(p, "facts", None, t.elapsed());
    stage_event(p, "dft", None, dft_wall);
    let t = Instant::now();
    let expanded = flow
        .expand_netlist(&fe.datapath)
        .map_err(PointError::from)?;
    stage_event(p, "netlist", None, t.elapsed());
    let (coverage_percent, timed_out) = if p.patterns > 0 {
        let t = Instant::now();
        let faults = collapsed_faults(&expanded.netlist);
        let mut rng = StdRng::seed_from_u64(SWEEP_SEED);
        let (run, gstats) = random_pattern_run_opts(
            &expanded.netlist,
            &faults,
            p.patterns,
            &mut rng,
            &grade_opts(deadline),
        );
        grading_event(p, &gstats);
        stage_event(p, "grading", None, t.elapsed());
        (
            Some(coverage_at(&run.curve, p.patterns)),
            grading_truncated(&run, p.patterns),
        )
    } else {
        (None, false)
    };
    let report = flow.build_report(&fe.datapath, &expanded, plans.bist.as_ref(), &facts);
    let design_out = keep.then(|| SynthesizedDesign {
        cdfg: design.clone(),
        schedule: fe.schedule.clone(),
        binding: fe.binding.clone(),
        datapath: fe.datapath.clone(),
        expanded: expanded.clone(),
        report: report.clone(),
        bist_plan: plans.bist.clone(),
        kcontrol_plan: plans.kcontrol.clone(),
    });
    Ok((
        PointMetrics {
            report,
            coverage_percent,
            timed_out,
        },
        design_out,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlstb::cdfg::benchmarks;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
        spec.strategies = vec![
            DftStrategy::None,
            DftStrategy::FullScan,
            DftStrategy::BistShared,
        ];
        spec.patterns = vec![64, 128];
        spec
    }

    #[test]
    fn coverage_at_reads_prefixes_and_clamps() {
        let curve = vec![
            CoveragePoint {
                patterns: 64,
                coverage_percent: 40.0,
            },
            CoveragePoint {
                patterns: 128,
                coverage_percent: 70.0,
            },
            CoveragePoint {
                patterns: 192,
                coverage_percent: 100.0,
            },
        ];
        assert_eq!(coverage_at(&curve, 0), 40.0);
        assert_eq!(coverage_at(&curve, 64), 40.0);
        assert_eq!(coverage_at(&curve, 100), 70.0);
        assert_eq!(coverage_at(&curve, 128), 70.0);
        assert_eq!(coverage_at(&curve, 192), 100.0);
        // Budgets past saturation clamp to the final point.
        assert_eq!(coverage_at(&curve, 10_000), 100.0);
        assert_eq!(coverage_at(&[], 64), 0.0);
    }

    #[test]
    fn cache_hits_never_change_a_points_report() {
        let spec = tiny_spec();
        let cached = run_sweep(
            &spec,
            &SweepOptions {
                cache: true,
                ..SweepOptions::default()
            },
        );
        let direct = run_sweep(
            &spec,
            &SweepOptions {
                cache: false,
                ..SweepOptions::default()
            },
        );
        let stats = cached.report.cache.expect("cache enabled");
        assert!(stats.hits() > 0, "{stats:?}");
        assert!(direct.report.cache.is_none());
        assert_eq!(
            cached.report.canonical_json(),
            direct.report.canonical_json()
        );
    }

    #[test]
    fn threaded_sweep_is_byte_identical_to_serial() {
        let spec = tiny_spec();
        let serial = run_sweep(
            &spec,
            &SweepOptions {
                threads: 1,
                cache: false,
                ..SweepOptions::default()
            },
        );
        let threaded = run_sweep(
            &spec,
            &SweepOptions {
                threads: 4,
                cache: true,
                ..SweepOptions::default()
            },
        );
        assert_eq!(
            serial.report.canonical_json(),
            threaded.report.canonical_json()
        );
        assert!(threaded.report.threads > 1);
    }

    #[test]
    fn sweep_coverage_matches_a_standalone_graded_flow() {
        // The cached prefix read must agree with SynthesisFlow's own
        // grading (same seed, same engine) at the same budget.
        let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
        spec.strategies = vec![DftStrategy::FullScan];
        spec.patterns = vec![128, 256];
        let out = run_sweep(&spec, &SweepOptions::default());
        let standalone = SynthesisFlow::new(benchmarks::figure1())
            .strategy(DftStrategy::FullScan)
            .grade_random(128)
            .run()
            .unwrap();
        let got = out.report.points[0]
            .outcome
            .as_ref()
            .unwrap()
            .coverage_percent
            .unwrap();
        assert_eq!(
            got,
            standalone.report.grading.as_ref().unwrap().coverage_percent
        );
    }

    #[test]
    fn keep_designs_returns_point_indexed_designs() {
        let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
        spec.strategies = vec![DftStrategy::None, DftStrategy::FullScan];
        let out = run_sweep(
            &spec,
            &SweepOptions {
                keep_designs: true,
                ..SweepOptions::default()
            },
        );
        assert_eq!(out.designs.len(), 2);
        let none = out.designs[0].as_ref().expect("kept");
        let full = out.designs[1].as_ref().expect("kept");
        assert_eq!(none.report.scan_registers, 0);
        assert_eq!(full.report.scan_registers, full.report.registers);
        // Dropping the request drops the payloads.
        let without = run_sweep(&spec, &SweepOptions::default());
        assert!(without.designs.iter().all(Option::is_none));
    }

    #[test]
    fn no_scan_strategies_share_one_netlist_and_grading_run() {
        let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
        spec.strategies = vec![
            DftStrategy::None,
            DftStrategy::BistNaive,
            DftStrategy::BistShared,
            DftStrategy::KLevelTestPoints(2),
        ];
        spec.patterns = vec![128];
        let out = run_sweep(&spec, &SweepOptions::default());
        let stats = out.report.cache.unwrap();
        // One expansion and one grading run serve all four strategies.
        assert_eq!(stats.netlist.misses, 1, "{stats:?}");
        assert_eq!(stats.netlist.hits, 3, "{stats:?}");
        assert_eq!(stats.grading.misses, 1, "{stats:?}");
        assert_eq!(stats.grading.hits, 3, "{stats:?}");
        // ... and one front end serves everything.
        assert_eq!(stats.front.misses, 1, "{stats:?}");
    }

    #[test]
    fn injected_panic_is_isolated_and_typed() {
        let spec = tiny_spec();
        let mut plan = FailPlan::default();
        plan.insert(1, FailMode::Panic);
        let recovery = Recovery {
            fail_plan: Some(plan),
            ..Recovery::default()
        };
        let out = run_sweep_with(&spec, &SweepOptions::default(), &recovery).unwrap();
        assert_eq!(out.report.points.len(), 6);
        assert_eq!(out.report.errors().len(), 1);
        let (idx, err) = out.report.errors()[0];
        assert_eq!(idx, 1);
        assert_eq!(err.kind(), "panic");
        assert!(err.message().contains("injected panic at point 1"));
        // The cache survived the panic and kept serving other points.
        assert!(out.report.cache.unwrap().hits() > 0);
        // The default policy retried the panic once before giving up.
        assert_eq!(out.report.retries, 1);
    }

    #[test]
    fn flaky_point_succeeds_via_retry_and_fails_without() {
        let spec = tiny_spec();
        let mut plan = FailPlan::default();
        plan.insert(2, FailMode::Flaky);
        let recovery = Recovery {
            fail_plan: Some(plan),
            ..Recovery::default()
        };
        let with_retry = run_sweep_with(&spec, &SweepOptions::default(), &recovery).unwrap();
        assert!(with_retry.report.errors().is_empty());
        assert_eq!(with_retry.report.retries, 1);
        let no_retry = run_sweep_with(
            &spec,
            &SweepOptions {
                retries: 0,
                ..SweepOptions::default()
            },
            &recovery,
        )
        .unwrap();
        assert_eq!(no_retry.report.errors().len(), 1);
        assert_eq!(no_retry.report.errors()[0].1.kind(), "panic");
    }

    #[test]
    fn injected_stall_reports_a_timeout() {
        let spec = tiny_spec();
        let mut plan = FailPlan::default();
        plan.insert(0, FailMode::Stall);
        let recovery = Recovery {
            fail_plan: Some(plan),
            ..Recovery::default()
        };
        let out = run_sweep_with(&spec, &SweepOptions::default(), &recovery).unwrap();
        assert_eq!(out.report.errors().len(), 1);
        assert_eq!(out.report.errors()[0].1.kind(), "timeout");
        assert_eq!(out.report.timeouts(), 1);
        // Stalls are transient by taxonomy, so the policy retried once.
        assert_eq!(out.report.retries, 1);
    }

    #[test]
    fn zero_point_budget_truncates_grading_deterministically() {
        let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
        spec.strategies = vec![DftStrategy::FullScan];
        spec.patterns = vec![256];
        let opts = SweepOptions {
            point_budget: Some(Duration::ZERO),
            ..SweepOptions::default()
        };
        let a = run_sweep(&spec, &opts);
        let m = a.report.points[0].outcome.as_ref().unwrap();
        assert!(m.timed_out, "zero budget must truncate a 256-pattern run");
        assert!(m.coverage_percent.is_some(), "partial coverage reported");
        assert_eq!(a.report.timeouts(), 1);
        // Expired-from-the-start deadlines are deterministic: cache and
        // thread settings still agree byte-for-byte.
        let b = run_sweep(
            &spec,
            &SweepOptions {
                threads: 4,
                cache: false,
                ..opts
            },
        );
        assert_eq!(a.report.canonical_json(), b.report.canonical_json());
        // Without a budget the same point grades the full 256 patterns.
        let full = run_sweep(&spec, &SweepOptions::default());
        let fm = full.report.points[0].outcome.as_ref().unwrap();
        assert!(!fm.timed_out);
        assert!(fm.coverage_percent.unwrap() >= m.coverage_percent.unwrap());
    }

    /// Regression: ticking the meter past `total` (restored/spliced
    /// points can outnumber the planned set) must saturate the ETA
    /// subtraction, not underflow and panic in debug builds.
    #[test]
    fn progress_meter_ticking_past_total_does_not_underflow() {
        let meter = ProgressMeter::new(1, Instant::now());
        let record = PointRecord {
            index: 0,
            design: "figure1".to_string(),
            scheduler: "list".to_string(),
            policy: "left_edge".to_string(),
            strategy: "none".to_string(),
            width: 8,
            patterns: 0,
            outcome: Err(PointError::Io {
                message: "injected".into(),
            }),
            wall: Duration::ZERO,
            restored: None,
        };
        meter.tick(&record, 0, 0, None);
        meter.tick(&record, 1, 2, None); // done=2 > total=1
        meter.finish();
    }

    #[test]
    fn resume_without_checkpoint_path_is_an_io_error() {
        let spec = tiny_spec();
        let recovery = Recovery {
            resume: true,
            ..Recovery::default()
        };
        let err = run_sweep_with(&spec, &SweepOptions::default(), &recovery).unwrap_err();
        assert_eq!(err.kind(), "io");
    }
}
