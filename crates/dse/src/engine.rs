//! The sweep executor: a work-stealing pool over the point list with
//! optional artifact memoization.
//!
//! # Determinism
//!
//! Every pipeline stage is a pure function of its inputs (grading is
//! fixed-seeded), results land in per-point slots indexed by the
//! spec's enumeration order, and the cache changes only *where* an
//! artifact is computed, never *what* it is:
//!
//! * a cached grading run is evaluated once at the sweep's deepest
//!   pattern budget and shallower budgets read a curve prefix — the
//!   batch loop of `random_pattern_run_opts` draws frames and drops
//!   faults identically whether or not later batches follow, so the
//!   prefix equals a direct run at the shallow budget;
//! * every other stage returns the same artifact for the same key by
//!   construction (content-derived keys over deterministic stages).
//!
//! Hence [`run_sweep`] produces the same
//! [`SweepReport::canonical_json`] bytes for any thread count and
//! either cache setting — property-tested in
//! `tests/sweep_determinism.rs` and smoke-checked in CI.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use hlstb::cdfg::Cdfg;
use hlstb::flow::{DftStrategy, SynthesisFlow, SynthesizedDesign};
use hlstb::netlist::fault::collapsed_faults;
use hlstb::netlist::fsim::ParallelOptions;
use hlstb::netlist::random::{random_pattern_run_opts, CoveragePoint};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cache::{ArtifactCache, DftOutput};
use crate::key;
use crate::report::{PointMetrics, PointRecord, SweepReport};
use crate::spec::{self, Point, SweepSpec};

/// The fixed grading seed — the same one `SynthesisFlow::grade_random`
/// uses, so sweep coverage matches a standalone graded run.
pub const SWEEP_SEED: u64 = 0xDAC_1996;

/// Reads a coverage curve at a pattern budget: the curve point of the
/// budget's last 64-pattern batch, clamped to where the run saturated
/// (a run that detects everything stops early; its final point is the
/// value every deeper budget would report).
pub fn coverage_at(curve: &[CoveragePoint], patterns: usize) -> f64 {
    let batches = patterns.div_ceil(64).max(1);
    let idx = batches.min(curve.len()).saturating_sub(1);
    curve.get(idx).map_or(0.0, |c| c.coverage_percent)
}

/// How a sweep executes (never *what* it computes).
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Worker threads (1 = run inline on the caller's thread).
    pub threads: usize,
    /// Memoize stage artifacts across points.
    pub cache: bool,
    /// Keep every point's full [`SynthesizedDesign`] in the outcome
    /// (memory-heavy; for post-processing passes like sequential ATPG).
    pub keep_designs: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 1,
            cache: true,
            keep_designs: false,
        }
    }
}

/// What [`run_sweep`] returns: the report, plus the synthesized
/// designs (point-indexed) when [`SweepOptions::keep_designs`] asked
/// for them.
pub struct SweepOutcome {
    /// The deterministic per-point report.
    pub report: SweepReport,
    /// One entry per point: `Some` when the point succeeded and
    /// `keep_designs` was set, `None` otherwise.
    pub designs: Vec<Option<SynthesizedDesign>>,
}

struct Evaluated {
    outcome: Result<PointMetrics, String>,
    design: Option<SynthesizedDesign>,
    wall: Duration,
}

/// Runs every point of `spec` and collects a [`SweepReport`] ordered
/// by point index regardless of completion order.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> SweepOutcome {
    let sweep_span = hlstb_trace::span("dse.sweep");
    let t0 = Instant::now();
    let points = spec.points();
    let design_keys: Vec<u64> = spec.designs.iter().map(key::hash_debug).collect();
    let cache = opts.cache.then(ArtifactCache::new);
    let max_patterns = spec.max_patterns();
    let slots: Vec<Mutex<Option<Evaluated>>> = points.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Work stealing via a shared injector: each worker claims the next
    // unclaimed index until the list is drained, so a slow point never
    // stalls the remaining work.
    let worker = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= points.len() {
            break;
        }
        let p = points[i];
        let point_span = hlstb_trace::span("dse.point");
        let t = Instant::now();
        let (outcome, design) = match eval_point(
            spec,
            &design_keys,
            p,
            cache.as_ref(),
            max_patterns,
            opts.keep_designs,
        ) {
            Ok((m, d)) => (Ok(m), d),
            Err(e) => (Err(e), None),
        };
        point_span.end();
        *slots[i].lock().expect("slot lock") = Some(Evaluated {
            outcome,
            design,
            wall: t.elapsed(),
        });
    };
    let threads = opts.threads.max(1).min(points.len().max(1));
    if threads <= 1 {
        worker();
    } else {
        // `&worker` is Copy, so every spawn can share the one closure.
        let worker = &worker;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(worker);
            }
        });
    }
    let mut records = Vec::with_capacity(points.len());
    let mut designs = Vec::with_capacity(points.len());
    let mut cpu = Duration::ZERO;
    for (p, slot) in points.iter().zip(slots) {
        let ev = slot
            .into_inner()
            .expect("slot lock")
            .expect("every point evaluated");
        cpu += ev.wall;
        records.push(PointRecord {
            index: p.index,
            design: spec.designs[p.design].name().to_string(),
            scheduler: spec::scheduler_name(p.scheduler),
            policy: spec::policy_name(p.policy).to_string(),
            strategy: spec::strategy_name(p.strategy),
            width: p.width,
            patterns: p.patterns,
            outcome: ev.outcome,
            wall: ev.wall,
        });
        designs.push(ev.design);
    }
    hlstb_trace::counter("dse.points", records.len() as u64);
    sweep_span.end();
    SweepOutcome {
        report: SweepReport {
            points: records,
            threads,
            cache: cache.map(|c| c.stats()),
            wall: t0.elapsed(),
            cpu,
        },
        designs,
    }
}

/// The flow for one point; stage composition happens in the caller.
fn base_flow(spec: &SweepSpec, design: &Cdfg, p: Point) -> SynthesisFlow {
    SynthesisFlow::new(design.clone())
        .scheduler(p.scheduler)
        .register_policy(p.policy)
        .strategy(p.strategy)
        .width(p.width)
        .reset_controller(spec.reset_controller)
}

type PointOutput = (PointMetrics, Option<SynthesizedDesign>);

fn eval_point(
    spec: &SweepSpec,
    design_keys: &[u64],
    p: Point,
    cache: Option<&ArtifactCache>,
    max_patterns: usize,
    keep: bool,
) -> Result<PointOutput, String> {
    match cache {
        Some(c) => eval_cached(spec, design_keys, p, c, max_patterns, keep),
        None => eval_direct(spec, p, keep),
    }
}

/// The memoized pipeline. Stage keys, in dependency order:
///
/// * front end — design content + scheduler + policy (the integrated
///   loop-avoidance strategy replaces the scheduler/policy pair, so it
///   keys on the design + a marker instead);
/// * S-graph facts — same key as the front end (strategy-independent);
/// * DFT output — front-end key + strategy;
/// * netlist — *content* of the marked data path + width (+ reset
///   flag), so every strategy that leaves identical marks (all four
///   no-scan strategies: none, both BISTs, k-level points) shares one
///   expansion;
/// * grading run — the netlist key; evaluated once at the sweep's
///   deepest budget, read as a prefix for shallower ones.
fn eval_cached(
    spec: &SweepSpec,
    design_keys: &[u64],
    p: Point,
    cache: &ArtifactCache,
    max_patterns: usize,
    keep: bool,
) -> Result<PointOutput, String> {
    let design = &spec.designs[p.design];
    let flow = base_flow(spec, design, p);
    let front_key = if p.strategy == DftStrategy::SimultaneousLoopAvoidance {
        key::combine(&[design_keys[p.design], key::hash_debug("simsched")])
    } else {
        key::combine(&[
            design_keys[p.design],
            key::hash_debug(&p.scheduler),
            key::hash_debug(&p.policy),
        ])
    };
    let fe = cache
        .front
        .get_or_try(front_key, || flow.front_end().map_err(|e| e.to_string()))?;
    let facts = cache.facts.get_or_try(front_key, || {
        Ok::<_, String>(SynthesisFlow::sgraph_facts(&fe.datapath))
    })?;
    let dft_key = key::combine(&[front_key, key::hash_debug(&p.strategy)]);
    let dft = cache.dft.get_or_try(dft_key, || {
        let mut fe = (*fe).clone();
        let plans = flow.apply_dft(&mut fe);
        Ok::<_, String>(DftOutput {
            datapath: fe.datapath,
            plans,
        })
    })?;
    let nl_key = key::combine(&[
        key::hash_debug(&dft.datapath),
        u64::from(p.width),
        u64::from(spec.reset_controller),
    ]);
    let expanded = cache.netlist.get_or_try(nl_key, || {
        flow.expand_netlist(&dft.datapath)
            .map_err(|e| e.to_string())
    })?;
    let coverage_percent = if p.patterns > 0 {
        let run = cache.grading.get_or_try(nl_key, || {
            let faults = collapsed_faults(&expanded.netlist);
            let mut rng = StdRng::seed_from_u64(SWEEP_SEED);
            Ok::<_, String>(
                random_pattern_run_opts(
                    &expanded.netlist,
                    &faults,
                    max_patterns,
                    &mut rng,
                    &ParallelOptions::default(),
                )
                .0,
            )
        })?;
        Some(coverage_at(&run.curve, p.patterns))
    } else {
        None
    };
    let report = flow.build_report(&dft.datapath, &expanded, dft.plans.bist.as_ref(), &facts);
    let design_out = keep.then(|| SynthesizedDesign {
        cdfg: design.clone(),
        schedule: fe.schedule.clone(),
        binding: fe.binding.clone(),
        datapath: dft.datapath.clone(),
        expanded: (*expanded).clone(),
        report: report.clone(),
        bist_plan: dft.plans.bist.clone(),
        kcontrol_plan: dft.plans.kcontrol.clone(),
    });
    Ok((
        PointMetrics {
            report,
            coverage_percent,
        },
        design_out,
    ))
}

/// The uncached pipeline — the same stages, computed from scratch.
/// Grading runs at the point's own budget; [`coverage_at`] reads both
/// this curve and the cached deep curve identically (prefix property).
fn eval_direct(spec: &SweepSpec, p: Point, keep: bool) -> Result<PointOutput, String> {
    let design = &spec.designs[p.design];
    let flow = base_flow(spec, design, p);
    let mut fe = flow.front_end().map_err(|e| e.to_string())?;
    let plans = flow.apply_dft(&mut fe);
    let facts = SynthesisFlow::sgraph_facts(&fe.datapath);
    let expanded = flow
        .expand_netlist(&fe.datapath)
        .map_err(|e| e.to_string())?;
    let coverage_percent = if p.patterns > 0 {
        let faults = collapsed_faults(&expanded.netlist);
        let mut rng = StdRng::seed_from_u64(SWEEP_SEED);
        let (run, _) = random_pattern_run_opts(
            &expanded.netlist,
            &faults,
            p.patterns,
            &mut rng,
            &ParallelOptions::default(),
        );
        Some(coverage_at(&run.curve, p.patterns))
    } else {
        None
    };
    let report = flow.build_report(&fe.datapath, &expanded, plans.bist.as_ref(), &facts);
    let design_out = keep.then(|| SynthesizedDesign {
        cdfg: design.clone(),
        schedule: fe.schedule.clone(),
        binding: fe.binding.clone(),
        datapath: fe.datapath.clone(),
        expanded: expanded.clone(),
        report: report.clone(),
        bist_plan: plans.bist.clone(),
        kcontrol_plan: plans.kcontrol.clone(),
    });
    Ok((
        PointMetrics {
            report,
            coverage_percent,
        },
        design_out,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlstb::cdfg::benchmarks;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
        spec.strategies = vec![
            DftStrategy::None,
            DftStrategy::FullScan,
            DftStrategy::BistShared,
        ];
        spec.patterns = vec![64, 128];
        spec
    }

    #[test]
    fn coverage_at_reads_prefixes_and_clamps() {
        let curve = vec![
            CoveragePoint {
                patterns: 64,
                coverage_percent: 40.0,
            },
            CoveragePoint {
                patterns: 128,
                coverage_percent: 70.0,
            },
            CoveragePoint {
                patterns: 192,
                coverage_percent: 100.0,
            },
        ];
        assert_eq!(coverage_at(&curve, 0), 40.0);
        assert_eq!(coverage_at(&curve, 64), 40.0);
        assert_eq!(coverage_at(&curve, 100), 70.0);
        assert_eq!(coverage_at(&curve, 128), 70.0);
        assert_eq!(coverage_at(&curve, 192), 100.0);
        // Budgets past saturation clamp to the final point.
        assert_eq!(coverage_at(&curve, 10_000), 100.0);
        assert_eq!(coverage_at(&[], 64), 0.0);
    }

    #[test]
    fn cache_hits_never_change_a_points_report() {
        let spec = tiny_spec();
        let cached = run_sweep(
            &spec,
            &SweepOptions {
                cache: true,
                ..SweepOptions::default()
            },
        );
        let direct = run_sweep(
            &spec,
            &SweepOptions {
                cache: false,
                ..SweepOptions::default()
            },
        );
        let stats = cached.report.cache.expect("cache enabled");
        assert!(stats.hits() > 0, "{stats:?}");
        assert!(direct.report.cache.is_none());
        assert_eq!(
            cached.report.canonical_json(),
            direct.report.canonical_json()
        );
    }

    #[test]
    fn threaded_sweep_is_byte_identical_to_serial() {
        let spec = tiny_spec();
        let serial = run_sweep(
            &spec,
            &SweepOptions {
                threads: 1,
                cache: false,
                keep_designs: false,
            },
        );
        let threaded = run_sweep(
            &spec,
            &SweepOptions {
                threads: 4,
                cache: true,
                keep_designs: false,
            },
        );
        assert_eq!(
            serial.report.canonical_json(),
            threaded.report.canonical_json()
        );
        assert!(threaded.report.threads > 1);
    }

    #[test]
    fn sweep_coverage_matches_a_standalone_graded_flow() {
        // The cached prefix read must agree with SynthesisFlow's own
        // grading (same seed, same engine) at the same budget.
        let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
        spec.strategies = vec![DftStrategy::FullScan];
        spec.patterns = vec![128, 256];
        let out = run_sweep(&spec, &SweepOptions::default());
        let standalone = SynthesisFlow::new(benchmarks::figure1())
            .strategy(DftStrategy::FullScan)
            .grade_random(128)
            .run()
            .unwrap();
        let got = out.report.points[0]
            .outcome
            .as_ref()
            .unwrap()
            .coverage_percent
            .unwrap();
        assert_eq!(
            got,
            standalone.report.grading.as_ref().unwrap().coverage_percent
        );
    }

    #[test]
    fn keep_designs_returns_point_indexed_designs() {
        let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
        spec.strategies = vec![DftStrategy::None, DftStrategy::FullScan];
        let out = run_sweep(
            &spec,
            &SweepOptions {
                keep_designs: true,
                ..SweepOptions::default()
            },
        );
        assert_eq!(out.designs.len(), 2);
        let none = out.designs[0].as_ref().expect("kept");
        let full = out.designs[1].as_ref().expect("kept");
        assert_eq!(none.report.scan_registers, 0);
        assert_eq!(full.report.scan_registers, full.report.registers);
        // Dropping the request drops the payloads.
        let without = run_sweep(&spec, &SweepOptions::default());
        assert!(without.designs.iter().all(Option::is_none));
    }

    #[test]
    fn no_scan_strategies_share_one_netlist_and_grading_run() {
        let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
        spec.strategies = vec![
            DftStrategy::None,
            DftStrategy::BistNaive,
            DftStrategy::BistShared,
            DftStrategy::KLevelTestPoints(2),
        ];
        spec.patterns = vec![128];
        let out = run_sweep(&spec, &SweepOptions::default());
        let stats = out.report.cache.unwrap();
        // One expansion and one grading run serve all four strategies.
        assert_eq!(stats.netlist.misses, 1, "{stats:?}");
        assert_eq!(stats.netlist.hits, 3, "{stats:?}");
        assert_eq!(stats.grading.misses, 1, "{stats:?}");
        assert_eq!(stats.grading.hits, 3, "{stats:?}");
        // ... and one front end serves everything.
        assert_eq!(stats.front.misses, 1, "{stats:?}");
    }
}
