//! Sweep specification: the axes of a design-space exploration and the
//! name/parse vocabulary the CLI shares with it.

use hlstb::cdfg::{benchmarks, Cdfg};
use hlstb::flow::{DftStrategy, RegisterPolicy, Scheduler};

/// The survey's full DFT-strategy catalogue, in report order.
pub fn strategy_catalogue() -> Vec<DftStrategy> {
    vec![
        DftStrategy::None,
        DftStrategy::FullScan,
        DftStrategy::GateLevelPartialScan,
        DftStrategy::BehavioralPartialScan,
        DftStrategy::SimultaneousLoopAvoidance,
        DftStrategy::BistNaive,
        DftStrategy::BistShared,
        DftStrategy::KLevelTestPoints(1),
        DftStrategy::KLevelTestPoints(2),
        DftStrategy::KLevelTestPoints(3),
        DftStrategy::KLevelTestPoints(4),
    ]
}

/// Parses a strategy name (the CLI `--strategy` vocabulary).
pub fn parse_strategy(s: &str) -> Option<DftStrategy> {
    Some(match s {
        "none" => DftStrategy::None,
        "full-scan" => DftStrategy::FullScan,
        "gate-partial-scan" => DftStrategy::GateLevelPartialScan,
        "behavioral-partial-scan" => DftStrategy::BehavioralPartialScan,
        "loop-avoidance" => DftStrategy::SimultaneousLoopAvoidance,
        "bist-naive" => DftStrategy::BistNaive,
        "bist-shared" => DftStrategy::BistShared,
        _ => {
            let k = s.strip_prefix("k-level=")?;
            DftStrategy::KLevelTestPoints(k.parse().ok()?)
        }
    })
}

/// The parseable name of a strategy ([`parse_strategy`]'s inverse).
pub fn strategy_name(s: DftStrategy) -> String {
    match s {
        DftStrategy::None => "none".into(),
        DftStrategy::FullScan => "full-scan".into(),
        DftStrategy::GateLevelPartialScan => "gate-partial-scan".into(),
        DftStrategy::BehavioralPartialScan => "behavioral-partial-scan".into(),
        DftStrategy::SimultaneousLoopAvoidance => "loop-avoidance".into(),
        DftStrategy::BistNaive => "bist-naive".into(),
        DftStrategy::BistShared => "bist-shared".into(),
        DftStrategy::KLevelTestPoints(k) => format!("k-level={k}"),
    }
}

/// Parses a register-policy name (the CLI `--policy` vocabulary).
pub fn parse_policy(s: &str) -> Option<RegisterPolicy> {
    Some(match s {
        "left-edge" => RegisterPolicy::LeftEdge,
        "dsatur" => RegisterPolicy::Dsatur,
        "io-max" => RegisterPolicy::IoMax,
        "boundary" => RegisterPolicy::Boundary,
        "loop-avoiding" => RegisterPolicy::LoopAvoiding,
        "avra" => RegisterPolicy::Avra,
        _ => return None,
    })
}

/// The parseable name of a register policy.
pub fn policy_name(p: RegisterPolicy) -> &'static str {
    match p {
        RegisterPolicy::LeftEdge => "left-edge",
        RegisterPolicy::Dsatur => "dsatur",
        RegisterPolicy::IoMax => "io-max",
        RegisterPolicy::Boundary => "boundary",
        RegisterPolicy::LoopAvoiding => "loop-avoiding",
        RegisterPolicy::Avra => "avra",
    }
}

/// Parses a scheduler name (the CLI `--scheduler` vocabulary).
pub fn parse_scheduler(s: &str) -> Option<Scheduler> {
    Some(match s {
        "list" => Scheduler::List,
        "io-aware" => Scheduler::IoAware,
        "asap" => Scheduler::Asap,
        _ => {
            let extra = s.strip_prefix("force-directed=")?;
            Scheduler::ForceDirected(extra.parse().ok()?)
        }
    })
}

/// The parseable name of a scheduler.
pub fn scheduler_name(s: Scheduler) -> String {
    match s {
        Scheduler::List => "list".into(),
        Scheduler::IoAware => "io-aware".into(),
        Scheduler::Asap => "asap".into(),
        Scheduler::ForceDirected(extra) => format!("force-directed={extra}"),
    }
}

/// One synthesis point of a sweep: a full flow configuration plus the
/// pseudorandom grading budget (0 = no grading).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Position in [`SweepSpec::points`] order — the report slot.
    pub index: usize,
    /// Index into [`SweepSpec::designs`].
    pub design: usize,
    /// Scheduler axis value.
    pub scheduler: Scheduler,
    /// Register-policy axis value.
    pub policy: RegisterPolicy,
    /// DFT-strategy axis value.
    pub strategy: DftStrategy,
    /// Data-path width in bits.
    pub width: u32,
    /// Pseudorandom patterns to grade with; 0 skips grading.
    pub patterns: usize,
}

/// The axes of a sweep. [`points`](Self::points) enumerates the full
/// cross product in a fixed, documented order (design-major, patterns
/// innermost), which is the order every [`crate::report::SweepReport`]
/// is emitted in — the foundation of the parallel/serial bit-identity
/// guarantee.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// The behaviors to synthesize.
    pub designs: Vec<Cdfg>,
    /// Scheduler axis.
    pub schedulers: Vec<Scheduler>,
    /// Register-policy axis.
    pub policies: Vec<RegisterPolicy>,
    /// DFT-strategy axis.
    pub strategies: Vec<DftStrategy>,
    /// Width axis, in bits.
    pub widths: Vec<u32>,
    /// Grading-budget axis, in pseudorandom patterns (0 = ungraded).
    pub patterns: Vec<usize>,
    /// Expand every point's controller with a synchronous reset (needed
    /// for non-scan sequential ATPG on the results). Not an axis.
    pub reset_controller: bool,
}

impl SweepSpec {
    /// A spec over the given designs with the survey's full strategy
    /// catalogue and single default values on every other axis.
    pub fn new(designs: Vec<Cdfg>) -> Self {
        SweepSpec {
            designs,
            schedulers: vec![Scheduler::List],
            policies: vec![RegisterPolicy::LeftEdge],
            strategies: strategy_catalogue(),
            widths: vec![4],
            patterns: vec![0],
            reset_controller: false,
        }
    }

    /// [`Self::new`] over all benchmark designs.
    pub fn all_benchmarks() -> Self {
        SweepSpec::new(benchmarks::all())
    }

    /// The full cross product, design-major with patterns innermost:
    /// `design → scheduler → policy → strategy → width → patterns`.
    /// Consecutive indices therefore share as many stage artifacts as
    /// possible — every grading budget of a netlist is adjacent, every
    /// strategy of a front end is close.
    pub fn points(&self) -> Vec<Point> {
        let mut out = Vec::new();
        for design in 0..self.designs.len() {
            for &scheduler in &self.schedulers {
                for &policy in &self.policies {
                    for &strategy in &self.strategies {
                        for &width in &self.widths {
                            for &patterns in &self.patterns {
                                out.push(Point {
                                    index: out.len(),
                                    design,
                                    scheduler,
                                    policy,
                                    strategy,
                                    width,
                                    patterns,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// The deepest grading budget of any point — the depth the cached
    /// grading run is computed at, so every shallower budget is a
    /// prefix read.
    pub fn max_patterns(&self) -> usize {
        self.patterns.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in strategy_catalogue() {
            assert_eq!(parse_strategy(&strategy_name(s)), Some(s));
        }
        for p in [
            RegisterPolicy::LeftEdge,
            RegisterPolicy::Dsatur,
            RegisterPolicy::IoMax,
            RegisterPolicy::Boundary,
            RegisterPolicy::LoopAvoiding,
            RegisterPolicy::Avra,
        ] {
            assert_eq!(parse_policy(policy_name(p)), Some(p));
        }
        for s in [
            Scheduler::List,
            Scheduler::IoAware,
            Scheduler::Asap,
            Scheduler::ForceDirected(2),
        ] {
            assert_eq!(parse_scheduler(&scheduler_name(s)), Some(s));
        }
        assert_eq!(parse_strategy("bogus"), None);
        assert_eq!(parse_policy("bogus"), None);
        assert_eq!(parse_scheduler("bogus"), None);
    }

    #[test]
    fn points_enumerate_the_cross_product_in_order() {
        let mut spec = SweepSpec::all_benchmarks();
        spec.widths = vec![4, 8];
        spec.patterns = vec![0, 128];
        let pts = spec.points();
        assert_eq!(
            pts.len(),
            spec.designs.len() * spec.strategies.len() * 2 * 2
        );
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // Design-major: the first block is all design 0.
        let per_design = spec.strategies.len() * 2 * 2;
        assert!(pts[..per_design].iter().all(|p| p.design == 0));
        assert_eq!(pts[per_design].design, 1);
        // Patterns innermost: consecutive points differ only in budget.
        assert_eq!(pts[0].patterns, 0);
        assert_eq!(pts[1].patterns, 128);
        assert_eq!(pts[0].strategy, pts[1].strategy);
        assert_eq!(spec.max_patterns(), 128);
    }
}
