//! Scale-out sweep execution: a coordinator sharding the point list
//! over worker processes (or threads) speaking the [`crate::proto`]
//! wire protocol.
//!
//! # Topology
//!
//! The coordinator spawns N workers through a caller-supplied
//! transport factory. Each worker gets a `hello` (spec by name + hash,
//! options, fail plan), answers `ready`, and then pulls **leases** —
//! contiguous point-index ranges carved from the spec's enumeration
//! order. Work-stealing happens at the lease queue: a fast worker that
//! finishes its range simply pulls the next one, so a slow point never
//! idles the fleet (the same injector discipline as the in-process
//! pool, at range granularity to amortize framing).
//!
//! Two transports ship in-tree:
//!
//! * [`process_spawner`] — `hlstb sweep-worker` child processes over
//!   stdin/stdout pipe pairs (what `hlstb sweep --workers N` uses);
//! * [`thread_spawner`] — in-process worker threads over loopback
//!   byte pipes, used by the determinism tests and benchmarks.
//!
//! Both hand the coordinator a [`WorkerLink`] — a pair of anonymous
//! ordered byte streams — which is the entire transport contract; a
//! TCP socket satisfies it verbatim.
//!
//! # Byte-identical splice
//!
//! Workers evaluate points through the same [`PointRunner`] the
//! in-process pool uses and stream each completed point back in
//! checkpoint-record form (canonical JSON verbatim, keyed by content
//! key). The coordinator validates the key against its own
//! [`point_key`] table and splices the embedded bytes into the report
//! unchanged — so `--workers N` output is byte-identical to a serial
//! uncached run for the same reason checkpoint resume is.
//!
//! # Failure handling
//!
//! A worker that dies (EOF, kill, torn frame, key mismatch, version
//! skew) surfaces as a typed [`PointError::Io`]-family verdict on its
//! stream; the coordinator marks the lane dead, re-enqueues every
//! leased-but-unreceived index, and the surviving workers absorb the
//! re-issued ranges. If every lane dies, the coordinator evaluates the
//! remainder inline — the sweep completes (byte-identically) as long
//! as the coordinator itself lives.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::checkpoint::{self, Checkpoint, RestoredSet};
use crate::engine::{point_key, PointRunner, ProgressMeter, Recovery, SweepOptions, SweepOutcome};
use crate::error::PointError;
use crate::key;
use crate::proto::{self, FromWorker, ToWorker};
use crate::report::{PointRecord, SweepReport};
use crate::spec::SweepSpec;

fn io_err(what: impl std::fmt::Display) -> PointError {
    PointError::Io {
        message: format!("worker: {what}"),
    }
}

/// Deterministic worker-death injection (the process analogue of
/// [`crate::FailPlan`]): the matching worker emits `after` points,
/// then writes a torn partial frame and dies — exercising the
/// coordinator's corrupt-frame detection and lease re-issue for real.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFail {
    /// The worker lane id that dies.
    pub worker: u32,
    /// Points the worker emits successfully before dying.
    pub after: usize,
}

impl WorkerFail {
    /// The environment variable the CLI reads:
    /// `HLSTB_WORKER_FAIL="<worker>:<after>"`.
    pub const ENV: &'static str = "HLSTB_WORKER_FAIL";

    /// Parses `"<worker>:<after>"`.
    pub fn parse(s: &str) -> Option<WorkerFail> {
        let (w, a) = s.split_once(':')?;
        Some(WorkerFail {
            worker: w.trim().parse().ok()?,
            after: a.trim().parse().ok()?,
        })
    }

    /// Reads [`ENV`](Self::ENV); `None` when unset or malformed.
    pub fn from_env() -> Option<WorkerFail> {
        std::env::var(Self::ENV).ok().and_then(|s| Self::parse(&s))
    }
}

// ---------------------------------------------------------------------------
// Loopback byte pipe (the in-process transport).

#[derive(Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

type PipeShared = Arc<(Mutex<PipeState>, Condvar)>;

/// The write half of a loopback pipe. Dropping it closes the pipe
/// (readers see EOF), mirroring a process's stdout going away.
pub struct PipeWriter(PipeShared);

/// The read half of a loopback pipe. Dropping it makes further writes
/// fail with `BrokenPipe`, mirroring a dead peer.
pub struct PipeReader(PipeShared);

/// An anonymous in-memory byte pipe: ordered, blocking reads, EOF on
/// writer drop. The loopback stand-in for a process pipe or socket.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let shared: PipeShared = Arc::new((Mutex::new(PipeState::default()), Condvar::new()));
    (PipeWriter(Arc::clone(&shared)), PipeReader(shared))
}

fn pipe_lock(shared: &PipeShared) -> std::sync::MutexGuard<'_, PipeState> {
    shared.0.lock().unwrap_or_else(|e| e.into_inner())
}

impl Write for PipeWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let mut st = pipe_lock(&self.0);
        if st.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "loopback peer closed",
            ));
        }
        st.buf.extend(data);
        self.0 .1.notify_all();
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        pipe_lock(&self.0).closed = true;
        self.0 .1.notify_all();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let mut st = pipe_lock(&self.0);
        loop {
            // Drain strictly from what the buffer holds *now*: a
            // writer that closed between the wakeup and this check
            // must surface as EOF (n == 0), never as fabricated
            // bytes, so re-test emptiness on every wakeup.
            if !st.buf.is_empty() {
                let n = st.buf.len().min(out.len());
                for (slot, byte) in out.iter_mut().zip(st.buf.drain(..n)) {
                    *slot = byte;
                }
                return Ok(n);
            }
            if st.closed {
                return Ok(0);
            }
            st = self.0 .1.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        pipe_lock(&self.0).closed = true;
        self.0 .1.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Transport links and factories.

/// One worker's transport as the coordinator sees it: a byte sink
/// toward the worker, a byte source from it, and (for process
/// transports) the child handle for kill/reap.
pub struct WorkerLink {
    /// Coordinator → worker stream.
    pub to: Box<dyn Write + Send>,
    /// Worker → coordinator stream.
    pub from: Box<dyn BufRead + Send>,
    /// The child process, when the transport is a process pipe.
    pub child: Option<std::process::Child>,
    /// The raw socket, when the transport is TCP: kept so an abandoned
    /// lane can be hard-shut (both directions), which is what tells a
    /// still-alive worker on the far end to give up or redial.
    pub sock: Option<std::net::TcpStream>,
}

/// A transport factory: called once per worker lane id.
pub type SpawnFn<'a> = dyn FnMut(u32) -> Result<WorkerLink, PointError> + 'a;

/// A [`WorkerLink`] factory running [`worker_loop`] on an in-process
/// thread over loopback pipes — the protocol-exercising transport the
/// determinism tests and benchmarks use (no processes, same frames).
/// `fail` injects a worker death exactly as [`WorkerFail::from_env`]
/// would in a real worker process.
pub fn thread_spawner(
    fail: Option<WorkerFail>,
) -> impl FnMut(u32) -> Result<WorkerLink, PointError> {
    move |_w| {
        let (coord_to_worker, worker_input) = pipe();
        let (worker_output, coord_from_worker) = pipe();
        std::thread::spawn(move || {
            // A worker death (injected or real) is reported on the
            // coordinator's stream; the thread itself just ends.
            let _ = worker_loop(BufReader::new(worker_input), worker_output, fail);
        });
        Ok(WorkerLink {
            to: Box::new(coord_to_worker),
            from: Box::new(BufReader::new(coord_from_worker)),
            child: None,
            sock: None,
        })
    }
}

/// A [`WorkerLink`] factory spawning `exe worker_arg` child processes
/// with piped stdin/stdout (stderr inherited, environment inherited).
pub fn process_spawner(
    exe: std::path::PathBuf,
    worker_arg: &'static str,
) -> impl FnMut(u32) -> Result<WorkerLink, PointError> {
    move |w| {
        let mut child = std::process::Command::new(&exe)
            .arg(worker_arg)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| io_err(format!("spawn worker {w} ({}): {e}", exe.display())))?;
        let to = child
            .stdin
            .take()
            .ok_or_else(|| io_err("worker child has no stdin"))?;
        let from = child
            .stdout
            .take()
            .ok_or_else(|| io_err("worker child has no stdout"))?;
        Ok(WorkerLink {
            to: Box::new(to),
            from: Box::new(BufReader::new(from)),
            child: Some(child),
            sock: None,
        })
    }
}

/// Wraps one accepted TCP connection as a coordinator-side lane: the
/// two stream halves are clones of the same socket, and the socket
/// itself rides along for hard shutdown on lane abandonment.
fn tcp_link(sock: std::net::TcpStream) -> Result<WorkerLink, PointError> {
    let _ = sock.set_nodelay(true);
    let clone = |what| {
        sock.try_clone()
            .map_err(|e| io_err(format!("clone accepted socket ({what}): {e}")))
    };
    Ok(WorkerLink {
        to: Box::new(clone("write half")?),
        from: Box::new(BufReader::new(clone("read half")?)),
        child: None,
        sock: Some(sock),
    })
}

// ---------------------------------------------------------------------------
// The worker side.

fn write_frame(out: &mut dyn Write, frame: &str) -> Result<(), PointError> {
    let mut line = String::with_capacity(frame.len() + 1);
    line.push_str(frame);
    line.push('\n');
    out.write_all(line.as_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| io_err(format!("write frame: {e}")))
}

/// How a worker session ended without an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The coordinator sent `shutdown`: the sweep is over.
    Shutdown,
    /// The stream ended without a shutdown frame — the coordinator
    /// vanished or dropped the connection. A connect-mode worker
    /// answers this by redialing; a pipe-mode worker just exits.
    Eof,
}

/// The worker half of the protocol, generic over the transport's byte
/// streams (process stdio, loopback pipes, a socket): handshake, then
/// evaluate leases point by point through a [`PointRunner`] — the same
/// evaluator the in-process pool uses — streaming each result back as
/// a checkpoint-format frame, until `shutdown` or input EOF.
///
/// # Errors
///
/// [`PointError::Io`] on a malformed coordinator frame or a dead
/// output stream; [`PointError::Panic`] on an injected [`WorkerFail`]
/// death. Either way the error is for the *caller's* exit code — the
/// coordinator learns of it from the stream going quiet or torn.
pub fn worker_loop(
    input: impl BufRead,
    output: impl Write,
    fail: Option<WorkerFail>,
) -> Result<SessionEnd, PointError> {
    worker_session(input, output, fail, &mut false)
}

/// [`worker_loop`] plus a handshake flag for the connect-mode redial
/// policy: `handshaken` is set once the hello was accepted and `ready`
/// went out, so the caller can tell a broken session (redial) from a
/// rejected handshake (fatal — a version-skewed or garbage coordinator
/// will not improve on the next dial).
fn worker_session(
    mut input: impl BufRead,
    mut output: impl Write,
    fail: Option<WorkerFail>,
    handshaken: &mut bool,
) -> Result<SessionEnd, PointError> {
    let mut line = String::new();
    let read_line = |input: &mut dyn BufRead, line: &mut String| -> Result<bool, PointError> {
        line.clear();
        let n = input
            .read_line(line)
            .map_err(|e| io_err(format!("read frame: {e}")))?;
        Ok(n > 0)
    };
    if !read_line(&mut input, &mut line)? {
        return Ok(SessionEnd::Eof); // coordinator vanished before hello
    }
    let hello = match proto::decode_to_worker(&line) {
        Ok(ToWorker::Hello(h)) => *h,
        Ok(_) => {
            let e = io_err("expected hello as the first frame");
            let _ = write_frame(&mut output, &proto::encode_error(e.message()));
            return Err(e);
        }
        Err(e) => {
            // Best-effort rejection report (version skew, unresolvable
            // spec) so the coordinator logs *why* before the lane dies.
            let _ = write_frame(&mut output, &proto::encode_error(e.message()));
            return Err(e);
        }
    };
    hlstb_trace::events::set_worker(hello.worker);
    let death = fail.filter(|f| f.worker == hello.worker).map(|f| f.after);
    let runner = PointRunner::new(&hello.spec, &hello.opts, hello.fail_plan.clone());
    write_frame(
        &mut output,
        &proto::encode_ready(hello.worker, runner.len()),
    )?;
    *handshaken = true;
    let mut emitted = 0usize;
    loop {
        if !read_line(&mut input, &mut line)? {
            return Ok(SessionEnd::Eof); // coordinator closed the stream
        }
        match proto::decode_to_worker(&line)? {
            ToWorker::Hello(_) => return Err(io_err("unexpected second hello")),
            ToWorker::Shutdown => return Ok(SessionEnd::Shutdown),
            ToWorker::Lease { start, end } => {
                if start > end || end > runner.len() {
                    write_frame(
                        &mut output,
                        &proto::encode_error(&format!(
                            "lease [{start}, {end}) out of range (points: {})",
                            runner.len()
                        )),
                    )?;
                    return Err(io_err("lease out of range"));
                }
                for i in start..end {
                    runner.scheduled(i);
                    let (record, _) = runner.eval(i);
                    let frame =
                        proto::encode_point(runner.key(i), i, &record.canonical_point_json());
                    if death == Some(emitted) {
                        // Die mid-record: write a torn prefix (no
                        // newline), flush, and stop — what a kill -9
                        // between write and newline looks like.
                        let torn = &frame[..frame.len() * 2 / 3];
                        let _ = output.write_all(torn.as_bytes());
                        let _ = output.flush();
                        return Err(PointError::Panic {
                            message: format!(
                                "injected worker {} death after {emitted} points",
                                hello.worker
                            ),
                        });
                    }
                    write_frame(&mut output, &frame)?;
                    emitted += 1;
                }
                let stats = proto::DoneStats {
                    points: emitted as u64,
                    retries: runner.retries(),
                    cache: runner.cache().map(crate::cache::ArtifactCache::stats),
                };
                write_frame(&mut output, &proto::encode_done(start, end, &stats))?;
            }
        }
    }
}

/// The entry point behind a `sweep-worker` argv subcommand: speak the
/// protocol over real stdin/stdout, honoring [`WorkerFail::ENV`].
/// Returns the process exit code (0 clean, 3 on a protocol error or
/// injected death).
pub fn worker_main() -> i32 {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    match worker_loop(stdin.lock(), stdout.lock(), WorkerFail::from_env()) {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("sweep-worker: {}: {}", e.kind(), e.message());
            3
        }
    }
}

/// Capped exponential redial delay for [`worker_connect`].
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis((50u64 << attempt.min(4)).min(500))
}

/// Dials `addr` and serves sweep sessions until the coordinator sends
/// `shutdown`. The connection attempt and any post-handshake stream
/// drop redial with bounded exponential backoff (a sweep coordinator
/// that is still listening treats the new connection as a fresh lane
/// and re-issues whatever the dead lane had leased — results already
/// streamed are kept, so nothing completed is recomputed). Fatal
/// conditions never redial: a rejected handshake (version skew,
/// unknown designs) or an injected [`WorkerFail`] death, which
/// simulates a real process kill.
///
/// # Errors
///
/// [`PointError::Io`] once `MAX_DIALS` consecutive dial failures
/// accumulate (the counter resets on every completed handshake), or
/// the fatal conditions above.
pub fn worker_connect(addr: &str, fail: Option<WorkerFail>) -> Result<(), PointError> {
    /// Consecutive failed dial/handshake attempts before giving up.
    const MAX_DIALS: u32 = 6;
    let mut failures = 0u32;
    loop {
        let sock = match std::net::TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => {
                failures += 1;
                if failures >= MAX_DIALS {
                    return Err(io_err(format!(
                        "connect {addr}: {e} (gave up after {failures} attempts)"
                    )));
                }
                std::thread::sleep(backoff(failures));
                continue;
            }
        };
        let _ = sock.set_nodelay(true);
        let reader = sock
            .try_clone()
            .map_err(|e| io_err(format!("clone socket: {e}")))?;
        let mut handshaken = false;
        let result = worker_session(BufReader::new(reader), &sock, fail, &mut handshaken);
        if handshaken {
            failures = 0;
        }
        match result {
            Ok(SessionEnd::Shutdown) => return Ok(()),
            Ok(SessionEnd::Eof) => {
                eprintln!("sweep-worker: {addr} closed without shutdown; redialing");
            }
            Err(e) if handshaken && e.kind() == "io" => {
                eprintln!("sweep-worker: session error: {}; redialing", e.message());
            }
            Err(e) => return Err(e),
        }
        failures += 1;
        if failures >= MAX_DIALS {
            return Err(io_err(format!(
                "gave up on {addr} after {failures} consecutive broken sessions"
            )));
        }
        std::thread::sleep(backoff(failures));
    }
}

/// The entry point behind `sweep-worker --connect <addr>`: like
/// [`worker_main`] but over a dialed TCP stream with redial. Returns
/// the process exit code (0 clean, 3 on error or injected death).
pub fn worker_connect_main(addr: &str) -> i32 {
    match worker_connect(addr, WorkerFail::from_env()) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("sweep-worker: {}: {}", e.kind(), e.message());
            3
        }
    }
}

// ---------------------------------------------------------------------------
// The coordinator side.

enum LaneEvent {
    Frame(FromWorker),
    Corrupt(PointError),
    Eof,
}

/// Everything the coordinator's event loop can be woken by: a frame
/// (or death) on an existing lane, or — in listen mode — a newly
/// accepted connection to attach as a fresh lane.
enum CoordEvent {
    Lane(usize, LaneEvent),
    Link(Box<WorkerLink>),
}

struct Lane {
    to: Option<Box<dyn Write + Send>>,
    child: Option<std::process::Child>,
    sock: Option<std::net::TcpStream>,
    /// Leased indices not yet received back.
    outstanding: Vec<usize>,
    live: bool,
    ready: bool,
    /// Latest cumulative session counters from the lane's `done`
    /// frames (fleet aggregation sums these at sweep end).
    stats: proto::DoneStats,
    /// The lane's reader thread has signed off (sent `Eof` or
    /// `Corrupt`); the wind-down drain waits on this so the final
    /// `done` frame of every lane is counted.
    reader_done: bool,
    /// When the lane was attached — the listen-mode handshake deadline
    /// measures `hello` completion from here.
    attached_at: Instant,
}

impl Lane {
    fn dead() -> Lane {
        Lane {
            to: None,
            child: None,
            sock: None,
            outstanding: Vec::new(),
            live: false,
            ready: false,
            stats: proto::DoneStats::default(),
            reader_done: true,
            attached_at: Instant::now(),
        }
    }
}

/// Where the coordinator's lanes come from: a fixed set built up front
/// by a transport factory (processes, loopback threads), or a TCP
/// listener that keeps accepting workers — including replacements for
/// dead lanes — for as long as work remains.
enum LaneSource<'s, 'f> {
    Fixed {
        workers: usize,
        spawn: &'s mut SpawnFn<'f>,
    },
    Listen {
        listener: std::net::TcpListener,
        hello_timeout: Duration,
    },
}

/// Writes the hello and starts the reader thread for one new lane,
/// whose id is its slot in `lanes` (listen-mode reconnects therefore
/// get fresh ids — a returning worker is indistinguishable from a new
/// one, by design).
fn attach_lane(
    lanes: &mut Vec<Lane>,
    link: WorkerLink,
    hello_for: &dyn Fn(u32) -> String,
    tx: &mpsc::Sender<CoordEvent>,
) {
    let w = lanes.len();
    let mut to = link.to;
    let hello_ok = write_frame(to.as_mut(), &hello_for(w as u32)).is_ok();
    let mut from = link.from;
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut line = String::new();
        loop {
            line.clear();
            match from.read_line(&mut line) {
                Ok(0) => {
                    let _ = tx.send(CoordEvent::Lane(w, LaneEvent::Eof));
                    break;
                }
                Ok(_) if !line.ends_with('\n') => {
                    // A final line with no newline is a peer killed
                    // mid-record.
                    let _ = tx.send(CoordEvent::Lane(
                        w,
                        LaneEvent::Corrupt(io_err("torn frame at stream end")),
                    ));
                    break;
                }
                Ok(_) => match proto::decode_from_worker(&line) {
                    Ok(f) => {
                        if tx.send(CoordEvent::Lane(w, LaneEvent::Frame(f))).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(CoordEvent::Lane(w, LaneEvent::Corrupt(e)));
                        break;
                    }
                },
                Err(e) => {
                    let _ = tx.send(CoordEvent::Lane(
                        w,
                        LaneEvent::Corrupt(io_err(format!("read: {e}"))),
                    ));
                    break;
                }
            }
        }
    });
    lanes.push(Lane {
        to: Some(to),
        child: link.child,
        sock: link.sock,
        outstanding: Vec::new(),
        live: hello_ok,
        ready: false,
        stats: proto::DoneStats::default(),
        reader_done: false,
        attached_at: Instant::now(),
    });
}

/// Splits `indices` (sorted, unique) into contiguous `[start, end)`
/// leases of at most `chunk` points and appends them to the queue.
fn enqueue_leases(queue: &mut VecDeque<(usize, usize)>, indices: &[usize], chunk: usize) {
    let mut i = 0;
    while i < indices.len() {
        let start = indices[i];
        let mut len = 1;
        while i + len < indices.len() && indices[i + len] == start + len && len < chunk {
            len += 1;
        }
        queue.push_back((start, start + len));
        i += len;
    }
}

/// Runs `spec` sharded over `workers` worker lanes built by `spawn`,
/// splicing streamed results byte-identically (see the module docs).
/// `opts.cache`, `opts.point_budget`, and `opts.retries` ship to the
/// workers in the handshake; `opts.threads` is reported in the
/// envelope but each worker evaluates its leases serially — the lane
/// count is the parallelism. Checkpoint/resume and the fail plan in
/// `recovery` work exactly as in [`crate::run_sweep_with`].
///
/// # Errors
///
/// [`PointError::Io`] on checkpoint open/read failures or
/// `keep_designs` (designs cannot cross a process boundary). Worker
/// deaths are *not* errors: their leases are re-issued to surviving
/// lanes, and with no lanes left the coordinator evaluates the
/// remainder inline.
pub fn run_sweep_workers(
    spec: &SweepSpec,
    opts: &SweepOptions,
    recovery: &Recovery,
    workers: usize,
    spawn: &mut SpawnFn<'_>,
) -> Result<SweepOutcome, PointError> {
    coordinate(
        spec,
        opts,
        recovery,
        LaneSource::Fixed {
            workers: workers.max(1),
            spawn,
        },
    )
}

/// Runs `spec` sharded over TCP workers that dial into `listener`
/// (`hlstb sweep --listen` + `hlstb sweep-worker --connect`): every
/// accepted connection becomes a fresh lane, a dropped connection's
/// leases are re-issued, and the coordinator keeps accepting
/// replacement workers until the sweep completes — a worker killed
/// mid-lease plus a redial still splices byte-identically, exactly the
/// fixed-transport dead-worker path. The listener closes when the
/// sweep finishes; stragglers see refused connections and give up on
/// their own bounded redial budget. No authentication: LAN semantics,
/// with the `hello` design content hash as the integrity check.
///
/// # Errors
///
/// As [`run_sweep_workers`], plus listener address failures.
pub fn run_sweep_listen(
    spec: &SweepSpec,
    opts: &SweepOptions,
    recovery: &Recovery,
    listener: std::net::TcpListener,
) -> Result<SweepOutcome, PointError> {
    run_sweep_listen_with_timeout(spec, opts, recovery, listener, DEFAULT_HELLO_TIMEOUT)
}

/// The default listen-mode handshake deadline: generous for a LAN, yet
/// bounded — a silent TCP connect can pin a reader thread for at most
/// this long.
pub const DEFAULT_HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// [`run_sweep_listen`] with an explicit handshake deadline: an
/// accepted connection that has not completed `hello` within
/// `hello_timeout` is dropped (socket shut down, reader released) and
/// counted, so a stuck or hostile dialer cannot wedge the accept path.
pub fn run_sweep_listen_with_timeout(
    spec: &SweepSpec,
    opts: &SweepOptions,
    recovery: &Recovery,
    listener: std::net::TcpListener,
    hello_timeout: Duration,
) -> Result<SweepOutcome, PointError> {
    coordinate(
        spec,
        opts,
        recovery,
        LaneSource::Listen {
            listener,
            hello_timeout,
        },
    )
}

fn coordinate(
    spec: &SweepSpec,
    opts: &SweepOptions,
    recovery: &Recovery,
    source: LaneSource<'_, '_>,
) -> Result<SweepOutcome, PointError> {
    let sweep_span = hlstb_trace::span("dse.sweep");
    let t0 = Instant::now();
    if opts.keep_designs {
        return Err(io_err(
            "scale-out sweeps cannot keep designs (they cannot cross a process boundary)",
        ));
    }
    let expected_workers = match &source {
        LaneSource::Fixed { workers, .. } => *workers,
        LaneSource::Listen { .. } => 0,
    };
    // Fixed-transport lanes handshake over pipes the coordinator just
    // created; only listen-mode lanes face an untrusted network, so
    // only they get a handshake deadline.
    let hello_deadline = match &source {
        LaneSource::Fixed { .. } => None,
        LaneSource::Listen { hello_timeout, .. } => Some(*hello_timeout),
    };
    let points = spec.points();
    let n = points.len();
    let design_keys: Vec<u64> = spec.designs.iter().map(key::hash_debug).collect();
    let point_keys: Vec<u64> = points
        .iter()
        .map(|p| point_key(spec, &design_keys, *p))
        .collect();
    let restored_set = match (&recovery.checkpoint, recovery.resume) {
        (Some(path), true) => Some(RestoredSet::load(path)?),
        (None, true) => {
            return Err(PointError::Io {
                message: "resume requested without a checkpoint path".into(),
            })
        }
        _ => None,
    };
    let writer = match &recovery.checkpoint {
        Some(path) => Some(Checkpoint::open_append(path)?),
        None => None,
    };
    let meter = opts.progress.then(|| ProgressMeter::new(n, t0));
    hlstb_trace::events::emit("sweep.begin", None, |e| {
        e.u64("points", n as u64)
            .volatile_u64("threads", opts.threads as u64)
            .volatile_u64("workers", expected_workers as u64)
            .volatile_bool("cache", opts.cache);
    });

    let mut results: Vec<Option<PointRecord>> = (0..n).map(|_| None).collect();
    let mut restored_count = 0usize;
    let mut checkpoint_errors = 0usize;
    // Dead-lane lease re-issues (transport recovery) — reported
    // separately from `fleet_retries` (per-point transient retries the
    // workers themselves performed, summed from their `done` frames).
    let mut reissued: u64 = 0;
    let mut fleet_retries: u64 = 0;
    let mut fleet_cache = crate::cache::CacheStats::default();
    let mut lanes_seen = expected_workers;
    if let Some(set) = &restored_set {
        for (i, p) in points.iter().enumerate() {
            let hit = set
                .lookup(point_keys[i], p.index)
                .and_then(checkpoint::record_from_canonical);
            if let Some(record) = hit {
                hlstb_trace::events::emit("point.scheduled", Some(p.index as u64), |e| {
                    e.str("design", spec.designs[p.design].name())
                        .str("strategy", &crate::spec::strategy_name(p.strategy));
                });
                hlstb_trace::events::emit("point.restored", Some(p.index as u64), |_| {});
                if let Some(m) = &meter {
                    m.tick(&record, 0, reissued, None);
                }
                results[i] = Some(record);
                restored_count += 1;
            }
        }
    }
    let needed: Vec<usize> = (0..n).filter(|&i| results[i].is_none()).collect();
    let mut remaining = needed.len();

    if remaining > 0 {
        // Listen mode has no fixed lane count; size leases as if a
        // small fleet will dial in (re-issue handles the rest).
        let fanout = if expected_workers > 0 {
            expected_workers
        } else {
            4
        };
        let chunk = (needed.len() / (fanout * 4)).clamp(1, 32);
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        enqueue_leases(&mut queue, &needed, chunk);

        // Build the lanes; each gets a reader thread forwarding
        // decoded frames (or its death) onto one mpsc channel. In
        // listen mode, an accept thread feeds new links into the same
        // channel for as long as the sweep runs.
        let (tx, rx) = mpsc::channel::<CoordEvent>();
        let mut lanes: Vec<Lane> = Vec::new();
        let hello_for = |w: u32| proto::encode_hello(w, spec, opts, recovery.fail_plan.as_ref());
        let wait_for_lanes = matches!(source, LaneSource::Listen { .. });
        let mut accept_stop: Option<(
            Arc<AtomicBool>,
            std::net::SocketAddr,
            std::thread::JoinHandle<()>,
        )> = None;
        match source {
            LaneSource::Fixed { workers, spawn } => {
                for w in 0..workers {
                    match spawn(w as u32) {
                        Ok(link) => attach_lane(&mut lanes, link, &hello_for, &tx),
                        Err(e) => {
                            eprintln!("sweep: spawning worker {w} failed: {}", e.message());
                            lanes.push(Lane::dead());
                        }
                    }
                }
            }
            LaneSource::Listen { listener, .. } => {
                let addr = listener
                    .local_addr()
                    .map_err(|e| io_err(format!("listener address: {e}")))?;
                let stop = Arc::new(AtomicBool::new(false));
                let thread_stop = Arc::clone(&stop);
                let thread_tx = tx.clone();
                let handle = std::thread::spawn(move || loop {
                    match listener.accept() {
                        Ok((sock, _peer)) => {
                            // The wind-down self-connect lands here;
                            // the flag tells it apart from a worker.
                            if thread_stop.load(Ordering::Relaxed) {
                                break;
                            }
                            match tcp_link(sock) {
                                Ok(link) => {
                                    if thread_tx.send(CoordEvent::Link(Box::new(link))).is_err() {
                                        break;
                                    }
                                }
                                Err(e) => {
                                    eprintln!("sweep: accepting worker: {}", e.message());
                                }
                            }
                        }
                        Err(e) => {
                            eprintln!("sweep: listener: {e}");
                            break;
                        }
                    }
                });
                accept_stop = Some((stop, addr, handle));
            }
        }

        // One lane's death: kill/close it, reclaim its leases.
        fn fail_lane(
            lanes: &mut [Lane],
            w: usize,
            why: &str,
            queue: &mut VecDeque<(usize, usize)>,
            chunk: usize,
            reissued: &mut u64,
        ) {
            if !lanes[w].live {
                return;
            }
            lanes[w].live = false;
            lanes[w].to = None;
            if let Some(child) = &mut lanes[w].child {
                let _ = child.kill();
            }
            if let Some(sock) = lanes[w].sock.take() {
                // Hard shutdown both directions: an abandoned-but-
                // alive TCP worker must see its stream die (its next
                // write fails, prompting a redial as a fresh lane)
                // rather than keep streaming into an untrusted lane.
                let _ = sock.shutdown(std::net::Shutdown::Both);
            }
            let pending = std::mem::take(&mut lanes[w].outstanding);
            *reissued += pending.len() as u64;
            eprintln!(
                "sweep: worker {w} died ({why}); re-issuing {} leased points",
                pending.len()
            );
            hlstb_trace::events::emit_volatile("worker.dead", None, |e| {
                e.volatile_u64("worker", w as u64)
                    .volatile_str("why", why)
                    .volatile_u64("reissued", pending.len() as u64);
            });
            enqueue_leases(queue, &pending, chunk);
        }

        // Hand leases to every idle ready lane.
        fn pump(
            lanes: &mut [Lane],
            queue: &mut VecDeque<(usize, usize)>,
            chunk: usize,
            reissued: &mut u64,
        ) {
            loop {
                let mut progressed = false;
                for w in 0..lanes.len() {
                    if !(lanes[w].live && lanes[w].ready && lanes[w].outstanding.is_empty()) {
                        continue;
                    }
                    let Some((start, end)) = queue.pop_front() else {
                        return;
                    };
                    let frame = proto::encode_lease(start, end);
                    let ok = lanes[w]
                        .to
                        .as_mut()
                        .is_some_and(|to| write_frame(to.as_mut(), &frame).is_ok());
                    if ok {
                        lanes[w].outstanding = (start..end).collect();
                        hlstb_trace::events::emit_volatile("worker.lease", None, |e| {
                            e.volatile_u64("worker", w as u64)
                                .volatile_u64("start", start as u64)
                                .volatile_u64("end", end as u64);
                        });
                    } else {
                        queue.push_front((start, end));
                        fail_lane(lanes, w, "lease write failed", queue, chunk, reissued);
                    }
                    progressed = true;
                }
                if !progressed {
                    return;
                }
            }
        }

        let mut hello_timeouts: u64 = 0;
        // Fixed mode ends when the work or the lanes run out; listen
        // mode never gives up on lanes — it waits for (re)connects
        // until the work is done.
        while remaining > 0 && (wait_for_lanes || lanes.iter().any(|l| l.live)) {
            pump(&mut lanes, &mut queue, chunk, &mut reissued);
            if remaining == 0 || !(wait_for_lanes || lanes.iter().any(|l| l.live)) {
                break;
            }
            // While any accepted connection is mid-handshake, poll
            // instead of blocking so a silent dialer is dropped at its
            // deadline rather than pinning the loop (and its reader
            // thread) on a connection that will never speak.
            let mid_handshake =
                hello_deadline.is_some() && lanes.iter().any(|l| l.live && !l.ready);
            let coord_event = if mid_handshake {
                match rx.recv_timeout(Duration::from_millis(25)) {
                    Ok(ev) => Some(ev),
                    Err(mpsc::RecvTimeoutError::Timeout) => None,
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            } else {
                match rx.recv() {
                    Ok(ev) => Some(ev),
                    Err(_) => break,
                }
            };
            if let Some(timeout) = hello_deadline {
                for w in 0..lanes.len() {
                    if lanes[w].live && !lanes[w].ready && lanes[w].attached_at.elapsed() >= timeout
                    {
                        hello_timeouts += 1;
                        hlstb_trace::counter("dse.worker.hello_timeout", 1);
                        fail_lane(
                            &mut lanes,
                            w,
                            "hello timeout",
                            &mut queue,
                            chunk,
                            &mut reissued,
                        );
                    }
                }
            }
            let Some(coord_event) = coord_event else {
                continue;
            };
            let (w, event) = match coord_event {
                CoordEvent::Link(link) => {
                    attach_lane(&mut lanes, *link, &hello_for, &tx);
                    continue;
                }
                CoordEvent::Lane(w, event) => (w, event),
            };
            match event {
                LaneEvent::Frame(FromWorker::Ready {
                    points: worker_points,
                    ..
                }) => {
                    if worker_points == n {
                        lanes[w].ready = true;
                    } else {
                        fail_lane(
                            &mut lanes,
                            w,
                            &format!("resolved {worker_points} points, coordinator has {n}"),
                            &mut queue,
                            chunk,
                            &mut reissued,
                        );
                    }
                }
                LaneEvent::Frame(FromWorker::Point {
                    key,
                    index,
                    canonical,
                }) => {
                    if index >= n || key != point_keys[index] {
                        fail_lane(
                            &mut lanes,
                            w,
                            "point frame key/index mismatch",
                            &mut queue,
                            chunk,
                            &mut reissued,
                        );
                    } else if results[index].is_some() {
                        // Duplicate of an already-spliced point
                        // (re-issue race); drop it.
                        lanes[w].outstanding.retain(|&x| x != index);
                    } else if let Some(record) = checkpoint::record_from_canonical(&canonical) {
                        if let Some(ck) = &writer {
                            if let Err(e) = ck.record(key, index, &canonical) {
                                checkpoint_errors += 1;
                                ck.degrade(&e.to_string());
                            }
                        }
                        if let Some(m) = &meter {
                            let retries = lanes.iter().map(|l| l.stats.retries).sum();
                            m.tick(&record, retries, reissued, None);
                        }
                        results[index] = Some(record);
                        lanes[w].outstanding.retain(|&x| x != index);
                        remaining -= 1;
                    } else {
                        fail_lane(
                            &mut lanes,
                            w,
                            "unparseable canonical payload",
                            &mut queue,
                            chunk,
                            &mut reissued,
                        );
                    }
                }
                LaneEvent::Frame(FromWorker::Done { stats, .. }) => {
                    // Counters are cumulative per session, so the
                    // latest snapshot supersedes the previous one.
                    hlstb_trace::events::emit_volatile("worker.done", None, |e| {
                        e.volatile_u64("worker", w as u64)
                            .volatile_u64("points", stats.points)
                            .volatile_u64("retries", stats.retries);
                        if let Some(c) = &stats.cache {
                            e.volatile_u64("hits", c.hits())
                                .volatile_u64("misses", c.misses())
                                .volatile_u64("coalesced", c.coalesced());
                        }
                    });
                    lanes[w].stats = stats;
                }
                LaneEvent::Frame(FromWorker::Error { message }) => {
                    fail_lane(&mut lanes, w, &message, &mut queue, chunk, &mut reissued);
                }
                LaneEvent::Corrupt(e) => {
                    lanes[w].reader_done = true;
                    fail_lane(&mut lanes, w, e.message(), &mut queue, chunk, &mut reissued);
                }
                LaneEvent::Eof => {
                    lanes[w].reader_done = true;
                    fail_lane(
                        &mut lanes,
                        w,
                        "stream ended unexpectedly",
                        &mut queue,
                        chunk,
                        &mut reissued,
                    );
                }
            }
        }

        if hello_timeouts > 0 {
            eprintln!("sweep: dropped {hello_timeouts} connection(s) that never completed hello");
        }

        // Stop accepting before the polite shutdowns: set the flag,
        // then self-connect to unblock `accept()` so the thread joins.
        if let Some((stop, addr, handle)) = accept_stop.take() {
            stop.store(true, Ordering::Relaxed);
            let _ = std::net::TcpStream::connect(addr);
            let _ = handle.join();
        }

        // Wind down: polite shutdown, close streams, reap children.
        for lane in &mut lanes {
            if let Some(to) = &mut lane.to {
                let _ = write_frame(to.as_mut(), &proto::encode_shutdown());
            }
            lane.to = None;
            if let Some(mut child) = lane.child.take() {
                let _ = child.wait();
            }
        }

        // Drain until every lane's reader signs off (each sends exactly
        // one Eof/Corrupt before exiting): the final cumulative `done`
        // frame per lane is usually still queued when the splice loop
        // breaks at `remaining == 0`, and dropping it would undercount
        // the fleet stats and the trace-view lane table.
        let drain_deadline = std::time::Instant::now() + Duration::from_secs(5);
        while lanes.iter().any(|l| !l.reader_done) {
            let timeout = drain_deadline.saturating_duration_since(std::time::Instant::now());
            let Ok(coord_event) = rx.recv_timeout(timeout) else {
                break;
            };
            match coord_event {
                CoordEvent::Lane(w, LaneEvent::Frame(FromWorker::Done { stats, .. })) => {
                    hlstb_trace::events::emit_volatile("worker.done", None, |e| {
                        e.volatile_u64("worker", w as u64)
                            .volatile_u64("points", stats.points)
                            .volatile_u64("retries", stats.retries);
                        if let Some(c) = &stats.cache {
                            e.volatile_u64("hits", c.hits())
                                .volatile_u64("misses", c.misses())
                                .volatile_u64("coalesced", c.coalesced());
                        }
                    });
                    lanes[w].stats = stats;
                }
                CoordEvent::Lane(w, LaneEvent::Eof)
                | CoordEvent::Lane(w, LaneEvent::Corrupt(_)) => {
                    lanes[w].reader_done = true;
                }
                // Late dialers and stray frames past the finish line:
                // the work is done, drop them.
                _ => {}
            }
        }

        // Fleet aggregation: sum the latest per-lane session counters.
        // A lane that died mid-lease keeps the stats of its last done
        // frame; work it redid on another lane is counted where it
        // actually ran.
        lanes_seen = if wait_for_lanes {
            lanes.len()
        } else {
            expected_workers
        };
        for lane in &lanes {
            fleet_retries += lane.stats.retries;
            if let Some(c) = &lane.stats.cache {
                fleet_cache.merge(c);
            }
        }

        // Every lane died with work left: finish inline so the sweep
        // still completes (and stays byte-identical — same evaluator).
        if remaining > 0 {
            eprintln!("sweep: no live workers left; evaluating {remaining} points inline");
            let runner = PointRunner::new(spec, opts, recovery.fail_plan.clone());
            for i in 0..n {
                if results[i].is_some() {
                    continue;
                }
                runner.scheduled(i);
                let (record, _) = runner.eval(i);
                if let Some(ck) = &writer {
                    if let Err(e) = ck.record(point_keys[i], i, &record.canonical_point_json()) {
                        checkpoint_errors += 1;
                        ck.degrade(&e.to_string());
                    }
                }
                if let Some(m) = &meter {
                    m.tick(
                        &record,
                        fleet_retries + runner.retries(),
                        reissued,
                        runner.cache(),
                    );
                }
                results[i] = Some(record);
            }
            fleet_retries += runner.retries();
            if let Some(c) = runner.cache() {
                fleet_cache.merge(&c.stats());
            }
        }
    }

    if let Some(m) = &meter {
        m.finish();
    }
    let mut records = Vec::with_capacity(n);
    let mut cpu = Duration::ZERO;
    for slot in results {
        let record = slot.expect("every point resolved");
        cpu += record.wall;
        records.push(record);
    }
    hlstb_trace::counter("dse.points", records.len() as u64);
    hlstb_trace::events::emit("sweep.end", None, |e| {
        e.u64("points", records.len() as u64)
            .u64(
                "failures",
                records.iter().filter(|r| r.outcome.is_err()).count() as u64,
            )
            .volatile_u64("wall_ms", t0.elapsed().as_millis() as u64)
            .volatile_u64("retries", fleet_retries)
            .volatile_u64("reissued", reissued);
    });
    sweep_span.end();
    Ok(SweepOutcome {
        report: SweepReport {
            points: records,
            threads: opts.threads.max(1),
            workers: lanes_seen,
            cache: opts.cache.then_some(fleet_cache),
            wall: t0.elapsed(),
            cpu,
            restored: restored_count,
            retries: fleet_retries,
            reissued,
            checkpoint_degraded: writer.as_ref().is_some_and(Checkpoint::degraded),
        },
        designs: (0..n).map(|_| None).collect(),
        checkpoint_write_errors: checkpoint_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn worker_fail_parses_and_rejects() {
        assert_eq!(
            WorkerFail::parse("1:2"),
            Some(WorkerFail {
                worker: 1,
                after: 2
            })
        );
        assert_eq!(
            WorkerFail::parse(" 3 : 0 "),
            Some(WorkerFail {
                worker: 3,
                after: 0
            })
        );
        assert_eq!(WorkerFail::parse("nope"), None);
        assert_eq!(WorkerFail::parse("1:x"), None);
    }

    #[test]
    fn loopback_pipe_orders_bytes_and_signals_eof() {
        let (mut w, mut r) = pipe();
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        drop(w);
        let mut s = String::new();
        r.read_to_string(&mut s).unwrap();
        assert_eq!(s, "hello world");
    }

    #[test]
    fn loopback_write_after_reader_drop_is_broken_pipe() {
        let (mut w, r) = pipe();
        drop(r);
        let e = w.write_all(b"x").unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn enqueue_leases_chunks_contiguous_runs() {
        let mut q = VecDeque::new();
        enqueue_leases(&mut q, &[0, 1, 2, 5, 6, 9], 2);
        assert_eq!(Vec::from(q), vec![(0, 2), (2, 3), (5, 7), (9, 10)]);
    }

    #[test]
    fn worker_loop_rejects_a_leading_non_hello_frame() {
        let input = format!("{}\n", proto::encode_lease(0, 1));
        let mut out = Vec::new();
        let err = worker_loop(input.as_bytes(), &mut out, None).unwrap_err();
        assert_eq!(err.kind(), "io");
    }
}
