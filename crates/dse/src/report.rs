//! Deterministic sweep reports.
//!
//! [`SweepReport::canonical_json`] renders only run-invariant content —
//! point coordinates, synthesis/coverage metrics, and typed failure
//! records, in point-index order — so a parallel cached sweep and a
//! serial uncached sweep of the same spec produce byte-identical
//! documents (enforced by tests and the CI smoke step).
//! [`SweepReport::to_json`] adds the run-varying envelope: wall/CPU
//! time, worker count, retry/restore counters, cache counters.
//!
//! A point restored from a checkpoint carries its original canonical
//! JSON verbatim ([`PointRecord::restored`]) and re-emits those exact
//! bytes, which is what makes a resumed sweep byte-identical to an
//! uninterrupted one without re-deriving float formatting.

use std::time::Duration;

use hlstb::report::TestabilityReport;
use hlstb_trace::json::{number_f64, Obj};

use crate::cache::CacheStats;
use crate::error::PointError;

/// Run-invariant metrics of one successfully synthesized point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointMetrics {
    /// The flow's testability report (never carries grading/ATPG
    /// payloads — sweep grading is recorded in `coverage_percent` so
    /// cached and uncached runs stay comparable).
    pub report: TestabilityReport,
    /// Stuck-at coverage at the point's pattern budget, when the point
    /// asked for grading.
    pub coverage_percent: Option<f64>,
    /// Whether the point's wall-clock budget expired mid-grading:
    /// `coverage_percent` is then a truncated lower bound, not the
    /// coverage at the requested budget.
    pub timed_out: bool,
}

/// One sweep point's result, in enumeration order.
#[derive(Debug, Clone)]
pub struct PointRecord {
    /// Point index (slot in the spec's enumeration).
    pub index: usize,
    /// Design name.
    pub design: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Register-policy name.
    pub policy: String,
    /// DFT-strategy name.
    pub strategy: String,
    /// Data-path width in bits.
    pub width: u32,
    /// Pattern budget (0 = ungraded).
    pub patterns: usize,
    /// Metrics, or the typed failure that ended the point.
    pub outcome: Result<PointMetrics, PointError>,
    /// Wall time this point took to evaluate (excluded from canonical
    /// output; ~zero for restored points).
    pub wall: Duration,
    /// When the point was served from a checkpoint: its original
    /// canonical JSON object, re-emitted verbatim so a resumed sweep's
    /// canonical document stays byte-identical.
    pub restored: Option<String>,
}

impl PointRecord {
    /// The point's canonical (run-invariant) JSON object — also the
    /// payload the checkpoint stores.
    pub(crate) fn canonical_point_json(&self) -> String {
        self.to_json(false)
    }

    /// The point's JSON object; timing only when `with_timing`.
    fn to_json(&self, with_timing: bool) -> String {
        if let Some(raw) = &self.restored {
            if !with_timing {
                return raw.clone();
            }
            // Splice the timing field into the verbatim object rather
            // than re-rendering, so full and canonical outputs agree.
            let body = raw.trim_end().strip_suffix('}').unwrap_or(raw);
            return format!(
                "{body}, \"wall_ms\": {:.3}}}",
                self.wall.as_secs_f64() * 1e3
            );
        }
        let mut o = Obj::new();
        o.number_u64("index", self.index as u64)
            .string("design", &self.design)
            .string("scheduler", &self.scheduler)
            .string("policy", &self.policy)
            .string("strategy", &self.strategy)
            .number_u64("width", u64::from(self.width))
            .number_u64("patterns", self.patterns as u64);
        match &self.outcome {
            Ok(m) => {
                o.raw(
                    "coverage_percent",
                    &m.coverage_percent.map_or("null".into(), number_f64),
                );
                o.boolean("timed_out", m.timed_out);
                o.raw("error", "null");
                o.raw("report", &m.report.to_json());
            }
            Err(e) => {
                o.raw("coverage_percent", "null");
                o.boolean("timed_out", false);
                o.raw("error", &e.to_json());
                o.raw("report", "null");
            }
        }
        if with_timing {
            o.raw("wall_ms", &format!("{:.3}", self.wall.as_secs_f64() * 1e3));
        }
        o.finish()
    }
}

/// The full result of one sweep, points ordered by index.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-point records, index order.
    pub points: Vec<PointRecord>,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// Worker *processes* a scale-out sweep sharded over (0 = the
    /// in-process pool).
    pub workers: usize,
    /// Whether the artifact cache was enabled, and its counters.
    pub cache: Option<CacheStats>,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Summed per-point wall time (the work the pool executed).
    pub cpu: Duration,
    /// Points served from the resume checkpoint instead of evaluated.
    pub restored: usize,
    /// Per-point retry attempts the bounded-retry policy performed
    /// (transient point failures: panics, timeouts). In a scale-out
    /// sweep this is the fleet-wide sum the workers reported.
    pub retries: u64,
    /// Leased points re-issued to another lane because their worker
    /// died mid-lease (transport recovery, not point failures; always
    /// 0 for in-process sweeps).
    pub reissued: u64,
    /// Whether a checkpoint write failure downgraded the run to
    /// checkpoint-less mode mid-sweep (results are complete; the
    /// checkpoint file is not).
    pub checkpoint_degraded: bool,
}

impl SweepReport {
    /// Points that failed, as `(index, error)` pairs.
    pub fn errors(&self) -> Vec<(usize, &PointError)> {
        self.points
            .iter()
            .filter_map(|p| p.outcome.as_ref().err().map(|e| (p.index, e)))
            .collect()
    }

    /// Failure totals grouped by [`PointError::kind`], name-sorted.
    /// Empty when every point succeeded.
    pub fn error_kinds(&self) -> std::collections::BTreeMap<&'static str, u64> {
        let mut kinds = std::collections::BTreeMap::new();
        for p in &self.points {
            if let Err(e) = &p.outcome {
                *kinds.entry(e.kind()).or_insert(0) += 1;
            }
        }
        kinds
    }

    /// Points whose wall-clock budget expired: timeout failures plus
    /// successes with truncated (timed-out) coverage.
    pub fn timeouts(&self) -> usize {
        self.points
            .iter()
            .filter(|p| match &p.outcome {
                Ok(m) => m.timed_out,
                Err(e) => matches!(e, PointError::Timeout { .. }),
            })
            .count()
    }

    fn points_json(&self, with_timing: bool) -> String {
        let mut out = String::from("[\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&p.to_json(with_timing));
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        out
    }

    /// The run-invariant document: identical bytes for any thread
    /// count and cache setting, because every field depends only on
    /// the spec (and any injected fail plan).
    pub fn canonical_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"dse_sweep\",\n");
        out.push_str(&format!("  \"points\": {}\n", self.points_json(false)));
        out.push('}');
        out
    }

    /// The full document: canonical content plus the run envelope
    /// (threads, wall/CPU time, per-point wall, retry/restore counts,
    /// cache counters).
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"dse_sweep\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"wall_ms\": {},\n", ms(self.wall)));
        out.push_str(&format!("  \"cpu_ms\": {},\n", ms(self.cpu)));
        out.push_str(&format!("  \"failures\": {},\n", self.errors().len()));
        let kinds = self
            .error_kinds()
            .iter()
            .map(|(k, n)| format!("\"{k}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("  \"error_kinds\": {{{kinds}}},\n"));
        out.push_str(&format!("  \"retries\": {},\n", self.retries));
        out.push_str(&format!("  \"reissued\": {},\n", self.reissued));
        out.push_str(&format!(
            "  \"checkpoint_degraded\": {},\n",
            self.checkpoint_degraded
        ));
        out.push_str(&format!("  \"timeouts\": {},\n", self.timeouts()));
        out.push_str(&format!("  \"restored\": {},\n", self.restored));
        match &self.cache {
            Some(c) => {
                out.push_str(&format!(
                    "  \"cache_hit_rate_percent\": {},\n",
                    number_f64(c.hit_rate_percent())
                ));
                out.push_str(&format!("  \"cache\": {},\n", c.to_json()));
            }
            None => {
                out.push_str("  \"cache_hit_rate_percent\": null,\n");
                out.push_str("  \"cache\": null,\n");
            }
        }
        out.push_str(&format!("  \"points\": {}\n", self.points_json(true)));
        out.push('}');
        out
    }

    /// A fixed-width text table of the sweep (the CLI's default
    /// rendering).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4}  {:<12} {:<24} {:<13} {:>5} {:>8} {:>6} {:>8} {:>7} {:>7}\n",
            "#",
            "design",
            "strategy",
            "policy",
            "width",
            "patterns",
            "scan",
            "gates",
            "area",
            "cov %"
        ));
        for p in &self.points {
            match &p.outcome {
                Ok(m) => {
                    let cov = m
                        .coverage_percent
                        .map_or("-".to_string(), |c| format!("{c:.1}"));
                    let cov = if m.timed_out { format!("{cov}*") } else { cov };
                    out.push_str(&format!(
                        "{:>4}  {:<12} {:<24} {:<13} {:>5} {:>8} {:>6} {:>8} {:>7.0} {:>7}\n",
                        p.index,
                        p.design,
                        p.strategy,
                        p.policy,
                        p.width,
                        p.patterns,
                        m.report.scan_registers,
                        m.report.gates,
                        m.report.area,
                        cov
                    ));
                }
                Err(e) => {
                    out.push_str(&format!(
                        "{:>4}  {:<12} {:<24} {:<13} {:>5} {:>8} {}: {}\n",
                        p.index,
                        p.design,
                        p.strategy,
                        p.policy,
                        p.width,
                        p.patterns,
                        e.kind(),
                        e.message()
                    ));
                }
            }
        }
        out
    }

    /// One-line run summary (the CLI's stderr footer): point, error
    /// (with a per-kind breakdown), retry, lease-reissue, timeout, and
    /// restore counts, threads, cache hit/miss totals with hit rate,
    /// wall time.
    pub fn summary(&self) -> String {
        let errors = {
            let kinds = self.error_kinds();
            if kinds.is_empty() {
                "0 errors".to_string()
            } else {
                let detail = kinds
                    .iter()
                    .map(|(k, n)| format!("{k}: {n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{} errors [{detail}]", self.errors().len())
            }
        };
        let cache = match &self.cache {
            Some(c) => format!(
                "cache hits: {}, misses: {}, coalesced: {} ({:.1}% hit)",
                c.hits(),
                c.misses(),
                c.coalesced(),
                c.hit_rate_percent()
            ),
            None => "cache off".to_string(),
        };
        let workers = if self.workers > 0 {
            format!(", {} workers", self.workers)
        } else {
            String::new()
        };
        format!(
            "sweep: {} points ({errors}), {} threads{workers}, {} retries, {} reissued, {} timeouts, {} restored, {cache}, wall: {:.1} ms, cpu: {:.1} ms",
            self.points.len(),
            self.threads,
            self.retries,
            self.reissued,
            self.timeouts(),
            self.restored,
            self.wall.as_secs_f64() * 1e3,
            self.cpu.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlstb_trace::json;

    fn record(index: usize, ok: bool) -> PointRecord {
        let report = TestabilityReport {
            name: "x".into(),
            period: 4,
            registers: 10,
            io_registers: 5,
            fus: 3,
            scan_registers: 2,
            sgraph_cycles: 1,
            sgraph_acyclic_after_scan: true,
            mfvs_size: 1,
            max_control_depth: 2,
            max_observe_depth: 3,
            gates: 500,
            area: 1234.5,
            bist_overhead_percent: 12.5,
            grading: None,
            atpg: None,
        };
        PointRecord {
            index,
            design: "x".into(),
            scheduler: "list".into(),
            policy: "left-edge".into(),
            strategy: "none".into(),
            width: 4,
            patterns: 128,
            outcome: if ok {
                Ok(PointMetrics {
                    report,
                    coverage_percent: Some(92.5),
                    timed_out: false,
                })
            } else {
                Err(PointError::Flow {
                    message: "scheduling: no feasible schedule".into(),
                })
            },
            wall: Duration::from_millis(3),
            restored: None,
        }
    }

    fn report() -> SweepReport {
        SweepReport {
            points: vec![record(0, true), record(1, false)],
            threads: 4,
            workers: 0,
            cache: Some(CacheStats::default()),
            wall: Duration::from_millis(10),
            cpu: Duration::from_millis(30),
            restored: 0,
            retries: 0,
            reissued: 0,
            checkpoint_degraded: false,
        }
    }

    #[test]
    fn canonical_json_excludes_the_run_envelope() {
        let r = report();
        let c = r.canonical_json();
        assert!(!c.contains("wall_ms"), "{c}");
        assert!(!c.contains("threads"), "{c}");
        assert!(!c.contains("cache"), "{c}");
        let v = json::parse(&c).expect("canonical parses");
        let pts = v.get("points").and_then(|p| p.as_array()).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(
            pts[0].get("coverage_percent").and_then(|x| x.as_f64()),
            Some(92.5)
        );
        // Failures are typed objects, not bare strings.
        let err = pts[1].get("error").expect("error field");
        assert_eq!(err.get("kind").and_then(|k| k.as_str()), Some("flow"));
        assert!(err
            .get("message")
            .and_then(|m| m.as_str())
            .unwrap()
            .contains("scheduling"));
    }

    #[test]
    fn full_json_carries_the_envelope_and_parses() {
        let r = report();
        let j = r.to_json();
        let v = json::parse(&j).expect("full parses");
        assert_eq!(v.get("threads").and_then(|t| t.as_f64()), Some(4.0));
        assert!(v.get("wall_ms").and_then(|w| w.as_f64()).is_some());
        assert!(v.get("cache").is_some());
        assert_eq!(v.get("failures").and_then(|f| f.as_f64()), Some(1.0));
        assert_eq!(v.get("retries").and_then(|f| f.as_f64()), Some(0.0));
        assert_eq!(v.get("reissued").and_then(|f| f.as_f64()), Some(0.0));
        assert_eq!(v.get("restored").and_then(|f| f.as_f64()), Some(0.0));
        let pts = v.get("points").and_then(|p| p.as_array()).unwrap();
        assert!(pts[0].get("wall_ms").and_then(|w| w.as_f64()).is_some());
    }

    #[test]
    fn canonical_json_is_identical_across_run_envelopes() {
        let a = report();
        let mut b = report();
        b.threads = 1;
        b.cache = None;
        b.wall = Duration::from_millis(99);
        b.points[0].wall = Duration::from_millis(77);
        b.retries = 5;
        b.reissued = 2;
        b.restored = 1;
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn restored_points_reemit_their_bytes_verbatim() {
        let original = record(0, true);
        let canonical = original.canonical_point_json();
        let mut restored = original.clone();
        restored.restored = Some(canonical.clone());
        restored.wall = Duration::ZERO;
        assert_eq!(restored.to_json(false), canonical);
        // The timed variant splices wall_ms into the same object.
        let timed = restored.to_json(true);
        assert!(timed.ends_with("\"wall_ms\": 0.000}"), "{timed}");
        assert!(json::parse(&timed).is_ok(), "{timed}");
    }

    #[test]
    fn table_and_summary_render() {
        let r = report();
        let t = r.table();
        assert!(t.contains("design"), "{t}");
        assert!(t.contains("flow: scheduling"), "{t}");
        let s = r.summary();
        assert!(s.contains("2 points (1 errors [flow: 1])"), "{s}");
        assert!(s.contains("0 retries"), "{s}");
        assert!(s.contains("0 reissued"), "{s}");
        assert!(s.contains("0 restored"), "{s}");
        assert!(
            s.contains("cache hits: 0, misses: 0, coalesced: 0 (0.0% hit)"),
            "{s}"
        );
        assert!(!s.contains("workers"), "{s}");
        assert_eq!(r.errors().len(), 1);
        assert_eq!(r.timeouts(), 0);
        // A scale-out run names its worker-process count.
        let mut w = report();
        w.workers = 4;
        assert!(
            w.summary().contains("4 threads, 4 workers"),
            "{}",
            w.summary()
        );
        assert!(w.to_json().contains("\"workers\": 4"));
        // Without a cache the summary says so instead of zero counters.
        let mut nc = report();
        nc.cache = None;
        nc.points.truncate(1);
        let s = nc.summary();
        assert!(s.contains("cache off"), "{s}");
        assert!(s.contains("(0 errors)"), "{s}");
    }

    #[test]
    fn error_kinds_group_failures_and_reach_the_envelope() {
        let mut r = report();
        r.points.push(record(2, false));
        r.points.push({
            let mut p = record(3, false);
            p.outcome = Err(PointError::Timeout {
                message: "budget expired".into(),
            });
            p
        });
        let kinds = r.error_kinds();
        assert_eq!(kinds.get("flow"), Some(&2));
        assert_eq!(kinds.get("timeout"), Some(&1));
        let v = json::parse(&r.to_json()).expect("full parses");
        let ek = v.get("error_kinds").expect("error_kinds object");
        assert_eq!(ek.get("flow").and_then(|x| x.as_f64()), Some(2.0));
        assert_eq!(ek.get("timeout").and_then(|x| x.as_f64()), Some(1.0));
        assert!(v.get("cache_hit_rate_percent").is_some());
        assert!(
            r.summary().contains("[flow: 2, timeout: 1]"),
            "{}",
            r.summary()
        );
    }

    #[test]
    fn timed_out_successes_are_counted_and_starred() {
        let mut r = report();
        if let Ok(m) = &mut r.points[0].outcome {
            m.timed_out = true;
        }
        assert_eq!(r.timeouts(), 1);
        assert!(r.table().contains("92.5*"), "{}", r.table());
        assert!(r.canonical_json().contains("\"timed_out\": true"));
    }
}
