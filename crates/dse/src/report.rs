//! Deterministic sweep reports.
//!
//! [`SweepReport::canonical_json`] renders only run-invariant content —
//! point coordinates and synthesis/coverage metrics, in point-index
//! order — so a parallel cached sweep and a serial uncached sweep of
//! the same spec produce byte-identical documents (enforced by tests
//! and the CI smoke step). [`SweepReport::to_json`] adds the
//! run-varying envelope: wall/CPU time, worker count, cache counters.

use std::time::Duration;

use hlstb::report::TestabilityReport;
use hlstb_trace::json::{escape, number_f64, Obj};

use crate::cache::CacheStats;

/// Run-invariant metrics of one successfully synthesized point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointMetrics {
    /// The flow's testability report (never carries grading/ATPG
    /// payloads — sweep grading is recorded in `coverage_percent` so
    /// cached and uncached runs stay comparable).
    pub report: TestabilityReport,
    /// Stuck-at coverage at the point's pattern budget, when the point
    /// asked for grading.
    pub coverage_percent: Option<f64>,
}

/// One sweep point's result, in enumeration order.
#[derive(Debug, Clone)]
pub struct PointRecord {
    /// Point index (slot in the spec's enumeration).
    pub index: usize,
    /// Design name.
    pub design: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Register-policy name.
    pub policy: String,
    /// DFT-strategy name.
    pub strategy: String,
    /// Data-path width in bits.
    pub width: u32,
    /// Pattern budget (0 = ungraded).
    pub patterns: usize,
    /// Metrics, or the first pipeline failure rendered as a string.
    pub outcome: Result<PointMetrics, String>,
    /// Wall time this point took to evaluate (excluded from canonical
    /// output).
    pub wall: Duration,
}

impl PointRecord {
    /// The point's JSON object; timing only when `with_timing`.
    fn to_json(&self, with_timing: bool) -> String {
        let mut o = Obj::new();
        o.number_u64("index", self.index as u64)
            .string("design", &self.design)
            .string("scheduler", &self.scheduler)
            .string("policy", &self.policy)
            .string("strategy", &self.strategy)
            .number_u64("width", u64::from(self.width))
            .number_u64("patterns", self.patterns as u64);
        match &self.outcome {
            Ok(m) => {
                o.raw(
                    "coverage_percent",
                    &m.coverage_percent.map_or("null".into(), number_f64),
                );
                o.raw("error", "null");
                o.raw("report", &m.report.to_json());
            }
            Err(e) => {
                o.raw("coverage_percent", "null");
                o.raw("error", &escape(e));
                o.raw("report", "null");
            }
        }
        if with_timing {
            o.raw("wall_ms", &format!("{:.3}", self.wall.as_secs_f64() * 1e3));
        }
        o.finish()
    }
}

/// The full result of one sweep, points ordered by index.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-point records, index order.
    pub points: Vec<PointRecord>,
    /// Worker threads the sweep ran on.
    pub threads: usize,
    /// Whether the artifact cache was enabled, and its counters.
    pub cache: Option<CacheStats>,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Summed per-point wall time (the work the pool executed).
    pub cpu: Duration,
}

impl SweepReport {
    /// Points that failed, as `(index, error)` pairs.
    pub fn errors(&self) -> Vec<(usize, &str)> {
        self.points
            .iter()
            .filter_map(|p| p.outcome.as_ref().err().map(|e| (p.index, e.as_str())))
            .collect()
    }

    fn points_json(&self, with_timing: bool) -> String {
        let mut out = String::from("[\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&p.to_json(with_timing));
            if i + 1 < self.points.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        out
    }

    /// The run-invariant document: identical bytes for any thread
    /// count and cache setting, because every field depends only on
    /// the spec.
    pub fn canonical_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"dse_sweep\",\n");
        out.push_str(&format!("  \"points\": {}\n", self.points_json(false)));
        out.push('}');
        out
    }

    /// The full document: canonical content plus the run envelope
    /// (threads, wall/CPU time, per-point wall, cache counters).
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
        let mut out = String::from("{\n");
        out.push_str("  \"experiment\": \"dse_sweep\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"wall_ms\": {},\n", ms(self.wall)));
        out.push_str(&format!("  \"cpu_ms\": {},\n", ms(self.cpu)));
        match &self.cache {
            Some(c) => out.push_str(&format!("  \"cache\": {},\n", c.to_json())),
            None => out.push_str("  \"cache\": null,\n"),
        }
        out.push_str(&format!("  \"points\": {}\n", self.points_json(true)));
        out.push('}');
        out
    }

    /// A fixed-width text table of the sweep (the CLI's default
    /// rendering).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>4}  {:<12} {:<24} {:<13} {:>5} {:>8} {:>6} {:>8} {:>7} {:>7}\n",
            "#",
            "design",
            "strategy",
            "policy",
            "width",
            "patterns",
            "scan",
            "gates",
            "area",
            "cov %"
        ));
        for p in &self.points {
            match &p.outcome {
                Ok(m) => {
                    let cov = m
                        .coverage_percent
                        .map_or("-".to_string(), |c| format!("{c:.1}"));
                    out.push_str(&format!(
                        "{:>4}  {:<12} {:<24} {:<13} {:>5} {:>8} {:>6} {:>8} {:>7.0} {:>7}\n",
                        p.index,
                        p.design,
                        p.strategy,
                        p.policy,
                        p.width,
                        p.patterns,
                        m.report.scan_registers,
                        m.report.gates,
                        m.report.area,
                        cov
                    ));
                }
                Err(e) => {
                    out.push_str(&format!(
                        "{:>4}  {:<12} {:<24} {:<13} {:>5} {:>8} error: {e}\n",
                        p.index, p.design, p.strategy, p.policy, p.width, p.patterns
                    ));
                }
            }
        }
        out
    }

    /// One-line run summary (the CLI's stderr footer): point and error
    /// counts, threads, cache hit/miss totals, wall time.
    pub fn summary(&self) -> String {
        let (hits, misses) = self.cache.map_or((0, 0), |c| (c.hits(), c.misses()));
        format!(
            "sweep: {} points ({} errors), {} threads, cache hits: {hits}, misses: {misses}, wall: {:.1} ms, cpu: {:.1} ms",
            self.points.len(),
            self.errors().len(),
            self.threads,
            self.wall.as_secs_f64() * 1e3,
            self.cpu.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlstb_trace::json;

    fn record(index: usize, ok: bool) -> PointRecord {
        let report = TestabilityReport {
            name: "x".into(),
            period: 4,
            registers: 10,
            io_registers: 5,
            fus: 3,
            scan_registers: 2,
            sgraph_cycles: 1,
            sgraph_acyclic_after_scan: true,
            mfvs_size: 1,
            max_control_depth: 2,
            max_observe_depth: 3,
            gates: 500,
            area: 1234.5,
            bist_overhead_percent: 12.5,
            grading: None,
            atpg: None,
        };
        PointRecord {
            index,
            design: "x".into(),
            scheduler: "list".into(),
            policy: "left-edge".into(),
            strategy: "none".into(),
            width: 4,
            patterns: 128,
            outcome: if ok {
                Ok(PointMetrics {
                    report,
                    coverage_percent: Some(92.5),
                })
            } else {
                Err("scheduling: no feasible schedule".into())
            },
            wall: Duration::from_millis(3),
        }
    }

    fn report() -> SweepReport {
        SweepReport {
            points: vec![record(0, true), record(1, false)],
            threads: 4,
            cache: Some(CacheStats::default()),
            wall: Duration::from_millis(10),
            cpu: Duration::from_millis(30),
        }
    }

    #[test]
    fn canonical_json_excludes_the_run_envelope() {
        let r = report();
        let c = r.canonical_json();
        assert!(!c.contains("wall_ms"), "{c}");
        assert!(!c.contains("threads"), "{c}");
        assert!(!c.contains("cache"), "{c}");
        let v = json::parse(&c).expect("canonical parses");
        let pts = v.get("points").and_then(|p| p.as_array()).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(
            pts[0].get("coverage_percent").and_then(|x| x.as_f64()),
            Some(92.5)
        );
        assert!(pts[1].get("error").and_then(|e| e.as_str()).is_some());
    }

    #[test]
    fn full_json_carries_the_envelope_and_parses() {
        let r = report();
        let j = r.to_json();
        let v = json::parse(&j).expect("full parses");
        assert_eq!(v.get("threads").and_then(|t| t.as_f64()), Some(4.0));
        assert!(v.get("wall_ms").and_then(|w| w.as_f64()).is_some());
        assert!(v.get("cache").is_some());
        let pts = v.get("points").and_then(|p| p.as_array()).unwrap();
        assert!(pts[0].get("wall_ms").and_then(|w| w.as_f64()).is_some());
    }

    #[test]
    fn canonical_json_is_identical_across_run_envelopes() {
        let a = report();
        let mut b = report();
        b.threads = 1;
        b.cache = None;
        b.wall = Duration::from_millis(99);
        b.points[0].wall = Duration::from_millis(77);
        assert_eq!(a.canonical_json(), b.canonical_json());
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn table_and_summary_render() {
        let r = report();
        let t = r.table();
        assert!(t.contains("design"), "{t}");
        assert!(t.contains("error: scheduling"), "{t}");
        let s = r.summary();
        assert!(s.contains("2 points (1 errors)"), "{s}");
        assert!(s.contains("cache hits: 0"), "{s}");
        assert_eq!(r.errors().len(), 1);
    }
}
