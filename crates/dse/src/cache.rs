//! The content-keyed artifact cache.
//!
//! One [`ArtifactCache`] lives for the duration of one sweep. Each
//! stage has its own store keyed by the FNV-1a hash of the stage's
//! inputs (see [`crate::key`]); values are `Arc`s, so a hit is a
//! pointer clone and workers share artifacts without copying.
//!
//! Lock discipline: a store's mutex is held only for the lookup and
//! the insert, never across a compute. Two workers racing on the same
//! miss may both compute the value; the first insert wins and the
//! duplicate is dropped. Every stage is deterministic, so the race is
//! benign — and on sweep workloads misses are rare after warm-up.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hlstb::flow::{DftPlans, FrontEnd, SgraphFacts};
use hlstb::hls::datapath::Datapath;
use hlstb::hls::expand::ExpandedDatapath;
use hlstb::netlist::random::RandomRun;
use hlstb_trace::json::Obj;

/// Hit/miss counters of one stage store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
}

/// A snapshot of every stage's hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Front-end artifacts (schedule + binding + data path).
    pub front: StageCounts,
    /// Strategy-independent S-graph facts.
    pub facts: StageCounts,
    /// DFT-processed data paths and plans.
    pub dft: StageCounts,
    /// Gate-level expansions.
    pub netlist: StageCounts,
    /// Pseudorandom grading runs.
    pub grading: StageCounts,
}

impl CacheStats {
    /// Total hits across all stages.
    pub fn hits(&self) -> u64 {
        self.front.hits + self.facts.hits + self.dft.hits + self.netlist.hits + self.grading.hits
    }

    /// Total misses across all stages.
    pub fn misses(&self) -> u64 {
        self.front.misses
            + self.facts.misses
            + self.dft.misses
            + self.netlist.misses
            + self.grading.misses
    }

    /// Hits as a percentage of all lookups (0.0 when nothing was
    /// looked up — a `--no-cache` or empty sweep).
    pub fn hit_rate_percent(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 * 100.0 / total as f64
        }
    }

    /// The stats as a JSON object (per stage plus totals).
    pub fn to_json(&self) -> String {
        let stage = |c: StageCounts| {
            let mut o = Obj::new();
            o.number_u64("hits", c.hits).number_u64("misses", c.misses);
            o.finish()
        };
        let mut o = Obj::new();
        o.number_u64("hits", self.hits())
            .number_u64("misses", self.misses())
            .raw("front", &stage(self.front))
            .raw("facts", &stage(self.facts))
            .raw("dft", &stage(self.dft))
            .raw("netlist", &stage(self.netlist))
            .raw("grading", &stage(self.grading));
        o.finish()
    }
}

/// One stage's store: keyed `Arc` values plus hit/miss instrumentation
/// bridged to the trace layer under static counter names.
pub(crate) struct Store<T> {
    map: Mutex<HashMap<u64, Arc<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    hit_counter: &'static str,
    miss_counter: &'static str,
}

impl<T> Store<T> {
    fn new(hit_counter: &'static str, miss_counter: &'static str) -> Self {
        Store {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            hit_counter,
            miss_counter,
        }
    }

    /// Returns the cached value for `key` plus whether the lookup was
    /// a hit, computing (outside the lock) and inserting on a miss. On
    /// a racing double-compute the first insert wins so every caller
    /// sees one artifact (each racer still reports its own miss).
    pub(crate) fn get_or_try<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, bool), E> {
        if let Some(v) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hlstb_trace::counter(self.hit_counter, 1);
            return Ok((Arc::clone(v), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        hlstb_trace::counter(self.miss_counter, 1);
        let v = Arc::new(compute()?);
        Ok((
            Arc::clone(self.map.lock().expect("cache lock").entry(key).or_insert(v)),
            false,
        ))
    }

    fn counts(&self) -> StageCounts {
        StageCounts {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// The DFT stage's cached output: the scan-marked data path plus the
/// plans the strategy attached.
#[derive(Debug, Clone)]
pub struct DftOutput {
    /// The data path with the strategy's scan marks applied.
    pub datapath: Datapath,
    /// BIST / test-point plans.
    pub plans: DftPlans,
}

/// Per-stage artifact stores for one sweep.
pub struct ArtifactCache {
    pub(crate) front: Store<FrontEnd>,
    pub(crate) facts: Store<SgraphFacts>,
    pub(crate) dft: Store<DftOutput>,
    pub(crate) netlist: Store<ExpandedDatapath>,
    pub(crate) grading: Store<RandomRun>,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> Self {
        ArtifactCache {
            front: Store::new("dse.cache.front.hit", "dse.cache.front.miss"),
            facts: Store::new("dse.cache.facts.hit", "dse.cache.facts.miss"),
            dft: Store::new("dse.cache.dft.hit", "dse.cache.dft.miss"),
            netlist: Store::new("dse.cache.netlist.hit", "dse.cache.netlist.miss"),
            grading: Store::new("dse.cache.grading.hit", "dse.cache.grading.miss"),
        }
    }

    /// A snapshot of every stage's hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            front: self.front.counts(),
            facts: self.facts.counts(),
            dft: self.dft.counts(),
            netlist: self.netlist.counts(),
            grading: self.grading.counts(),
        }
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_hits_after_first_compute() {
        let cache = ArtifactCache::new();
        let mut computed = 0;
        for round in 0..3 {
            let (v, hit) = cache
                .facts
                .get_or_try(42, || {
                    computed += 1;
                    Ok::<_, String>(SgraphFacts {
                        cycles: 7,
                        mfvs_size: 2,
                    })
                })
                .unwrap();
            assert_eq!(v.cycles, 7);
            assert_eq!(hit, round > 0);
        }
        assert_eq!(computed, 1);
        let s = cache.stats();
        assert_eq!(s.facts, StageCounts { hits: 2, misses: 1 });
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ArtifactCache::new();
        let r = cache
            .facts
            .get_or_try(1, || Err::<SgraphFacts, _>("boom".to_string()));
        assert!(r.is_err());
        // The failed compute left nothing behind; the next call computes.
        let (v, hit) = cache
            .facts
            .get_or_try(1, || {
                Ok::<_, String>(SgraphFacts {
                    cycles: 1,
                    mfvs_size: 1,
                })
            })
            .unwrap();
        assert_eq!(v.mfvs_size, 1);
        assert!(!hit);
    }

    #[test]
    fn stats_json_names_every_stage() {
        let j = ArtifactCache::new().stats().to_json();
        for key in ["front", "facts", "dft", "netlist", "grading", "hits"] {
            assert!(j.contains(&format!("\"{key}\"")), "{j}");
        }
        assert!(hlstb_trace::json::parse(&j).is_ok(), "{j}");
    }
}
