//! The content-keyed, single-flight artifact cache.
//!
//! One [`ArtifactCache`] lives for the duration of one sweep — or, via
//! [`ArtifactCache::bounded`] behind an `Arc`, for the lifetime of a
//! `hlstb serve` daemon, shared across requests. Each stage has its
//! own store keyed by the FNV-1a hash of the stage's inputs (see
//! [`crate::key`]); values are `Arc`s, so a hit is a pointer clone and
//! workers share artifacts without copying.
//!
//! Misses are *single-flight*: the first worker to miss a key installs
//! an in-flight slot and computes outside the lock; any worker that
//! arrives while the compute is running blocks on the slot's condvar
//! instead of duplicating the (often expensive) stage work, and is
//! counted as a *coalesced* lookup when the leader's value lands. If
//! the leader's compute fails or panics, a drop guard removes the slot
//! and wakes the waiters, so exactly one of them retakes the lead —
//! errors are never cached and no waiter can deadlock on a dead
//! flight. Lock discipline is unchanged: a store's mutex is held only
//! for the lookup and the insert, never across a compute or a wait.
//!
//! A bounded cache enforces [`CacheBounds`] per stage store: every hit
//! stamps the entry with a monotone use tick, and an insert that takes
//! the store over its entry or (approximate) byte cap evicts
//! least-recently-used *ready* entries until it fits. In-flight slots
//! are never evicted — a leader always gets to publish, and eviction
//! can only forget finished artifacts (a later lookup simply
//! recomputes). Evictions and occupancy are surfaced through
//! [`ArtifactCache::occupancy`] for the serve metrics snapshot;
//! [`CacheStats`] (the wire-protocol payload) is unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use hlstb::flow::{DftPlans, FrontEnd, SgraphFacts};
use hlstb::hls::datapath::Datapath;
use hlstb::hls::expand::ExpandedDatapath;
use hlstb::netlist::random::RandomRun;
use hlstb_trace::json::{Obj, Value};

/// How one lookup was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a ready slot without waiting.
    Hit,
    /// This caller computed the value.
    Miss,
    /// This caller waited on another worker's in-flight compute and
    /// took its result — a miss that would have been duplicated work.
    Coalesced,
}

impl CacheOutcome {
    /// The outcome's journal/table label.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

/// Lookup counters of one stage store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// Lookups served from a ready slot.
    pub hits: u64,
    /// Lookups that computed the value.
    pub misses: u64,
    /// Lookups that waited out another worker's in-flight compute.
    pub coalesced: u64,
}

impl StageCounts {
    /// Adds another snapshot's counters into this one.
    pub fn merge(&mut self, other: StageCounts) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
    }

    fn from_json(v: &Value) -> Option<StageCounts> {
        let n = |k: &str| v.get(k).and_then(Value::as_f64).map(|x| x as u64);
        Some(StageCounts {
            hits: n("hits")?,
            misses: n("misses")?,
            coalesced: n("coalesced")?,
        })
    }
}

/// A snapshot of every stage's lookup counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Front-end artifacts (schedule + binding + data path).
    pub front: StageCounts,
    /// Strategy-independent S-graph facts.
    pub facts: StageCounts,
    /// DFT-processed data paths and plans.
    pub dft: StageCounts,
    /// Gate-level expansions.
    pub netlist: StageCounts,
    /// Pseudorandom grading runs.
    pub grading: StageCounts,
}

impl CacheStats {
    /// Total hits across all stages.
    pub fn hits(&self) -> u64 {
        self.front.hits + self.facts.hits + self.dft.hits + self.netlist.hits + self.grading.hits
    }

    /// Total misses across all stages.
    pub fn misses(&self) -> u64 {
        self.front.misses
            + self.facts.misses
            + self.dft.misses
            + self.netlist.misses
            + self.grading.misses
    }

    /// Total coalesced lookups across all stages.
    pub fn coalesced(&self) -> u64 {
        self.front.coalesced
            + self.facts.coalesced
            + self.dft.coalesced
            + self.netlist.coalesced
            + self.grading.coalesced
    }

    /// Lookups served without computing (hits plus coalesced waits) as
    /// a percentage of all lookups (0.0 when nothing was looked up — a
    /// `--no-cache` or empty sweep).
    pub fn hit_rate_percent(&self) -> f64 {
        let served = self.hits() + self.coalesced();
        let total = served + self.misses();
        if total == 0 {
            0.0
        } else {
            served as f64 * 100.0 / total as f64
        }
    }

    /// The stats as a JSON object (per stage plus totals).
    pub fn to_json(&self) -> String {
        let stage = |c: StageCounts| {
            let mut o = Obj::new();
            o.number_u64("hits", c.hits)
                .number_u64("misses", c.misses)
                .number_u64("coalesced", c.coalesced);
            o.finish()
        };
        let mut o = Obj::new();
        o.number_u64("hits", self.hits())
            .number_u64("misses", self.misses())
            .number_u64("coalesced", self.coalesced())
            .raw("front", &stage(self.front))
            .raw("facts", &stage(self.facts))
            .raw("dft", &stage(self.dft))
            .raw("netlist", &stage(self.netlist))
            .raw("grading", &stage(self.grading));
        o.finish()
    }

    /// Parses the object [`to_json`](Self::to_json) renders (the
    /// per-worker payload of the wire protocol's `done` frame). `None`
    /// when any per-stage object is missing or malformed — the totals
    /// are derived, so only the stages are read back.
    pub fn from_json(v: &Value) -> Option<CacheStats> {
        Some(CacheStats {
            front: StageCounts::from_json(v.get("front")?)?,
            facts: StageCounts::from_json(v.get("facts")?)?,
            dft: StageCounts::from_json(v.get("dft")?)?,
            netlist: StageCounts::from_json(v.get("netlist")?)?,
            grading: StageCounts::from_json(v.get("grading")?)?,
        })
    }

    /// Adds another snapshot's counters into this one, stage by stage
    /// (fleet-wide aggregation across worker lanes).
    pub fn merge(&mut self, other: &CacheStats) {
        self.front.merge(other.front);
        self.facts.merge(other.facts);
        self.dft.merge(other.dft);
        self.netlist.merge(other.netlist);
        self.grading.merge(other.grading);
    }
}

/// Capacity limits applied to *each* stage store of a bounded cache.
/// `None` means unlimited on that axis. The byte cap compares against
/// a coarse per-artifact cost estimate (gate counts, curve lengths),
/// not exact heap usage — it bounds growth, it is not an allocator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBounds {
    /// Maximum ready entries per stage store.
    pub max_entries: Option<usize>,
    /// Maximum approximate bytes of ready entries per stage store.
    pub max_bytes: Option<u64>,
}

impl CacheBounds {
    /// No limits — the per-sweep default.
    pub fn unbounded() -> Self {
        CacheBounds::default()
    }
}

/// Occupancy and eviction counters of one stage store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreOccupancy {
    /// Ready entries currently resident.
    pub entries: u64,
    /// Approximate bytes of resident ready entries.
    pub bytes: u64,
    /// Ready entries evicted under capacity pressure so far.
    pub evictions: u64,
}

/// A snapshot of every stage store's occupancy, for the serve metrics
/// endpoint. Deliberately separate from [`CacheStats`]: stats travel
/// on the wire in `done` frames and must stay byte-stable, occupancy
/// is daemon-local and volatile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheOccupancy {
    /// Front-end artifacts.
    pub front: StoreOccupancy,
    /// S-graph facts.
    pub facts: StoreOccupancy,
    /// DFT outputs.
    pub dft: StoreOccupancy,
    /// Gate-level expansions.
    pub netlist: StoreOccupancy,
    /// Pseudorandom grading runs.
    pub grading: StoreOccupancy,
}

impl CacheOccupancy {
    /// Total resident entries across all stages.
    pub fn entries(&self) -> u64 {
        self.front.entries
            + self.facts.entries
            + self.dft.entries
            + self.netlist.entries
            + self.grading.entries
    }

    /// Total approximate resident bytes across all stages.
    pub fn bytes(&self) -> u64 {
        self.front.bytes
            + self.facts.bytes
            + self.dft.bytes
            + self.netlist.bytes
            + self.grading.bytes
    }

    /// Total evictions across all stages.
    pub fn evictions(&self) -> u64 {
        self.front.evictions
            + self.facts.evictions
            + self.dft.evictions
            + self.netlist.evictions
            + self.grading.evictions
    }

    /// The occupancy as a JSON object (totals plus per stage).
    pub fn to_json(&self) -> String {
        let stage = |c: StoreOccupancy| {
            let mut o = Obj::new();
            o.number_u64("entries", c.entries)
                .number_u64("bytes", c.bytes)
                .number_u64("evictions", c.evictions);
            o.finish()
        };
        let mut o = Obj::new();
        o.number_u64("entries", self.entries())
            .number_u64("bytes", self.bytes())
            .number_u64("evictions", self.evictions())
            .raw("front", &stage(self.front))
            .raw("facts", &stage(self.facts))
            .raw("dft", &stage(self.dft))
            .raw("netlist", &stage(self.netlist))
            .raw("grading", &stage(self.grading));
        o.finish()
    }
}

/// A slot an in-flight leader settles when its compute finishes (or
/// dies). Waiters block on the condvar and re-check the store map.
struct Flight {
    settled: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            settled: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut settled = self.settled.lock().expect("flight lock");
        while !*settled {
            settled = self.cv.wait(settled).expect("flight lock");
        }
    }

    fn settle(&self) {
        *self.settled.lock().expect("flight lock") = true;
        self.cv.notify_all();
    }
}

/// A finished artifact with its LRU stamp and approximate cost.
struct ReadyEntry<T> {
    value: Arc<T>,
    last_used: u64,
    cost: u64,
}

/// A slot in a store's map: either the finished artifact or a flight
/// the current leader is still computing.
enum Slot<T> {
    Ready(ReadyEntry<T>),
    InFlight(Arc<Flight>),
}

/// The lock-guarded half of a store: the slot map plus the LRU tick
/// and the running byte total of ready entries (in-flight slots cost
/// nothing until they publish).
struct Inner<T> {
    map: HashMap<u64, Slot<T>>,
    tick: u64,
    bytes: u64,
    ready: u64,
}

/// One stage's store: keyed `Arc` values with single-flight misses and
/// optional LRU capacity bounds, plus lookup instrumentation bridged
/// to the trace layer under static counter names.
pub(crate) struct Store<T> {
    inner: Mutex<Inner<T>>,
    bounds: CacheBounds,
    cost_fn: fn(&T) -> u64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    hit_counter: &'static str,
    miss_counter: &'static str,
    coalesced_counter: &'static str,
}

/// Removes a leader's in-flight slot and wakes its waiters unless the
/// leader disarmed it after publishing a ready value. Runs on the
/// error return *and* during unwinding, so a panicking compute (the
/// engine catches point panics) can never strand waiters on a flight
/// nobody is working on.
struct FlightGuard<'a, T> {
    store: &'a Store<T>,
    key: u64,
    flight: Arc<Flight>,
    armed: bool,
}

impl<T> Drop for FlightGuard<'_, T> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut inner = self.store.inner.lock().expect("cache lock");
        if let Some(Slot::InFlight(f)) = inner.map.get(&self.key) {
            if Arc::ptr_eq(f, &self.flight) {
                inner.map.remove(&self.key);
            }
        }
        drop(inner);
        self.flight.settle();
    }
}

impl<T> Store<T> {
    fn new(
        bounds: CacheBounds,
        cost_fn: fn(&T) -> u64,
        hit_counter: &'static str,
        miss_counter: &'static str,
        coalesced_counter: &'static str,
    ) -> Self {
        Store {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
                ready: 0,
            }),
            bounds,
            cost_fn,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hit_counter,
            miss_counter,
            coalesced_counter,
        }
    }

    /// Returns the cached value for `key` plus how the lookup was
    /// served, computing (outside the lock) and inserting on a miss.
    /// Concurrent callers of the same key coalesce onto the first
    /// caller's in-flight compute instead of duplicating it; if that
    /// compute errors or panics, one waiter retakes the lead, so an
    /// `Err` is only ever this caller's own compute failing.
    pub(crate) fn get_or_try<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<(Arc<T>, CacheOutcome), E> {
        let mut waited = false;
        loop {
            let flight = {
                let mut inner = self.inner.lock().expect("cache lock");
                inner.tick += 1;
                let tick = inner.tick;
                match inner.map.get_mut(&key) {
                    Some(Slot::Ready(e)) => {
                        e.last_used = tick;
                        let v = Arc::clone(&e.value);
                        drop(inner);
                        return Ok((v, self.record_served(waited)));
                    }
                    Some(Slot::InFlight(f)) => Arc::clone(f),
                    None => {
                        let f = Arc::new(Flight::new());
                        inner.map.insert(key, Slot::InFlight(Arc::clone(&f)));
                        drop(inner);
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        hlstb_trace::counter(self.miss_counter, 1);
                        let mut guard = FlightGuard {
                            store: self,
                            key,
                            flight: f,
                            armed: true,
                        };
                        // An Err (or a panic) drops the armed guard,
                        // which evicts the flight and wakes waiters.
                        let v = Arc::new(compute()?);
                        self.publish(key, Arc::clone(&v));
                        guard.armed = false;
                        guard.flight.settle();
                        return Ok((v, CacheOutcome::Miss));
                    }
                }
            };
            flight.wait();
            waited = true;
        }
    }

    /// Installs a leader's finished value, then evicts
    /// least-recently-used ready entries until the store is back under
    /// its bounds. In-flight slots are untouchable: they carry waiters
    /// and no bytes. The freshly published entry holds the newest use
    /// tick, so LRU only claims it when it alone exceeds the byte cap
    /// — an artifact the store cannot hold at all.
    fn publish(&self, key: u64, value: Arc<T>) {
        let cost = (self.cost_fn)(value.as_ref());
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let old = inner.map.insert(
            key,
            Slot::Ready(ReadyEntry {
                value,
                last_used: tick,
                cost,
            }),
        );
        inner.bytes += cost;
        inner.ready += 1;
        if let Some(Slot::Ready(e)) = old {
            // A re-publish over an existing ready slot (possible when
            // a guard-evicted leader's waiter recomputed first).
            inner.bytes -= e.cost;
            inner.ready -= 1;
        }
        let over = |inner: &Inner<T>| {
            self.bounds
                .max_entries
                .is_some_and(|cap| inner.ready as usize > cap)
                || self.bounds.max_bytes.is_some_and(|cap| inner.bytes > cap)
        };
        while over(&inner) {
            let victim = inner
                .map
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready(e) => Some((e.last_used, *k)),
                    Slot::InFlight(_) => None,
                })
                .min();
            let Some((_, victim_key)) = victim else { break };
            if let Some(Slot::Ready(e)) = inner.map.remove(&victim_key) {
                inner.bytes -= e.cost;
                inner.ready -= 1;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn record_served(&self, waited: bool) -> CacheOutcome {
        if waited {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            hlstb_trace::counter(self.coalesced_counter, 1);
            CacheOutcome::Coalesced
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hlstb_trace::counter(self.hit_counter, 1);
            CacheOutcome::Hit
        }
    }

    fn counts(&self) -> StageCounts {
        StageCounts {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    fn occupancy(&self) -> StoreOccupancy {
        let inner = self.inner.lock().expect("cache lock");
        StoreOccupancy {
            entries: inner.ready,
            bytes: inner.bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The DFT stage's cached output: the scan-marked data path plus the
/// plans the strategy attached.
#[derive(Debug, Clone)]
pub struct DftOutput {
    /// The data path with the strategy's scan marks applied.
    pub datapath: Datapath,
    /// BIST / test-point plans.
    pub plans: DftPlans,
}

/// Per-stage artifact stores for one sweep.
pub struct ArtifactCache {
    pub(crate) front: Store<FrontEnd>,
    pub(crate) facts: Store<SgraphFacts>,
    pub(crate) dft: Store<DftOutput>,
    pub(crate) netlist: Store<ExpandedDatapath>,
    pub(crate) grading: Store<RandomRun>,
}

/// Coarse per-artifact cost estimates for the byte cap. Exact heap
/// accounting is not worth the coupling; these scale with the fields
/// that dominate each artifact (gate counts, curve lengths, register
/// counts) plus a flat overhead for the rest.
fn front_cost(v: &FrontEnd) -> u64 {
    1024 + 256 * v.datapath.registers().len() as u64 + 8 * v.boundary_scan.len() as u64
}

fn facts_cost(_: &SgraphFacts) -> u64 {
    std::mem::size_of::<SgraphFacts>() as u64
}

fn dft_cost(v: &DftOutput) -> u64 {
    1024 + 256 * v.datapath.registers().len() as u64
}

fn netlist_cost(v: &ExpandedDatapath) -> u64 {
    1024 + 64 * v.netlist.num_gates() as u64
}

fn grading_cost(v: &RandomRun) -> u64 {
    256 + 64 * v.curve.len() as u64
}

impl ArtifactCache {
    /// An empty, unbounded cache — the per-sweep default.
    pub fn new() -> Self {
        ArtifactCache::bounded(CacheBounds::unbounded())
    }

    /// An empty cache whose stage stores each enforce `bounds` with
    /// LRU eviction — the daemon-lifetime configuration.
    pub fn bounded(bounds: CacheBounds) -> Self {
        ArtifactCache {
            front: Store::new(
                bounds,
                front_cost,
                "dse.cache.front.hit",
                "dse.cache.front.miss",
                "dse.cache.front.coalesced",
            ),
            facts: Store::new(
                bounds,
                facts_cost,
                "dse.cache.facts.hit",
                "dse.cache.facts.miss",
                "dse.cache.facts.coalesced",
            ),
            dft: Store::new(
                bounds,
                dft_cost,
                "dse.cache.dft.hit",
                "dse.cache.dft.miss",
                "dse.cache.dft.coalesced",
            ),
            netlist: Store::new(
                bounds,
                netlist_cost,
                "dse.cache.netlist.hit",
                "dse.cache.netlist.miss",
                "dse.cache.netlist.coalesced",
            ),
            grading: Store::new(
                bounds,
                grading_cost,
                "dse.cache.grading.hit",
                "dse.cache.grading.miss",
                "dse.cache.grading.coalesced",
            ),
        }
    }

    /// A snapshot of every stage's lookup counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            front: self.front.counts(),
            facts: self.facts.counts(),
            dft: self.dft.counts(),
            netlist: self.netlist.counts(),
            grading: self.grading.counts(),
        }
    }

    /// A snapshot of every stage's occupancy and eviction counters.
    pub fn occupancy(&self) -> CacheOccupancy {
        CacheOccupancy {
            front: self.front.occupancy(),
            facts: self.facts.occupancy(),
            dft: self.dft.occupancy(),
            netlist: self.netlist.occupancy(),
            grading: self.grading.occupancy(),
        }
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn store_hits_after_first_compute() {
        let cache = ArtifactCache::new();
        let mut computed = 0;
        for round in 0..3 {
            let (v, outcome) = cache
                .facts
                .get_or_try(42, || {
                    computed += 1;
                    Ok::<_, String>(SgraphFacts {
                        cycles: 7,
                        mfvs_size: 2,
                    })
                })
                .unwrap();
            assert_eq!(v.cycles, 7);
            let expect = if round > 0 {
                CacheOutcome::Hit
            } else {
                CacheOutcome::Miss
            };
            assert_eq!(outcome, expect);
        }
        assert_eq!(computed, 1);
        let s = cache.stats();
        assert_eq!(
            s.facts,
            StageCounts {
                hits: 2,
                misses: 1,
                coalesced: 0
            }
        );
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses(), 1);
        assert_eq!(s.coalesced(), 0);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ArtifactCache::new();
        let r = cache
            .facts
            .get_or_try(1, || Err::<SgraphFacts, _>("boom".to_string()));
        assert!(r.is_err());
        // The failed compute left nothing behind; the next call computes.
        let (v, outcome) = cache
            .facts
            .get_or_try(1, || {
                Ok::<_, String>(SgraphFacts {
                    cycles: 1,
                    mfvs_size: 1,
                })
            })
            .unwrap();
        assert_eq!(v.mfvs_size, 1);
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn stats_json_names_every_stage() {
        let j = ArtifactCache::new().stats().to_json();
        for key in [
            "front",
            "facts",
            "dft",
            "netlist",
            "grading",
            "hits",
            "coalesced",
        ] {
            assert!(j.contains(&format!("\"{key}\"")), "{j}");
        }
        assert!(hlstb_trace::json::parse(&j).is_ok(), "{j}");
    }

    /// Racing lookups of one key must run the compute exactly once:
    /// the leader blocks inside its compute on a barrier the main
    /// thread releases only after the waiters have had time to queue
    /// up on the flight.
    #[test]
    fn racing_misses_coalesce_onto_one_compute() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        let cache = ArtifactCache::new();
        let computed = AtomicUsize::new(0);
        let release = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let (v, outcome) = cache
                    .facts
                    .get_or_try(9, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        release.wait();
                        Ok::<_, String>(SgraphFacts {
                            cycles: 3,
                            mfvs_size: 1,
                        })
                    })
                    .unwrap();
                assert_eq!(v.cycles, 3);
                assert_eq!(outcome, CacheOutcome::Miss);
            });
            let waiters: Vec<_> = (0..3)
                .map(|_| {
                    s.spawn(|| {
                        let (v, outcome) = cache
                            .facts
                            .get_or_try(9, || {
                                computed.fetch_add(1, Ordering::SeqCst);
                                Ok::<_, String>(SgraphFacts {
                                    cycles: 3,
                                    mfvs_size: 1,
                                })
                            })
                            .unwrap();
                        assert_eq!(v.cycles, 3);
                        assert_ne!(outcome, CacheOutcome::Miss);
                        outcome
                    })
                })
                .collect();
            // Give the waiters time to block on the flight, then let
            // the leader finish. (The sleep only biases hit vs
            // coalesced; single-flight itself is asserted exactly.)
            std::thread::sleep(Duration::from_millis(50));
            release.wait();
            let outcomes: Vec<_> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
            assert_eq!(computed.load(Ordering::SeqCst), 1);
            let s = cache.stats();
            assert_eq!(s.facts.misses, 1);
            assert_eq!(
                s.facts.hits + s.facts.coalesced,
                outcomes.len() as u64,
                "{s:?}"
            );
        });
    }

    /// A leader whose compute fails must hand the lead to a waiter
    /// instead of caching the error or stranding the flight.
    #[test]
    fn failed_leader_hands_lead_to_waiter() {
        use std::sync::Barrier;

        let cache = ArtifactCache::new();
        let release = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let r = cache.facts.get_or_try(5, || {
                    release.wait();
                    Err::<SgraphFacts, _>("boom".to_string())
                });
                assert!(r.is_err());
            });
            let waiter = s.spawn(|| {
                cache
                    .facts
                    .get_or_try(5, || {
                        Ok::<_, String>(SgraphFacts {
                            cycles: 2,
                            mfvs_size: 2,
                        })
                    })
                    .unwrap()
            });
            std::thread::sleep(Duration::from_millis(50));
            release.wait();
            let (v, _) = waiter.join().unwrap();
            assert_eq!(v.cycles, 2);
        });
        let s = cache.stats();
        // Both the failed and the succeeding compute count as misses.
        assert_eq!(s.facts.misses, 2);
    }

    /// A panicking leader (the engine catches point panics) must not
    /// strand waiters: the drop guard evicts the flight and a waiter
    /// recomputes.
    #[test]
    fn panicking_leader_does_not_strand_waiters() {
        use std::sync::Barrier;

        let cache = ArtifactCache::new();
        let release = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache
                        .facts
                        .get_or_try(6, || -> Result<SgraphFacts, String> {
                            release.wait();
                            panic!("injected")
                        })
                }));
                assert!(r.is_err());
            });
            let waiter = s.spawn(|| {
                cache
                    .facts
                    .get_or_try(6, || {
                        Ok::<_, String>(SgraphFacts {
                            cycles: 4,
                            mfvs_size: 4,
                        })
                    })
                    .unwrap()
            });
            std::thread::sleep(Duration::from_millis(50));
            release.wait();
            let (v, _) = waiter.join().unwrap();
            assert_eq!(v.cycles, 4);
        });
    }

    fn facts_of(cycles: usize) -> SgraphFacts {
        SgraphFacts {
            cycles,
            mfvs_size: 1,
        }
    }

    /// An entry-capped store evicts in least-recently-used order: a
    /// re-touched old key outlives a colder, newer one.
    #[test]
    fn bounded_store_evicts_least_recently_used() {
        let cache = ArtifactCache::bounded(CacheBounds {
            max_entries: Some(2),
            max_bytes: None,
        });
        for key in [1u64, 2] {
            cache
                .facts
                .get_or_try(key, || Ok::<_, String>(facts_of(key as usize)))
                .unwrap();
        }
        // Touch key 1 so key 2 becomes the LRU victim.
        let (_, outcome) = cache
            .facts
            .get_or_try(1, || Ok::<_, String>(facts_of(99)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        cache
            .facts
            .get_or_try(3, || Ok::<_, String>(facts_of(3)))
            .unwrap();
        // Key 1 survived, key 2 was evicted and recomputes.
        let (v, outcome) = cache
            .facts
            .get_or_try(1, || Ok::<_, String>(facts_of(99)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(v.cycles, 1);
        let (_, outcome) = cache
            .facts
            .get_or_try(2, || Ok::<_, String>(facts_of(2)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let occ = cache.occupancy();
        assert_eq!(occ.facts.entries, 2);
        assert_eq!(occ.facts.evictions, 2, "{occ:?}");
        assert_eq!(occ.evictions(), 2);
    }

    /// The byte cap evicts by approximate cost, and occupancy bytes
    /// track residents exactly (insert adds, evict subtracts).
    #[test]
    fn byte_cap_bounds_resident_cost() {
        let unit = std::mem::size_of::<SgraphFacts>() as u64;
        let cache = ArtifactCache::bounded(CacheBounds {
            max_entries: None,
            max_bytes: Some(3 * unit),
        });
        for key in 0..10u64 {
            cache
                .facts
                .get_or_try(key, || Ok::<_, String>(facts_of(key as usize)))
                .unwrap();
            let occ = cache.occupancy().facts;
            assert!(occ.bytes <= 3 * unit, "{occ:?}");
            assert_eq!(occ.bytes, occ.entries * unit);
        }
        let occ = cache.occupancy().facts;
        assert_eq!(occ.entries, 3);
        assert_eq!(occ.evictions, 7);
    }

    /// Unbounded caches never evict and report zero eviction pressure.
    #[test]
    fn unbounded_cache_reports_occupancy_without_evictions() {
        let cache = ArtifactCache::new();
        for key in 0..5u64 {
            cache
                .facts
                .get_or_try(key, || Ok::<_, String>(facts_of(key as usize)))
                .unwrap();
        }
        let occ = cache.occupancy();
        assert_eq!(occ.facts.entries, 5);
        assert_eq!(occ.evictions(), 0);
        assert!(occ.bytes() > 0);
        let j = occ.to_json();
        for key in ["entries", "bytes", "evictions", "front", "grading"] {
            assert!(j.contains(&format!("\"{key}\"")), "{j}");
        }
        assert!(hlstb_trace::json::parse(&j).is_ok(), "{j}");
    }

    /// Capacity pressure must not evict an in-flight slot: the leader
    /// publishes and its waiters all get the value even when the store
    /// is saturated by other inserts while the flight is open.
    #[test]
    fn inflight_slots_survive_capacity_pressure() {
        use std::sync::Barrier;

        let cache = ArtifactCache::bounded(CacheBounds {
            max_entries: Some(1),
            max_bytes: None,
        });
        let release = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                let (v, outcome) = cache
                    .facts
                    .get_or_try(7, || {
                        release.wait();
                        Ok::<_, String>(facts_of(7))
                    })
                    .unwrap();
                assert_eq!(v.cycles, 7);
                assert_eq!(outcome, CacheOutcome::Miss);
            });
            let waiter = s.spawn(|| {
                cache
                    .facts
                    .get_or_try(7, || Ok::<_, String>(facts_of(7)))
                    .unwrap()
            });
            std::thread::sleep(Duration::from_millis(30));
            // Saturate the store while the flight is open.
            for key in 100..105u64 {
                cache
                    .facts
                    .get_or_try(key, || Ok::<_, String>(facts_of(0)))
                    .unwrap();
            }
            release.wait();
            let (v, _) = waiter.join().unwrap();
            assert_eq!(v.cycles, 7);
        });
        assert!(cache.occupancy().facts.entries <= 1);
    }

    #[test]
    fn stats_round_trip_json_and_merge() {
        let a = CacheStats {
            front: StageCounts {
                hits: 3,
                misses: 2,
                coalesced: 1,
            },
            grading: StageCounts {
                hits: 0,
                misses: 7,
                coalesced: 0,
            },
            ..CacheStats::default()
        };
        let v = hlstb_trace::json::parse(&a.to_json()).expect("stats render as JSON");
        let back = CacheStats::from_json(&v).expect("stats parse back");
        assert_eq!(back, a);
        // Totals are derived from the parsed stages.
        assert_eq!(back.hits(), 3);
        assert_eq!(back.misses(), 9);
        // Merge is per-stage addition.
        let mut sum = back;
        sum.merge(&a);
        assert_eq!(sum.front.hits, 6);
        assert_eq!(sum.grading.misses, 14);
        assert_eq!(sum.coalesced(), 2);
        // A non-stats object is rejected, not zero-filled.
        let bogus = hlstb_trace::json::parse("{\"hits\": 1}").unwrap();
        assert!(CacheStats::from_json(&bogus).is_none());
    }
}
