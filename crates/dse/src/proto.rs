//! The coordinator ⇄ worker wire protocol for scale-out sweeps.
//!
//! # Framing
//!
//! Line-delimited JSON in both directions — one object per `\n`-framed
//! line, no length prefixes, no binary — so the transport only needs
//! to be an ordered byte stream. Today that stream is a worker
//! process's stdin/stdout pipe pair ([`crate::worker::WorkerLink`]) or
//! an in-memory loopback; a TCP socket satisfies the same contract and
//! can slot in without touching the frame layer.
//!
//! # Frames
//!
//! Coordinator → worker ([`ToWorker`]):
//!
//! ```text
//! {"type": "hello", "v": 2, "worker": 0, "spec": {…}, "opts": {…}}
//! {"type": "lease", "start": 0, "end": 4}
//! {"type": "shutdown"}
//! ```
//!
//! Worker → coordinator ([`FromWorker`]):
//!
//! ```text
//! {"type": "ready", "worker": 0, "points": 297}
//! {"v": 1, "key": "<16-hex>", "index": 3, "canonical": "<escaped JSON>"}
//! {"type": "done", "start": 0, "end": 4, "points": 4, "retries": 0, "cache": {…}}
//! {"type": "error", "message": "…"}
//! ```
//!
//! The `done` frame's trailing counters are cumulative over the
//! worker's session ([`DoneStats`]); the coordinator keeps the latest
//! snapshot per lane and sums them fleet-wide into the report
//! envelope. (The point frame's `"v"` is the checkpoint format
//! version, unrelated to [`PROTO_VERSION`].)
//!
//! The point frame is **exactly** the checkpoint record line of
//! [`crate::checkpoint`] — same encoder, same parser — so a worker's
//! stream is literally a checkpoint of its leased points and the
//! coordinator splices the embedded canonical bytes verbatim. It is
//! distinguished from control frames by its `"v"` field (control
//! frames carry `"type"` instead).
//!
//! The spec travels by *name*: designs are referenced by their
//! benchmark-catalogue names plus a combined content hash the worker
//! verifies after resolving, and the axes use the same name vocabulary
//! as the CLI ([`crate::spec`]). Any decode failure anywhere maps to
//! [`PointError::Io`] — the typed, non-retryable "the transport or
//! peer is broken" verdict the coordinator answers by re-issuing the
//! dead worker's leases elsewhere.

use std::time::Duration;

use hlstb::cdfg::{benchmarks, Cdfg};

use crate::checkpoint;
use crate::engine::SweepOptions;
use crate::error::PointError;
use crate::failpoint::FailPlan;
use crate::key;
use crate::spec::{self, SweepSpec};
use hlstb_trace::json::{self, Arr, Obj, Value};

/// Protocol version; bumped on any frame-layout change (v2: the `done`
/// frame grew cumulative per-worker counters and cache stats).
pub const PROTO_VERSION: u64 = 2;

/// A frame the coordinator sends to a worker.
#[derive(Debug, Clone)]
pub enum ToWorker {
    /// Session setup: the worker's id, the sweep spec, and the
    /// evaluation options (including any injected fail plan).
    Hello(Box<Hello>),
    /// A leased half-open index range `[start, end)` to evaluate.
    Lease {
        /// First point index of the lease.
        start: usize,
        /// One past the last point index.
        end: usize,
    },
    /// No more leases; exit cleanly.
    Shutdown,
}

/// The decoded `hello` payload.
#[derive(Debug, Clone)]
pub struct Hello {
    /// The worker's lane id (journals + diagnostics).
    pub worker: u32,
    /// The sweep spec, resolved and hash-verified.
    pub spec: SweepSpec,
    /// Evaluation options for this worker.
    pub opts: SweepOptions,
    /// The coordinator's injected fail plan, if any.
    pub fail_plan: Option<FailPlan>,
}

/// A frame a worker sends to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum FromWorker {
    /// Handshake reply: the worker resolved the spec to `points`
    /// points (the coordinator cross-checks the count).
    Ready {
        /// Echoed worker id.
        worker: u32,
        /// Points the worker's resolved spec enumerates.
        points: usize,
    },
    /// One completed point in checkpoint-record form.
    Point {
        /// The point's content key.
        key: u64,
        /// The point's index.
        index: usize,
        /// The point's canonical JSON, verbatim.
        canonical: String,
    },
    /// A lease fully evaluated and streamed, with the worker's
    /// cumulative session counters.
    Done {
        /// Echoed lease start.
        start: usize,
        /// Echoed lease end.
        end: usize,
        /// Cumulative counters for the worker's whole session (not
        /// just this lease), so the coordinator keeps only the latest
        /// snapshot per lane.
        stats: DoneStats,
    },
    /// The worker is giving up (spec mismatch, internal failure).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Cumulative per-worker counters carried by every `done` frame, so
/// the coordinator can aggregate evaluation effort fleet-wide without
/// a separate stats round-trip. Counters are monotone over a worker's
/// session; the coordinator keeps the latest snapshot per lane.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DoneStats {
    /// Points the worker has streamed back so far (all leases).
    pub points: u64,
    /// Transient-failure retries the worker's bounded-retry policy
    /// performed so far.
    pub retries: u64,
    /// The worker's stage-cache counters, when its cache is enabled.
    pub cache: Option<crate::cache::CacheStats>,
}

fn io_err(what: impl std::fmt::Display) -> PointError {
    PointError::Io {
        message: format!("proto: {what}"),
    }
}

fn field_usize(v: &Value, key: &str) -> Result<usize, PointError> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|n| n as usize)
        .ok_or_else(|| io_err(format!("frame missing numeric `{key}`")))
}

/// Renders a spec as its wire object: design *names* plus a combined
/// content hash, and every axis in CLI name vocabulary. Public so the
/// serve request protocol can embed exactly the same spec object.
pub fn spec_to_json(spec: &SweepSpec) -> String {
    let names = |items: &[String]| {
        let mut a = Arr::new();
        for s in items {
            a.string(s);
        }
        a.finish()
    };
    let numbers = |items: &[u64]| {
        let mut a = Arr::new();
        for n in items {
            a.raw(&n.to_string());
        }
        a.finish()
    };
    let design_names: Vec<String> = spec.designs.iter().map(|d| d.name().to_string()).collect();
    let design_keys: Vec<u64> = spec.designs.iter().map(key::hash_debug).collect();
    let mut o = Obj::new();
    o.raw("designs", &names(&design_names))
        .string(
            "design_hash",
            &format!("{:016x}", key::combine(&design_keys)),
        )
        .raw(
            "schedulers",
            &names(
                &spec
                    .schedulers
                    .iter()
                    .map(|&s| spec::scheduler_name(s))
                    .collect::<Vec<_>>(),
            ),
        )
        .raw(
            "policies",
            &names(
                &spec
                    .policies
                    .iter()
                    .map(|&p| spec::policy_name(p).to_string())
                    .collect::<Vec<_>>(),
            ),
        )
        .raw(
            "strategies",
            &names(
                &spec
                    .strategies
                    .iter()
                    .map(|&s| spec::strategy_name(s))
                    .collect::<Vec<_>>(),
            ),
        )
        .raw(
            "widths",
            &numbers(
                &spec
                    .widths
                    .iter()
                    .map(|&w| u64::from(w))
                    .collect::<Vec<_>>(),
            ),
        )
        .raw(
            "patterns",
            &numbers(&spec.patterns.iter().map(|&p| p as u64).collect::<Vec<_>>()),
        )
        .boolean("reset_controller", spec.reset_controller);
    o.finish()
}

/// Resolves a wire spec object back into a [`SweepSpec`]: designs by
/// catalogue name, axes by CLI vocabulary, then verifies the combined
/// design content hash so a version-skewed worker fails loudly instead
/// of silently computing different bytes. Public for the serve request
/// protocol.
pub fn spec_from_json(v: &Value) -> Result<SweepSpec, PointError> {
    let str_list = |key: &str| -> Result<Vec<String>, PointError> {
        v.get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| io_err(format!("spec missing `{key}`")))?
            .iter()
            .map(|x| {
                x.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| io_err(format!("non-string entry in spec `{key}`")))
            })
            .collect()
    };
    let catalogue: Vec<Cdfg> = benchmarks::all();
    let mut designs = Vec::new();
    for name in str_list("designs")? {
        let d = catalogue
            .iter()
            .find(|d| d.name() == name)
            .ok_or_else(|| io_err(format!("unknown design `{name}` in wire spec")))?;
        designs.push(d.clone());
    }
    let design_keys: Vec<u64> = designs.iter().map(key::hash_debug).collect();
    let got = format!("{:016x}", key::combine(&design_keys));
    let want = v
        .get("design_hash")
        .and_then(Value::as_str)
        .ok_or_else(|| io_err("spec missing `design_hash`"))?;
    if got != want {
        return Err(io_err(format!(
            "design content hash mismatch: coordinator {want}, worker {got} — version skew?"
        )));
    }
    let schedulers = str_list("schedulers")?
        .iter()
        .map(|s| spec::parse_scheduler(s).ok_or_else(|| io_err(format!("bad scheduler `{s}`"))))
        .collect::<Result<Vec<_>, _>>()?;
    let policies = str_list("policies")?
        .iter()
        .map(|s| spec::parse_policy(s).ok_or_else(|| io_err(format!("bad policy `{s}`"))))
        .collect::<Result<Vec<_>, _>>()?;
    let strategies = str_list("strategies")?
        .iter()
        .map(|s| spec::parse_strategy(s).ok_or_else(|| io_err(format!("bad strategy `{s}`"))))
        .collect::<Result<Vec<_>, _>>()?;
    let num_list = |key: &str| -> Result<Vec<u64>, PointError> {
        v.get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| io_err(format!("spec missing `{key}`")))?
            .iter()
            .map(|x| {
                x.as_f64()
                    .map(|n| n as u64)
                    .ok_or_else(|| io_err(format!("non-numeric entry in spec `{key}`")))
            })
            .collect()
    };
    Ok(SweepSpec {
        designs,
        schedulers,
        policies,
        strategies,
        widths: num_list("widths")?.iter().map(|&w| w as u32).collect(),
        patterns: num_list("patterns")?.iter().map(|&p| p as usize).collect(),
        reset_controller: v
            .get("reset_controller")
            .and_then(Value::as_bool)
            .unwrap_or(false),
    })
}

/// Encodes the session-setup frame.
pub fn encode_hello(
    worker: u32,
    spec: &SweepSpec,
    opts: &SweepOptions,
    fail_plan: Option<&FailPlan>,
) -> String {
    let mut oo = Obj::new();
    oo.boolean("cache", opts.cache);
    match opts.point_budget {
        Some(b) => oo.number_u64("point_budget_ms", b.as_millis() as u64),
        None => oo.raw("point_budget_ms", "null"),
    };
    oo.number_u64("retries", u64::from(opts.retries));
    let mut o = Obj::new();
    o.string("type", "hello")
        .number_u64("v", PROTO_VERSION)
        .number_u64("worker", u64::from(worker))
        .raw("spec", &spec_to_json(spec))
        .raw("opts", &oo.finish());
    if let Some(plan) = fail_plan {
        o.string("fail_plan", &plan.to_spec());
    }
    o.finish()
}

/// Encodes a lease frame for `[start, end)`.
pub fn encode_lease(start: usize, end: usize) -> String {
    let mut o = Obj::new();
    o.string("type", "lease")
        .number_u64("start", start as u64)
        .number_u64("end", end as u64);
    o.finish()
}

/// Encodes the shutdown frame.
pub fn encode_shutdown() -> String {
    let mut o = Obj::new();
    o.string("type", "shutdown");
    o.finish()
}

/// Encodes a worker's handshake reply.
pub fn encode_ready(worker: u32, points: usize) -> String {
    let mut o = Obj::new();
    o.string("type", "ready")
        .number_u64("worker", u64::from(worker))
        .number_u64("points", points as u64);
    o.finish()
}

/// Encodes one completed point — byte-identical to the checkpoint
/// record line for the same arguments.
pub fn encode_point(key: u64, index: usize, canonical: &str) -> String {
    checkpoint::encode_line(key, index, canonical)
}

/// Encodes a lease-complete frame carrying the worker's cumulative
/// session counters.
pub fn encode_done(start: usize, end: usize, stats: &DoneStats) -> String {
    let mut o = Obj::new();
    o.string("type", "done")
        .number_u64("start", start as u64)
        .number_u64("end", end as u64)
        .number_u64("points", stats.points)
        .number_u64("retries", stats.retries);
    match &stats.cache {
        Some(c) => o.raw("cache", &c.to_json()),
        None => o.raw("cache", "null"),
    };
    o.finish()
}

/// Encodes a worker's terminal error report.
pub fn encode_error(message: &str) -> String {
    let mut o = Obj::new();
    o.string("type", "error").string("message", message);
    o.finish()
}

/// Decodes one coordinator → worker line.
///
/// # Errors
///
/// [`PointError::Io`] on malformed JSON, an unknown frame type, a
/// protocol-version mismatch, or an unresolvable spec.
pub fn decode_to_worker(line: &str) -> Result<ToWorker, PointError> {
    let v = json::parse(line.trim_end()).map_err(|e| io_err(format!("bad frame: {e}")))?;
    match v.get("type").and_then(Value::as_str) {
        Some("hello") => {
            let ver = v.get("v").and_then(Value::as_f64).unwrap_or(0.0) as u64;
            if ver != PROTO_VERSION {
                return Err(io_err(format!(
                    "protocol version mismatch: got {ver}, want {PROTO_VERSION}"
                )));
            }
            let worker = field_usize(&v, "worker")? as u32;
            let spec = spec_from_json(
                v.get("spec")
                    .ok_or_else(|| io_err("hello missing `spec`"))?,
            )?;
            let opts_v = v
                .get("opts")
                .ok_or_else(|| io_err("hello missing `opts`"))?;
            let opts = SweepOptions {
                threads: 1,
                cache: opts_v.get("cache").and_then(Value::as_bool).unwrap_or(true),
                keep_designs: false,
                point_budget: opts_v
                    .get("point_budget_ms")
                    .and_then(Value::as_f64)
                    .map(|ms| Duration::from_millis(ms as u64)),
                retries: opts_v
                    .get("retries")
                    .and_then(Value::as_f64)
                    .map_or(1, |r| r as u32),
                progress: false,
            };
            let fail_plan = match v.get("fail_plan").and_then(Value::as_str) {
                Some(s) => {
                    Some(FailPlan::parse(s).map_err(|e| io_err(format!("bad fail plan: {e}")))?)
                }
                None => None,
            };
            Ok(ToWorker::Hello(Box::new(Hello {
                worker,
                spec,
                opts,
                fail_plan,
            })))
        }
        Some("lease") => Ok(ToWorker::Lease {
            start: field_usize(&v, "start")?,
            end: field_usize(&v, "end")?,
        }),
        Some("shutdown") => Ok(ToWorker::Shutdown),
        Some(t) => Err(io_err(format!("unknown coordinator frame `{t}`"))),
        None => Err(io_err("coordinator frame missing `type`")),
    }
}

/// Decodes one worker → coordinator line. Point frames (the checkpoint
/// record format) are recognized by their `"v"` field; everything else
/// must carry a `"type"`.
///
/// # Errors
///
/// [`PointError::Io`] on malformed JSON or an unknown frame — which is
/// exactly what a worker killed mid-record leaves behind, so the
/// coordinator treats any decode error as that worker's death.
pub fn decode_from_worker(line: &str) -> Result<FromWorker, PointError> {
    let trimmed = line.trim_end();
    if let Some((key, index, canonical)) = checkpoint::parse_line(trimmed) {
        return Ok(FromWorker::Point {
            key,
            index,
            canonical,
        });
    }
    let v = json::parse(trimmed).map_err(|e| io_err(format!("bad frame: {e}")))?;
    match v.get("type").and_then(Value::as_str) {
        Some("ready") => Ok(FromWorker::Ready {
            worker: field_usize(&v, "worker")? as u32,
            points: field_usize(&v, "points")?,
        }),
        Some("done") => Ok(FromWorker::Done {
            start: field_usize(&v, "start")?,
            end: field_usize(&v, "end")?,
            stats: DoneStats {
                points: field_usize(&v, "points")? as u64,
                retries: field_usize(&v, "retries")? as u64,
                cache: v.get("cache").and_then(crate::cache::CacheStats::from_json),
            },
        }),
        Some("error") => Ok(FromWorker::Error {
            message: v
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or("unspecified worker error")
                .to_string(),
        }),
        Some(t) => Err(io_err(format!("unknown worker frame `{t}`"))),
        None => Err(io_err(
            "worker frame is neither a point record nor a typed control frame",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hlstb::flow::DftStrategy;

    fn sample_spec() -> SweepSpec {
        let mut spec = SweepSpec::new(vec![benchmarks::figure1(), benchmarks::tseng()]);
        spec.strategies = vec![
            DftStrategy::None,
            DftStrategy::FullScan,
            DftStrategy::KLevelTestPoints(2),
        ];
        spec.widths = vec![4, 8];
        spec.patterns = vec![0, 64];
        spec
    }

    #[test]
    fn hello_round_trips_spec_opts_and_fail_plan() {
        let spec = sample_spec();
        let opts = SweepOptions {
            cache: true,
            point_budget: Some(Duration::from_millis(250)),
            retries: 2,
            ..SweepOptions::default()
        };
        let plan = FailPlan::parse("panic:1;flaky:3").unwrap();
        let line = encode_hello(5, &spec, &opts, Some(&plan));
        let ToWorker::Hello(h) = decode_to_worker(&line).unwrap() else {
            panic!("not a hello");
        };
        assert_eq!(h.worker, 5);
        assert_eq!(h.spec.points().len(), spec.points().len());
        assert_eq!(h.spec.widths, spec.widths);
        assert_eq!(h.spec.patterns, spec.patterns);
        assert_eq!(h.spec.strategies, spec.strategies);
        assert_eq!(h.opts.cache, opts.cache);
        assert_eq!(h.opts.point_budget, opts.point_budget);
        assert_eq!(h.opts.retries, opts.retries);
        assert_eq!(h.fail_plan, Some(plan));
        // The resolved designs hash identically, so point keys agree.
        let keys: Vec<u64> = spec.designs.iter().map(crate::key::hash_debug).collect();
        let got: Vec<u64> = h.spec.designs.iter().map(crate::key::hash_debug).collect();
        assert_eq!(keys, got);
    }

    #[test]
    fn control_frames_round_trip() {
        assert!(matches!(
            decode_to_worker(&encode_lease(3, 9)).unwrap(),
            ToWorker::Lease { start: 3, end: 9 }
        ));
        assert!(matches!(
            decode_to_worker(&encode_shutdown()).unwrap(),
            ToWorker::Shutdown
        ));
        assert_eq!(
            decode_from_worker(&encode_ready(2, 297)).unwrap(),
            FromWorker::Ready {
                worker: 2,
                points: 297
            }
        );
        let stats = DoneStats {
            points: 4,
            retries: 1,
            cache: Some(crate::cache::CacheStats::default()),
        };
        assert_eq!(
            decode_from_worker(&encode_done(0, 4, &stats)).unwrap(),
            FromWorker::Done {
                start: 0,
                end: 4,
                stats: stats.clone()
            }
        );
        // A cache-off worker reports a null cache, decoded as None.
        let no_cache = DoneStats {
            cache: None,
            ..stats
        };
        assert_eq!(
            decode_from_worker(&encode_done(0, 4, &no_cache)).unwrap(),
            FromWorker::Done {
                start: 0,
                end: 4,
                stats: no_cache
            }
        );
        assert_eq!(
            decode_from_worker(&encode_error("boom")).unwrap(),
            FromWorker::Error {
                message: "boom".into()
            }
        );
    }

    #[test]
    fn point_frames_are_checkpoint_lines() {
        let line = encode_point(0xAB, 7, "{\"index\": 7}");
        assert_eq!(line, checkpoint::encode_line(0xAB, 7, "{\"index\": 7}"));
        assert_eq!(
            decode_from_worker(&line).unwrap(),
            FromWorker::Point {
                key: 0xAB,
                index: 7,
                canonical: "{\"index\": 7}".into()
            }
        );
    }

    #[test]
    fn malformed_lines_are_typed_io_errors() {
        for bad in [
            "",
            "not json",
            "{\"type\": \"bogus\"}",
            "{\"no\": \"type\"}",
            "{\"type\": \"lease\", \"start\": 1}",
            "{\"v\": 1, \"key\": \"zz\"}",
        ] {
            let e = decode_from_worker(bad).unwrap_err();
            assert_eq!(e.kind(), "io", "{bad}");
            let e = decode_to_worker(bad).unwrap_err();
            assert_eq!(e.kind(), "io", "{bad}");
        }
        // A torn point record (killed mid-write) is an Io error too.
        let whole = encode_point(0x1, 0, "{\"index\": 0}");
        let torn = &whole[..whole.len() / 2];
        assert_eq!(decode_from_worker(torn).unwrap_err().kind(), "io");
    }

    #[test]
    fn version_skew_and_unknown_designs_are_rejected() {
        let spec = sample_spec();
        let line = encode_hello(0, &spec, &SweepOptions::default(), None);
        let skewed = line.replace(&format!("\"v\": {PROTO_VERSION}"), "\"v\": 99");
        assert!(decode_to_worker(&skewed)
            .unwrap_err()
            .message()
            .contains("version mismatch"));
        let renamed = line.replace("figure1", "not_a_design");
        assert!(decode_to_worker(&renamed)
            .unwrap_err()
            .message()
            .contains("unknown design"));
    }
}
