//! The typed per-point failure taxonomy.
//!
//! Every way a sweep point can fail maps onto one [`PointError`]
//! variant, so callers (the report renderer, the CLI table, the retry
//! policy) can branch on *kind* instead of scraping strings:
//!
//! * `Panic` — the point's evaluation panicked; the worker caught the
//!   unwind and rendered the payload. Retryable (the panic may be a
//!   transient environmental failure; a deterministic bug fails again
//!   and is reported after the bounded retries).
//! * `Timeout` — the point exceeded its wall-clock budget before
//!   producing any gradable result. Retryable with a shrunken budget.
//!   (A point whose *grading* is merely truncated by the deadline is
//!   not an error: it reports partial coverage flagged `timed_out`.)
//! * `Flow` — a synthesis stage rejected the point
//!   ([`hlstb::flow::FlowError`], rendered). Deterministic, never
//!   retried.
//! * `Io` — checkpoint or report I/O failed. Deterministic for a given
//!   environment, never retried.
//!
//! The enum stores rendered messages rather than source errors so it
//! stays `Clone + Eq` (sweep reports are cloned and diffed by tests)
//! and round-trips losslessly through the JSONL checkpoint.

use std::fmt;

use hlstb::flow::FlowError;
use hlstb_trace::json::Obj;

/// Why one sweep point failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointError {
    /// The evaluation panicked; the message is the rendered payload.
    Panic {
        /// Rendered panic payload.
        message: String,
    },
    /// The point's wall-clock budget expired before any result existed.
    Timeout {
        /// What ran out of time.
        message: String,
    },
    /// A synthesis stage failed (scheduling, binding, data path,
    /// expansion) — the rendered [`FlowError`], stage prefix included.
    Flow {
        /// Rendered flow error.
        message: String,
    },
    /// Checkpoint or report I/O failed.
    Io {
        /// Rendered I/O error.
        message: String,
    },
}

impl PointError {
    /// The canonical kind tag (`"panic"`, `"timeout"`, `"flow"`,
    /// `"io"`) used in JSON output and the checkpoint format.
    pub fn kind(&self) -> &'static str {
        match self {
            PointError::Panic { .. } => "panic",
            PointError::Timeout { .. } => "timeout",
            PointError::Flow { .. } => "flow",
            PointError::Io { .. } => "io",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        match self {
            PointError::Panic { message }
            | PointError::Timeout { message }
            | PointError::Flow { message }
            | PointError::Io { message } => message,
        }
    }

    /// Whether the sweep's bounded retry policy should try the point
    /// again: panics and timeouts may be transient, flow and I/O
    /// failures are deterministic verdicts.
    pub fn retryable(&self) -> bool {
        matches!(self, PointError::Panic { .. } | PointError::Timeout { .. })
    }

    /// Rebuilds an error from its serialized `(kind, message)` pair —
    /// the inverse of [`kind`](Self::kind)/[`message`](Self::message),
    /// used when restoring checkpointed failures.
    pub fn from_parts(kind: &str, message: &str) -> Option<PointError> {
        let message = message.to_string();
        Some(match kind {
            "panic" => PointError::Panic { message },
            "timeout" => PointError::Timeout { message },
            "flow" => PointError::Flow { message },
            "io" => PointError::Io { message },
            _ => return None,
        })
    }

    /// The error as a canonical JSON object: `{"kind": …, "message": …}`.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.string("kind", self.kind())
            .string("message", self.message());
        o.finish()
    }
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for PointError {}

impl From<FlowError> for PointError {
    fn from(e: FlowError) -> Self {
        PointError::Flow {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<PointError> {
        vec![
            PointError::Panic {
                message: "boom".into(),
            },
            PointError::Timeout {
                message: "budget".into(),
            },
            PointError::Flow {
                message: "scheduling: infeasible".into(),
            },
            PointError::Io {
                message: "disk full".into(),
            },
        ]
    }

    #[test]
    fn kinds_round_trip_through_parts() {
        for e in samples() {
            let back = PointError::from_parts(e.kind(), e.message()).unwrap();
            assert_eq!(back, e);
        }
        assert!(PointError::from_parts("gremlin", "x").is_none());
    }

    #[test]
    fn only_panic_and_timeout_are_retryable() {
        let r: Vec<bool> = samples().iter().map(PointError::retryable).collect();
        assert_eq!(r, vec![true, true, false, false]);
    }

    #[test]
    fn json_and_display_carry_kind_and_message() {
        let e = PointError::Timeout {
            message: "point 3".into(),
        };
        assert_eq!(e.to_json(), r#"{"kind": "timeout", "message": "point 3"}"#);
        assert_eq!(e.to_string(), "timeout: point 3");
    }
}
