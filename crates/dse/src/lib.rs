//! `hlstb-dse` — batched, parallel design-space exploration over the
//! synthesis-for-testability flow.
//!
//! The survey's whole point is comparative: its results are tables of
//! many (benchmark × DFT strategy) synthesis points. Evaluating such a
//! sweep one [`hlstb::flow::SynthesisFlow::run`] at a time re-runs
//! scheduling, binding, data-path construction, and gate-level
//! expansion from scratch for strategies that share an identical front
//! end. This crate removes that redundancy:
//!
//! * [`spec::SweepSpec`] enumerates points over designs × schedulers ×
//!   register policies × DFT strategies × widths × grading depths;
//! * [`engine::run_sweep`] executes the points on a work-stealing pool
//!   (`std::thread::scope` workers pulling from a shared atomic
//!   injector — no new dependencies);
//! * [`cache::ArtifactCache`] memoizes stage outputs under
//!   content-derived keys so points differing only in DFT strategy
//!   reuse everything up to DFT insertion, points whose marked data
//!   paths coincide (every no-scan strategy) share one gate-level
//!   netlist, and one maximal-depth pseudorandom grading run serves
//!   every pattern budget of a netlist;
//! * [`report::SweepReport`] collects per-point metrics *ordered by
//!   point index* regardless of completion order, so the parallel
//!   sweep's canonical output is byte-identical to the serial one.
//!
//! Cache hits and misses surface as `hlstb-trace` counters
//! (`dse.cache.<stage>.hit` / `.miss`) and every point runs under a
//! `dse.point` span.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod key;
pub mod report;
pub mod spec;

pub use cache::{ArtifactCache, CacheStats};
pub use engine::{run_sweep, SweepOptions, SweepOutcome};
pub use report::{PointMetrics, PointRecord, SweepReport};
pub use spec::{Point, SweepSpec};
