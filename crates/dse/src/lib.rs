//! `hlstb-dse` — batched, parallel design-space exploration over the
//! synthesis-for-testability flow.
//!
//! The survey's whole point is comparative: its results are tables of
//! many (benchmark × DFT strategy) synthesis points. Evaluating such a
//! sweep one [`hlstb::flow::SynthesisFlow::run`] at a time re-runs
//! scheduling, binding, data-path construction, and gate-level
//! expansion from scratch for strategies that share an identical front
//! end. This crate removes that redundancy:
//!
//! * [`spec::SweepSpec`] enumerates points over designs × schedulers ×
//!   register policies × DFT strategies × widths × grading depths;
//! * [`engine::run_sweep`] executes the points on a work-stealing pool
//!   (`std::thread::scope` workers pulling from a shared atomic
//!   injector — no new dependencies);
//! * [`cache::ArtifactCache`] memoizes stage outputs under
//!   content-derived keys so points differing only in DFT strategy
//!   reuse everything up to DFT insertion, points whose marked data
//!   paths coincide (every no-scan strategy) share one gate-level
//!   netlist, and one maximal-depth pseudorandom grading run serves
//!   every pattern budget of a netlist;
//! * [`report::SweepReport`] collects per-point metrics *ordered by
//!   point index* regardless of completion order, so the parallel
//!   sweep's canonical output is byte-identical to the serial one.
//!
//! The cache is *single-flight*: when several workers miss the same
//! key at once, one computes while the rest block on the in-flight
//! slot and are served the shared result (counted as `coalesced`), so
//! a threaded cached sweep never duplicates a stage computation.
//! Cache hits, misses, and coalesced waits surface as `hlstb-trace`
//! counters (`dse.cache.<stage>.hit` / `.miss` / `.coalesced`) and
//! every point runs under a `dse.point` span.
//!
//! # Scale-out
//!
//! [`worker::run_sweep_workers`] shards a sweep over worker
//! *processes* (`hlstb sweep --workers N`) speaking the newline-framed
//! [`proto`] wire protocol over stdin/stdout pipes, with leases
//! re-issued when a worker dies and results spliced byte-identically
//! from checkpoint-format frames.
//!
//! # Fault tolerance
//!
//! The sweep is robust against individual points failing:
//!
//! * a panicking point is isolated ([`std::panic::catch_unwind`]) and
//!   reported as a typed [`error::PointError`] while the rest of the
//!   sweep completes;
//! * [`engine::SweepOptions::point_budget`] arms a cooperative
//!   per-point deadline, so a runaway point reports partial coverage
//!   (`timed_out`) instead of hanging the pool, with bounded retries
//!   at a shrinking budget for transient failures;
//! * [`engine::Recovery`] streams completed points to a JSONL
//!   [`checkpoint`] and resumes a killed sweep byte-identically;
//! * [`failpoint::FailPlan`] injects deterministic failures so all of
//!   the above is testable without timing races.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod checkpoint;
pub mod engine;
pub mod error;
pub mod failpoint;
pub mod key;
pub mod proto;
pub mod report;
pub mod spec;
pub mod worker;

pub use cache::{ArtifactCache, CacheOutcome, CacheStats};
pub use checkpoint::{Checkpoint, RestoredSet};
pub use engine::{run_sweep, run_sweep_with, Recovery, SweepOptions, SweepOutcome};
pub use error::PointError;
pub use failpoint::{FailMode, FailPlan};
pub use report::{PointMetrics, PointRecord, SweepReport};
pub use spec::{Point, SweepSpec};
pub use worker::{run_sweep_workers, WorkerFail};
