//! Property tests for the sweep engine's bit-identity contract: for an
//! arbitrary `SweepSpec`, a 4-thread cached sweep must produce the
//! same canonical report bytes as a serial uncached sweep — including
//! under injected failures — and cache hits must never change any
//! point's metrics.

use hlstb::cdfg::{benchmarks, Cdfg};
use hlstb::flow::{DftStrategy, RegisterPolicy, Scheduler};
use hlstb_dse::{run_sweep, run_sweep_with, FailMode, FailPlan, Recovery, SweepOptions, SweepSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a random nonempty subset of `pool`, preserving order.
fn subset<T: Clone>(pool: &[T], rng: &mut StdRng) -> Vec<T> {
    loop {
        let picked: Vec<T> = pool.iter().filter(|_| rng.gen_bool(0.4)).cloned().collect();
        if !picked.is_empty() {
            return picked;
        }
    }
}

/// A random sweep spec derived from one seed: 1-2 small designs and a
/// random subset of every axis. Small designs keep a proptest case
/// affordable; the full design set is exercised by `exp_dse`.
fn arb_spec(seed: u64) -> SweepSpec {
    let rng = &mut StdRng::seed_from_u64(seed);
    let pool: Vec<Cdfg> = vec![
        benchmarks::figure1(),
        benchmarks::tseng(),
        benchmarks::gcd(),
    ];
    let mut designs = subset(&pool, rng);
    designs.truncate(2);
    let mut spec = SweepSpec::new(designs);
    spec.schedulers = subset(&[Scheduler::List, Scheduler::IoAware, Scheduler::Asap], rng);
    spec.policies = subset(
        &[
            RegisterPolicy::LeftEdge,
            RegisterPolicy::Dsatur,
            RegisterPolicy::Boundary,
        ],
        rng,
    );
    spec.strategies = subset(
        &[
            DftStrategy::None,
            DftStrategy::FullScan,
            DftStrategy::BehavioralPartialScan,
            DftStrategy::SimultaneousLoopAvoidance,
            DftStrategy::BistShared,
            DftStrategy::KLevelTestPoints(2),
        ],
        rng,
    );
    spec.strategies.truncate(3);
    spec.patterns = subset(&[0usize, 64, 128, 256], rng);
    spec.patterns.truncate(2);
    spec.reset_controller = rng.gen_bool(0.5);
    spec
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn parallel_cached_sweep_is_byte_identical_to_serial_uncached(seed in 0u64..10_000) {
        let spec = arb_spec(seed);
        let serial = run_sweep(&spec, &SweepOptions {
            threads: 1,
            cache: false,
            ..SweepOptions::default()
        });
        let parallel = run_sweep(&spec, &SweepOptions {
            threads: 4,
            cache: true,
            ..SweepOptions::default()
        });
        prop_assert!(serial.report.cache.is_none());
        prop_assert!(parallel.report.cache.is_some());
        prop_assert_eq!(
            serial.report.canonical_json(),
            parallel.report.canonical_json()
        );
    }

    #[test]
    fn injected_failures_stay_byte_identical_and_typed(seed in 0u64..10_000) {
        let spec = arb_spec(seed);
        let n = spec.points().len();
        // A random failure subset over a random spec: each point may be
        // injected with a random mode. All three modes are deterministic
        // by construction, so thread count and cache must not matter.
        let rng = &mut StdRng::seed_from_u64(seed ^ 0xFA11);
        let mut plan = FailPlan::default();
        for index in 0..n {
            if rng.gen_bool(0.3) {
                let mode = match rng.gen_range(0..3u8) {
                    0 => FailMode::Panic,
                    1 => FailMode::Stall,
                    _ => FailMode::Flaky,
                };
                plan.insert(index, mode);
            }
        }
        let hard = plan.hard_failures();
        let recovery = Recovery { fail_plan: Some(plan), ..Recovery::default() };
        let serial = run_sweep_with(&spec, &SweepOptions {
            threads: 1,
            cache: false,
            ..SweepOptions::default()
        }, &recovery).unwrap();
        let parallel = run_sweep_with(&spec, &SweepOptions {
            threads: 4,
            cache: true,
            ..SweepOptions::default()
        }, &recovery).unwrap();
        // Exactly the hard-injected points fail; flaky points recover
        // via the default single retry. Every failure is typed.
        prop_assert_eq!(serial.report.points.len(), n);
        prop_assert_eq!(serial.report.errors().len(), hard);
        for (_, e) in serial.report.errors() {
            prop_assert!(e.kind() == "panic" || e.kind() == "timeout");
        }
        prop_assert_eq!(
            serial.report.canonical_json(),
            parallel.report.canonical_json()
        );
    }
}

/// Cache hits never change a point's record: sweep a spec whose points
/// share artifacts heavily, then cold-evaluate each point in isolation
/// (fresh cache, every stage misses) and require identical metrics.
#[test]
fn cache_hits_never_change_a_points_report() {
    let mut spec = SweepSpec::new(vec![benchmarks::diffeq()]);
    spec.patterns = vec![0, 128, 512];
    let cached = run_sweep(&spec, &SweepOptions::default());
    let stats = cached.report.cache.expect("cache on");
    assert!(stats.hits() > 0, "sweep too small to share artifacts");
    for point in &cached.report.points {
        let mut solo = spec.clone();
        solo.strategies = vec![hlstb_dse::spec::parse_strategy(&point.strategy).unwrap()];
        solo.patterns = vec![point.patterns];
        let cold = run_sweep(&solo, &SweepOptions::default());
        let cold_point = &cold.report.points[0];
        let warm = point.outcome.as_ref().expect("point ok");
        let cold_m = cold_point.outcome.as_ref().expect("solo point ok");
        assert_eq!(warm.report, cold_m.report, "strategy {}", point.strategy);
        assert_eq!(
            warm.coverage_percent, cold_m.coverage_percent,
            "strategy {} at {} patterns",
            point.strategy, point.patterns
        );
    }
}
