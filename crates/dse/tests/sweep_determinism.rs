//! Property tests for the sweep engine's bit-identity contract: for an
//! arbitrary `SweepSpec`, a 4-thread cached sweep must produce the
//! same canonical report bytes as a serial uncached sweep, and cache
//! hits must never change any point's metrics.

use hlstb::cdfg::{benchmarks, Cdfg};
use hlstb::flow::{DftStrategy, RegisterPolicy, Scheduler};
use hlstb_dse::{run_sweep, SweepOptions, SweepSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a random nonempty subset of `pool`, preserving order.
fn subset<T: Clone>(pool: &[T], rng: &mut StdRng) -> Vec<T> {
    loop {
        let picked: Vec<T> = pool.iter().filter(|_| rng.gen_bool(0.4)).cloned().collect();
        if !picked.is_empty() {
            return picked;
        }
    }
}

/// A random sweep spec derived from one seed: 1-2 small designs and a
/// random subset of every axis. Small designs keep a proptest case
/// affordable; the full design set is exercised by `exp_dse`.
fn arb_spec(seed: u64) -> SweepSpec {
    let rng = &mut StdRng::seed_from_u64(seed);
    let pool: Vec<Cdfg> = vec![
        benchmarks::figure1(),
        benchmarks::tseng(),
        benchmarks::gcd(),
    ];
    let mut designs = subset(&pool, rng);
    designs.truncate(2);
    let mut spec = SweepSpec::new(designs);
    spec.schedulers = subset(&[Scheduler::List, Scheduler::IoAware, Scheduler::Asap], rng);
    spec.policies = subset(
        &[
            RegisterPolicy::LeftEdge,
            RegisterPolicy::Dsatur,
            RegisterPolicy::Boundary,
        ],
        rng,
    );
    spec.strategies = subset(
        &[
            DftStrategy::None,
            DftStrategy::FullScan,
            DftStrategy::BehavioralPartialScan,
            DftStrategy::SimultaneousLoopAvoidance,
            DftStrategy::BistShared,
            DftStrategy::KLevelTestPoints(2),
        ],
        rng,
    );
    spec.strategies.truncate(3);
    spec.patterns = subset(&[0usize, 64, 128, 256], rng);
    spec.patterns.truncate(2);
    spec.reset_controller = rng.gen_bool(0.5);
    spec
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn parallel_cached_sweep_is_byte_identical_to_serial_uncached(seed in 0u64..10_000) {
        let spec = arb_spec(seed);
        let serial = run_sweep(&spec, &SweepOptions {
            threads: 1,
            cache: false,
            keep_designs: false,
        });
        let parallel = run_sweep(&spec, &SweepOptions {
            threads: 4,
            cache: true,
            keep_designs: false,
        });
        prop_assert!(serial.report.cache.is_none());
        prop_assert!(parallel.report.cache.is_some());
        prop_assert_eq!(
            serial.report.canonical_json(),
            parallel.report.canonical_json()
        );
    }
}

/// Cache hits never change a point's record: sweep a spec whose points
/// share artifacts heavily, then cold-evaluate each point in isolation
/// (fresh cache, every stage misses) and require identical metrics.
#[test]
fn cache_hits_never_change_a_points_report() {
    let mut spec = SweepSpec::new(vec![benchmarks::diffeq()]);
    spec.patterns = vec![0, 128, 512];
    let cached = run_sweep(&spec, &SweepOptions::default());
    let stats = cached.report.cache.expect("cache on");
    assert!(stats.hits() > 0, "sweep too small to share artifacts");
    for point in &cached.report.points {
        let mut solo = spec.clone();
        solo.strategies = vec![hlstb_dse::spec::parse_strategy(&point.strategy).unwrap()];
        solo.patterns = vec![point.patterns];
        let cold = run_sweep(&solo, &SweepOptions::default());
        let cold_point = &cold.report.points[0];
        let warm = point.outcome.as_ref().expect("point ok");
        let cold_m = cold_point.outcome.as_ref().expect("solo point ok");
        assert_eq!(warm.report, cold_m.report, "strategy {}", point.strategy);
        assert_eq!(
            warm.coverage_percent, cold_m.coverage_percent,
            "strategy {} at {} patterns",
            point.strategy, point.patterns
        );
    }
}
