//! Property and fault-injection tests for scale-out sweeps: sharding a
//! sweep over worker lanes (loopback transport — real wire protocol,
//! no processes) must splice a report byte-identical to a serial
//! uncached run, for any worker count, under injected point failures,
//! under worker death mid-lease, and through checkpoint resume. The
//! process transport itself is exercised end-to-end by
//! `tests/sweep_workers_cli.rs` at the workspace root.

use hlstb::cdfg::{benchmarks, Cdfg};
use hlstb::flow::{DftStrategy, RegisterPolicy, Scheduler};
use hlstb_dse::worker::{run_sweep_workers, thread_spawner, WorkerFail, WorkerLink};
use hlstb_dse::{proto, run_sweep_with, FailMode, FailPlan, Recovery, SweepOptions, SweepSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn subset<T: Clone>(pool: &[T], rng: &mut StdRng) -> Vec<T> {
    loop {
        let picked: Vec<T> = pool.iter().filter(|_| rng.gen_bool(0.4)).cloned().collect();
        if !picked.is_empty() {
            return picked;
        }
    }
}

/// A random small spec, as in `sweep_determinism.rs`.
fn arb_spec(seed: u64) -> SweepSpec {
    let rng = &mut StdRng::seed_from_u64(seed);
    let pool: Vec<Cdfg> = vec![
        benchmarks::figure1(),
        benchmarks::tseng(),
        benchmarks::gcd(),
    ];
    let mut designs = subset(&pool, rng);
    designs.truncate(2);
    let mut spec = SweepSpec::new(designs);
    spec.schedulers = subset(&[Scheduler::List, Scheduler::IoAware], rng);
    spec.policies = subset(&[RegisterPolicy::LeftEdge, RegisterPolicy::Boundary], rng);
    spec.strategies = subset(
        &[
            DftStrategy::None,
            DftStrategy::FullScan,
            DftStrategy::BistShared,
            DftStrategy::KLevelTestPoints(2),
        ],
        rng,
    );
    spec.strategies.truncate(3);
    spec.patterns = subset(&[0usize, 64, 128], rng);
    spec.patterns.truncate(2);
    spec.reset_controller = rng.gen_bool(0.5);
    spec
}

fn serial_canonical(spec: &SweepSpec, recovery: &Recovery) -> String {
    run_sweep_with(
        spec,
        &SweepOptions {
            threads: 1,
            cache: false,
            ..SweepOptions::default()
        },
        recovery,
    )
    .unwrap()
    .report
    .canonical_json()
}

fn workers_canonical(
    spec: &SweepSpec,
    recovery: &Recovery,
    workers: usize,
    fail: Option<WorkerFail>,
) -> (String, u64) {
    let mut spawn = thread_spawner(fail);
    let outcome = run_sweep_workers(
        spec,
        &SweepOptions::default(),
        recovery,
        workers,
        &mut spawn,
    )
    .unwrap();
    assert_eq!(outcome.report.workers, workers.max(1));
    assert!(outcome.report.cache.is_none());
    assert!(outcome.designs.iter().all(Option::is_none));
    (outcome.report.canonical_json(), outcome.report.retries)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn worker_sharded_sweep_is_byte_identical_for_1_and_8_lanes(seed in 0u64..10_000) {
        let spec = arb_spec(seed);
        let recovery = Recovery::default();
        let serial = serial_canonical(&spec, &recovery);
        let (one, _) = workers_canonical(&spec, &recovery, 1, None);
        let (eight, _) = workers_canonical(&spec, &recovery, 8, None);
        prop_assert_eq!(&serial, &one);
        prop_assert_eq!(&serial, &eight);
    }

    #[test]
    fn injected_point_failures_splice_identically_across_lanes(seed in 0u64..10_000) {
        let spec = arb_spec(seed);
        let n = spec.points().len();
        let rng = &mut StdRng::seed_from_u64(seed ^ 0xFA11);
        let mut plan = FailPlan::default();
        for index in 0..n {
            if rng.gen_bool(0.3) {
                let mode = match rng.gen_range(0..3u8) {
                    0 => FailMode::Panic,
                    1 => FailMode::Stall,
                    _ => FailMode::Flaky,
                };
                plan.insert(index, mode);
            }
        }
        // The plan crosses the wire in the hello frame, so the workers
        // inject the exact same deterministic failures the in-process
        // engine would.
        let recovery = Recovery { fail_plan: Some(plan), ..Recovery::default() };
        let serial = serial_canonical(&spec, &recovery);
        let (sharded, _) = workers_canonical(&spec, &recovery, 4, None);
        prop_assert_eq!(&serial, &sharded);
    }

    #[test]
    fn a_worker_killed_mid_lease_reissues_and_stays_byte_identical(seed in 0u64..5_000) {
        let spec = arb_spec(seed);
        let recovery = Recovery::default();
        let serial = serial_canonical(&spec, &recovery);
        // Worker 1 dies with a torn frame after emitting one point.
        // (With 3 lanes it always receives a lease on nontrivial specs,
        // but byte-identity must hold either way.)
        let fail = Some(WorkerFail { worker: 1, after: 1 });
        let (sharded, _) = workers_canonical(&spec, &recovery, 3, fail);
        prop_assert_eq!(&serial, &sharded);
    }
}

/// A killed worker's leased-but-unreceived points are re-issued and
/// counted in `retries` (the sweep-level recovery taxonomy).
#[test]
fn killed_worker_lease_reissue_is_counted() {
    let mut spec = SweepSpec::new(vec![benchmarks::figure1(), benchmarks::tseng()]);
    spec.patterns = vec![0, 64];
    let n = spec.points().len();
    assert!(n >= 8, "spec too small to guarantee the dying lane works");
    let recovery = Recovery::default();
    let serial = serial_canonical(&spec, &recovery);
    // Die immediately after the lease arrives: everything leased to
    // worker 0 is torn away and must be re-issued.
    let fail = Some(WorkerFail {
        worker: 0,
        after: 0,
    });
    let (sharded, retries) = workers_canonical(&spec, &recovery, 2, fail);
    assert_eq!(serial, sharded);
    assert!(retries > 0, "the killed lease was never re-issued");
}

/// A lane that streams garbage instead of protocol frames is detected
/// as a typed decode failure and abandoned; the sweep still completes
/// byte-identically (here via the inline fallback, since the garbage
/// lane is the only one).
#[test]
fn garbage_speaking_worker_is_abandoned_not_trusted() {
    let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
    spec.strategies = vec![DftStrategy::None, DftStrategy::FullScan];
    let recovery = Recovery::default();
    let serial = serial_canonical(&spec, &recovery);
    let mut spawn = |_w: u32| -> Result<WorkerLink, hlstb_dse::PointError> {
        let garbage = b"{\"v\":1,\"key\":\"nope\nnot json at all\n".to_vec();
        Ok(WorkerLink {
            to: Box::new(std::io::sink()),
            from: Box::new(std::io::BufReader::new(std::io::Cursor::new(garbage))),
            child: None,
        })
    };
    let outcome = run_sweep_workers(&spec, &SweepOptions::default(), &recovery, 1, &mut spawn)
        .expect("sweep completes despite the garbage lane");
    assert_eq!(serial, outcome.report.canonical_json());
}

/// Workers resume from a checkpoint exactly like the in-process
/// engine: restored points splice from the file, the rest are leased
/// out, and the final report is byte-identical.
#[test]
fn workers_resume_from_a_checkpoint_byte_identically() {
    let dir = std::env::temp_dir().join(format!("hlstb-workers-ck-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.jsonl");
    let _ = std::fs::remove_file(&path);
    let mut spec = SweepSpec::new(vec![benchmarks::figure1(), benchmarks::gcd()]);
    spec.patterns = vec![0, 64];
    let serial = serial_canonical(&spec, &Recovery::default());

    // First pass: only figure1's points, streamed to the checkpoint.
    let mut first = spec.clone();
    first.designs = vec![benchmarks::figure1()];
    let recovery = Recovery {
        checkpoint: Some(path.clone()),
        ..Recovery::default()
    };
    let mut spawn = thread_spawner(None);
    let partial =
        run_sweep_workers(&first, &SweepOptions::default(), &recovery, 2, &mut spawn).unwrap();
    assert!(partial.report.points.len() < spec.points().len());

    // Second pass: the full spec with --resume; figure1's points come
    // back from the file (their keys match), gcd's are evaluated.
    let resume = Recovery {
        checkpoint: Some(path.clone()),
        resume: true,
        ..Recovery::default()
    };
    let mut spawn = thread_spawner(None);
    let full = run_sweep_workers(&spec, &SweepOptions::default(), &resume, 2, &mut spawn).unwrap();
    assert_eq!(full.report.restored, partial.report.points.len());
    assert_eq!(serial, full.report.canonical_json());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `keep_designs` cannot cross a process boundary; asking for it is a
/// typed error, not a silent drop.
#[test]
fn keep_designs_is_rejected_for_worker_sweeps() {
    let spec = SweepSpec::new(vec![benchmarks::figure1()]);
    let opts = SweepOptions {
        keep_designs: true,
        ..SweepOptions::default()
    };
    let mut spawn = thread_spawner(None);
    let err = run_sweep_workers(&spec, &opts, &Recovery::default(), 2, &mut spawn).unwrap_err();
    assert_eq!(err.kind(), "io");
}

// ---------------------------------------------------------------------------
// Wire-protocol robustness: no frame mutation may panic a decoder, and
// every rejection is a typed `PointError::Io`-family error (which the
// coordinator answers by re-issuing the lane's leases).

/// A pool of valid frames to mutate.
fn valid_frames() -> Vec<String> {
    let spec = SweepSpec::new(vec![benchmarks::figure1()]);
    let mut plan = FailPlan::default();
    plan.insert(1, FailMode::Panic);
    vec![
        proto::encode_hello(3, &spec, &SweepOptions::default(), Some(&plan)),
        proto::encode_lease(0, 7),
        proto::encode_shutdown(),
        proto::encode_ready(3, 7),
        proto::encode_point(0xdead_beef, 4, "{\"index\": 4}"),
        proto::encode_done(0, 7),
        proto::encode_error("boom"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn truncated_frames_decode_to_typed_errors_not_panics(
        which in 0usize..7,
        cut in 0usize..200,
    ) {
        let frame = &valid_frames()[which];
        // Truncate at an arbitrary char boundary strictly inside the
        // frame, as a torn pipe would.
        let cut = cut % frame.len().max(1);
        let torn: String = frame.chars().take(cut).collect();
        for result in [proto::decode_to_worker(&torn), proto::decode_to_worker(frame)] {
            if let Err(e) = result {
                prop_assert_eq!(e.kind(), "io");
            }
        }
        if let Err(e) = proto::decode_from_worker(&torn) {
            prop_assert_eq!(e.kind(), "io");
        }
    }

    #[test]
    fn mutated_frames_decode_to_typed_errors_not_panics(
        which in 0usize..7,
        pos in 0usize..500,
        byte in 0u8..=255,
    ) {
        let frame = &valid_frames()[which];
        let mut bytes = frame.clone().into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        // Mutations may yield invalid UTF-8; the reader layer hands
        // decoders strings, so exercise only the valid-UTF-8 subset
        // (invalid UTF-8 already fails in `read_line` as io::Error).
        if let Ok(s) = String::from_utf8(bytes) {
            if let Err(e) = proto::decode_to_worker(&s) {
                prop_assert_eq!(e.kind(), "io");
            }
            if let Err(e) = proto::decode_from_worker(&s) {
                prop_assert_eq!(e.kind(), "io");
            }
        }
    }
}
