//! Property and fault-injection tests for scale-out sweeps: sharding a
//! sweep over worker lanes (loopback transport — real wire protocol,
//! no processes) must splice a report byte-identical to a serial
//! uncached run, for any worker count, under injected point failures,
//! under worker death mid-lease, and through checkpoint resume. The
//! process transport itself is exercised end-to-end by
//! `tests/sweep_workers_cli.rs` at the workspace root.

use hlstb::cdfg::{benchmarks, Cdfg};
use hlstb::flow::{DftStrategy, RegisterPolicy, Scheduler};
use hlstb_dse::worker::{
    run_sweep_listen, run_sweep_listen_with_timeout, run_sweep_workers, thread_spawner,
    worker_connect, WorkerFail, WorkerLink,
};
use hlstb_dse::{proto, run_sweep_with, FailMode, FailPlan, Recovery, SweepOptions, SweepSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn subset<T: Clone>(pool: &[T], rng: &mut StdRng) -> Vec<T> {
    loop {
        let picked: Vec<T> = pool.iter().filter(|_| rng.gen_bool(0.4)).cloned().collect();
        if !picked.is_empty() {
            return picked;
        }
    }
}

/// A random small spec, as in `sweep_determinism.rs`.
fn arb_spec(seed: u64) -> SweepSpec {
    let rng = &mut StdRng::seed_from_u64(seed);
    let pool: Vec<Cdfg> = vec![
        benchmarks::figure1(),
        benchmarks::tseng(),
        benchmarks::gcd(),
    ];
    let mut designs = subset(&pool, rng);
    designs.truncate(2);
    let mut spec = SweepSpec::new(designs);
    spec.schedulers = subset(&[Scheduler::List, Scheduler::IoAware], rng);
    spec.policies = subset(&[RegisterPolicy::LeftEdge, RegisterPolicy::Boundary], rng);
    spec.strategies = subset(
        &[
            DftStrategy::None,
            DftStrategy::FullScan,
            DftStrategy::BistShared,
            DftStrategy::KLevelTestPoints(2),
        ],
        rng,
    );
    spec.strategies.truncate(3);
    spec.patterns = subset(&[0usize, 64, 128], rng);
    spec.patterns.truncate(2);
    spec.reset_controller = rng.gen_bool(0.5);
    spec
}

fn serial_canonical(spec: &SweepSpec, recovery: &Recovery) -> String {
    run_sweep_with(
        spec,
        &SweepOptions {
            threads: 1,
            cache: false,
            ..SweepOptions::default()
        },
        recovery,
    )
    .unwrap()
    .report
    .canonical_json()
}

fn workers_canonical(
    spec: &SweepSpec,
    recovery: &Recovery,
    workers: usize,
    fail: Option<WorkerFail>,
) -> (String, u64) {
    let mut spawn = thread_spawner(fail);
    let outcome = run_sweep_workers(
        spec,
        &SweepOptions::default(),
        recovery,
        workers,
        &mut spawn,
    )
    .unwrap();
    assert_eq!(outcome.report.workers, workers.max(1));
    // Worker sweeps aggregate the fleet's cache stats from the `done`
    // frames, so the envelope carries them even over the wire.
    assert!(outcome.report.cache.is_some());
    assert!(outcome.designs.iter().all(Option::is_none));
    (outcome.report.canonical_json(), outcome.report.reissued)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn worker_sharded_sweep_is_byte_identical_for_1_and_8_lanes(seed in 0u64..10_000) {
        let spec = arb_spec(seed);
        let recovery = Recovery::default();
        let serial = serial_canonical(&spec, &recovery);
        let (one, _) = workers_canonical(&spec, &recovery, 1, None);
        let (eight, _) = workers_canonical(&spec, &recovery, 8, None);
        prop_assert_eq!(&serial, &one);
        prop_assert_eq!(&serial, &eight);
    }

    #[test]
    fn injected_point_failures_splice_identically_across_lanes(seed in 0u64..10_000) {
        let spec = arb_spec(seed);
        let n = spec.points().len();
        let rng = &mut StdRng::seed_from_u64(seed ^ 0xFA11);
        let mut plan = FailPlan::default();
        for index in 0..n {
            if rng.gen_bool(0.3) {
                let mode = match rng.gen_range(0..3u8) {
                    0 => FailMode::Panic,
                    1 => FailMode::Stall,
                    _ => FailMode::Flaky,
                };
                plan.insert(index, mode);
            }
        }
        // The plan crosses the wire in the hello frame, so the workers
        // inject the exact same deterministic failures the in-process
        // engine would.
        let recovery = Recovery { fail_plan: Some(plan), ..Recovery::default() };
        let serial = serial_canonical(&spec, &recovery);
        let (sharded, _) = workers_canonical(&spec, &recovery, 4, None);
        prop_assert_eq!(&serial, &sharded);
    }

    #[test]
    fn a_worker_killed_mid_lease_reissues_and_stays_byte_identical(seed in 0u64..5_000) {
        let spec = arb_spec(seed);
        let recovery = Recovery::default();
        let serial = serial_canonical(&spec, &recovery);
        // Worker 1 dies with a torn frame after emitting one point.
        // (With 3 lanes it always receives a lease on nontrivial specs,
        // but byte-identity must hold either way.)
        let fail = Some(WorkerFail { worker: 1, after: 1 });
        let (sharded, _) = workers_canonical(&spec, &recovery, 3, fail);
        prop_assert_eq!(&serial, &sharded);
    }
}

/// A killed worker's leased-but-unreceived points are re-issued and
/// counted in `reissued` (transport recovery), not conflated with the
/// per-point `retries` taxonomy.
#[test]
fn killed_worker_lease_reissue_is_counted() {
    let mut spec = SweepSpec::new(vec![benchmarks::figure1(), benchmarks::tseng()]);
    spec.patterns = vec![0, 64];
    let n = spec.points().len();
    assert!(n >= 8, "spec too small to guarantee the dying lane works");
    let recovery = Recovery::default();
    let serial = serial_canonical(&spec, &recovery);
    // Die immediately after the lease arrives: everything leased to
    // worker 0 is torn away and must be re-issued.
    let fail = Some(WorkerFail {
        worker: 0,
        after: 0,
    });
    let (sharded, reissued) = workers_canonical(&spec, &recovery, 2, fail);
    assert_eq!(serial, sharded);
    assert!(reissued > 0, "the killed lease was never re-issued");
}

/// A lane that streams garbage instead of protocol frames is detected
/// as a typed decode failure and abandoned; the sweep still completes
/// byte-identically (here via the inline fallback, since the garbage
/// lane is the only one).
#[test]
fn garbage_speaking_worker_is_abandoned_not_trusted() {
    let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
    spec.strategies = vec![DftStrategy::None, DftStrategy::FullScan];
    let recovery = Recovery::default();
    let serial = serial_canonical(&spec, &recovery);
    let mut spawn = |_w: u32| -> Result<WorkerLink, hlstb_dse::PointError> {
        let garbage = b"{\"v\":1,\"key\":\"nope\nnot json at all\n".to_vec();
        Ok(WorkerLink {
            to: Box::new(std::io::sink()),
            from: Box::new(std::io::BufReader::new(std::io::Cursor::new(garbage))),
            child: None,
            sock: None,
        })
    };
    let outcome = run_sweep_workers(&spec, &SweepOptions::default(), &recovery, 1, &mut spawn)
        .expect("sweep completes despite the garbage lane");
    assert_eq!(serial, outcome.report.canonical_json());
}

/// Workers resume from a checkpoint exactly like the in-process
/// engine: restored points splice from the file, the rest are leased
/// out, and the final report is byte-identical.
#[test]
fn workers_resume_from_a_checkpoint_byte_identically() {
    let dir = std::env::temp_dir().join(format!("hlstb-workers-ck-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.jsonl");
    let _ = std::fs::remove_file(&path);
    let mut spec = SweepSpec::new(vec![benchmarks::figure1(), benchmarks::gcd()]);
    spec.patterns = vec![0, 64];
    let serial = serial_canonical(&spec, &Recovery::default());

    // First pass: only figure1's points, streamed to the checkpoint.
    let mut first = spec.clone();
    first.designs = vec![benchmarks::figure1()];
    let recovery = Recovery {
        checkpoint: Some(path.clone()),
        ..Recovery::default()
    };
    let mut spawn = thread_spawner(None);
    let partial =
        run_sweep_workers(&first, &SweepOptions::default(), &recovery, 2, &mut spawn).unwrap();
    assert!(partial.report.points.len() < spec.points().len());

    // Second pass: the full spec with --resume; figure1's points come
    // back from the file (their keys match), gcd's are evaluated.
    let resume = Recovery {
        checkpoint: Some(path.clone()),
        resume: true,
        ..Recovery::default()
    };
    let mut spawn = thread_spawner(None);
    let full = run_sweep_workers(&spec, &SweepOptions::default(), &resume, 2, &mut spawn).unwrap();
    assert_eq!(full.report.restored, partial.report.points.len());
    assert_eq!(serial, full.report.canonical_json());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: resuming a checkpoint that restores every point, with
/// the progress meter on, exercises the ETA arithmetic at `done ==
/// total` (and past it, via the meter's own saturation) without
/// underflow, and still splices byte-identically.
#[test]
fn resume_with_all_points_restored_keeps_progress_sane() {
    let dir = std::env::temp_dir().join(format!("hlstb-workers-full-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("all.jsonl");
    let _ = std::fs::remove_file(&path);
    let spec = SweepSpec::new(vec![benchmarks::figure1()]);
    let recovery = Recovery {
        checkpoint: Some(path.clone()),
        ..Recovery::default()
    };
    let mut spawn = thread_spawner(None);
    let first =
        run_sweep_workers(&spec, &SweepOptions::default(), &recovery, 2, &mut spawn).unwrap();
    let resume = Recovery {
        checkpoint: Some(path.clone()),
        resume: true,
        ..Recovery::default()
    };
    let opts = SweepOptions {
        progress: true,
        ..SweepOptions::default()
    };
    let mut spawn = thread_spawner(None);
    let second = run_sweep_workers(&spec, &opts, &resume, 2, &mut spawn).unwrap();
    assert_eq!(second.report.restored, spec.points().len());
    assert_eq!(
        first.report.canonical_json(),
        second.report.canonical_json()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `keep_designs` cannot cross a process boundary; asking for it is a
/// typed error, not a silent drop.
#[test]
fn keep_designs_is_rejected_for_worker_sweeps() {
    let spec = SweepSpec::new(vec![benchmarks::figure1()]);
    let opts = SweepOptions {
        keep_designs: true,
        ..SweepOptions::default()
    };
    let mut spawn = thread_spawner(None);
    let err = run_sweep_workers(&spec, &opts, &Recovery::default(), 2, &mut spawn).unwrap_err();
    assert_eq!(err.kind(), "io");
}

// ---------------------------------------------------------------------------
// Wire-protocol robustness: no frame mutation may panic a decoder, and
// every rejection is a typed `PointError::Io`-family error (which the
// coordinator answers by re-issuing the lane's leases).

/// A pool of valid frames to mutate.
fn valid_frames() -> Vec<String> {
    let spec = SweepSpec::new(vec![benchmarks::figure1()]);
    let mut plan = FailPlan::default();
    plan.insert(1, FailMode::Panic);
    vec![
        proto::encode_hello(3, &spec, &SweepOptions::default(), Some(&plan)),
        proto::encode_lease(0, 7),
        proto::encode_shutdown(),
        proto::encode_ready(3, 7),
        proto::encode_point(0xdead_beef, 4, "{\"index\": 4}"),
        proto::encode_done(0, 7, &proto::DoneStats::default()),
        proto::encode_error("boom"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn truncated_frames_decode_to_typed_errors_not_panics(
        which in 0usize..7,
        cut in 0usize..200,
    ) {
        let frame = &valid_frames()[which];
        // Truncate at an arbitrary char boundary strictly inside the
        // frame, as a torn pipe would.
        let cut = cut % frame.len().max(1);
        let torn: String = frame.chars().take(cut).collect();
        for result in [proto::decode_to_worker(&torn), proto::decode_to_worker(frame)] {
            if let Err(e) = result {
                prop_assert_eq!(e.kind(), "io");
            }
        }
        if let Err(e) = proto::decode_from_worker(&torn) {
            prop_assert_eq!(e.kind(), "io");
        }
    }

    #[test]
    fn mutated_frames_decode_to_typed_errors_not_panics(
        which in 0usize..7,
        pos in 0usize..500,
        byte in 0u8..=255,
    ) {
        let frame = &valid_frames()[which];
        let mut bytes = frame.clone().into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        // Mutations may yield invalid UTF-8; the reader layer hands
        // decoders strings, so exercise only the valid-UTF-8 subset
        // (invalid UTF-8 already fails in `read_line` as io::Error).
        if let Ok(s) = String::from_utf8(bytes) {
            if let Err(e) = proto::decode_to_worker(&s) {
                prop_assert_eq!(e.kind(), "io");
            }
            if let Err(e) = proto::decode_from_worker(&s) {
                prop_assert_eq!(e.kind(), "io");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TCP transport: the same coordinator loop with lanes that are accepted
// sockets. These tests drive `run_sweep_listen`/`worker_connect` over
// real loopback connections — handshakes, garbage, torn frames, kills,
// and redials all cross an actual TCP stream.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};

fn small_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(vec![benchmarks::figure1(), benchmarks::tseng()]);
    spec.patterns = vec![0, 64];
    spec
}

/// Reads one newline-framed line from a test-coordinator socket.
fn read_frame_line(reader: &mut impl std::io::BufRead) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read frame");
    line
}

fn write_frame_line(conn: &mut TcpStream, frame: &str) {
    conn.write_all(frame.as_bytes()).expect("write frame");
    conn.write_all(b"\n").expect("write newline");
}

/// A TCP sweep with dialed-in workers splices byte-identically to the
/// serial uncached run, and the fleet's cache stats reach the envelope.
#[test]
fn tcp_sweep_is_byte_identical_to_serial() {
    let spec = small_spec();
    let serial = serial_canonical(&spec, &Recovery::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let coord = {
        let spec = spec.clone();
        std::thread::spawn(move || {
            run_sweep_listen(
                &spec,
                &SweepOptions::default(),
                &Recovery::default(),
                listener,
            )
            .unwrap()
        })
    };
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || worker_connect(&addr, None))
        })
        .collect();
    let outcome = coord.join().unwrap();
    for w in workers {
        w.join().unwrap().expect("worker exits cleanly on shutdown");
    }
    assert_eq!(serial, outcome.report.canonical_json());
    assert_eq!(outcome.report.workers, 2);
    assert_eq!(outcome.report.reissued, 0);
    assert!(outcome.report.cache.is_some());
}

/// A worker killed mid-lease over TCP (torn frame, fatal — no redial)
/// has its lease re-issued to a replacement that dials in later; the
/// spliced report stays byte-identical and the re-issue is counted.
#[test]
fn tcp_kill_mid_lease_then_reconnect_is_byte_identical() {
    let spec = small_spec();
    assert!(spec.points().len() >= 8);
    let serial = serial_canonical(&spec, &Recovery::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let coord = {
        let spec = spec.clone();
        std::thread::spawn(move || {
            run_sweep_listen(
                &spec,
                &SweepOptions::default(),
                &Recovery::default(),
                listener,
            )
            .unwrap()
        })
    };
    // First dial becomes lane 0 and dies after one point with a torn
    // frame — `worker_connect` treats the injected death as a real
    // kill and must NOT redial.
    let dying = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            worker_connect(
                &addr,
                Some(WorkerFail {
                    worker: 0,
                    after: 1,
                }),
            )
        })
    };
    let err = dying.join().unwrap().expect_err("injected death is fatal");
    assert_eq!(err.kind(), "panic");
    // The replacement attaches as a fresh lane and absorbs the
    // re-issued lease.
    let replacement = std::thread::spawn(move || worker_connect(&addr, None));
    let outcome = coord.join().unwrap();
    replacement
        .join()
        .unwrap()
        .expect("replacement exits cleanly");
    assert_eq!(serial, outcome.report.canonical_json());
    assert!(
        outcome.report.reissued > 0,
        "the torn lease was never re-issued"
    );
    assert_eq!(
        outcome.report.workers, 2,
        "kill + reconnect = two lanes seen"
    );
}

/// A connection that completes TCP connect but never sends a byte —
/// a stuck dialer, a port scanner — must be dropped at the handshake
/// deadline instead of pinning a reader thread for the whole sweep;
/// a real worker that dials in afterwards still finishes the job
/// byte-identically.
#[test]
fn tcp_silent_connection_is_dropped_at_hello_deadline() {
    use std::time::{Duration, Instant};

    let spec = small_spec();
    let serial = serial_canonical(&spec, &Recovery::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let coord = {
        let spec = spec.clone();
        std::thread::spawn(move || {
            run_sweep_listen_with_timeout(
                &spec,
                &SweepOptions::default(),
                &Recovery::default(),
                listener,
                Duration::from_millis(200),
            )
            .unwrap()
        })
    };
    // Connect and go silent. No worker exists yet, so the sweep cannot
    // finish — the only thing that can close this socket is the
    // handshake deadline. The client sees the coordinator's hello
    // frame, then EOF (or a reset) once it is dropped.
    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let t0 = Instant::now();
    let mut buf = [0u8; 1024];
    loop {
        match std::io::Read::read(&mut conn, &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    assert!(
        t0.elapsed() >= Duration::from_millis(100),
        "dropped before any deadline could have elapsed"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "silent connection pinned its lane far past the 200ms deadline"
    );
    drop(conn);
    // A real worker finishes the sweep; the dropped lane changed no
    // results.
    let worker = std::thread::spawn(move || worker_connect(&addr, None));
    let outcome = coord.join().unwrap();
    worker.join().unwrap().expect("worker exits cleanly");
    assert_eq!(serial, outcome.report.canonical_json());
    assert_eq!(
        outcome.report.workers, 2,
        "the dropped silent lane is still counted as a lane seen"
    );
}

/// Raw connections that write garbage instead of protocol frames are
/// abandoned as typed decode failures; a well-behaved worker still
/// finishes the sweep byte-identically.
#[test]
fn tcp_garbage_connections_are_abandoned_not_trusted() {
    let spec = small_spec();
    let serial = serial_canonical(&spec, &Recovery::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let coord = {
        let spec = spec.clone();
        std::thread::spawn(move || {
            run_sweep_listen(
                &spec,
                &SweepOptions::default(),
                &Recovery::default(),
                listener,
            )
            .unwrap()
        })
    };
    // Garbage dialers: torn prefixes of real frames and outright junk.
    for frame in valid_frames() {
        let mut conn = TcpStream::connect(&addr).unwrap();
        let torn = &frame.as_bytes()[..frame.len() * 2 / 3];
        let _ = conn.write_all(torn);
        drop(conn);
    }
    let mut junk = TcpStream::connect(&addr).unwrap();
    let _ = junk.write_all(b"{\"v\": 1, \"key\": \"nope\nnot json at all\n");
    drop(junk);
    let worker = std::thread::spawn(move || worker_connect(&addr, None));
    let outcome = coord.join().unwrap();
    worker.join().unwrap().expect("real worker exits cleanly");
    assert_eq!(serial, outcome.report.canonical_json());
}

/// A version-skewed hello is rejected over the socket: the worker
/// writes a typed error frame back (so the coordinator can log why)
/// and treats the handshake rejection as fatal — no redial loop.
#[test]
fn tcp_version_mismatch_hello_is_rejected_with_error_frame() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let worker = std::thread::spawn(move || worker_connect(&addr, None));
    let (mut conn, _) = listener.accept().unwrap();
    let spec = SweepSpec::new(vec![benchmarks::figure1()]);
    let skewed = proto::encode_hello(0, &spec, &SweepOptions::default(), None).replacen(
        &format!("\"v\": {}", proto::PROTO_VERSION),
        "\"v\": 99",
        1,
    );
    write_frame_line(&mut conn, &skewed);
    let mut from = std::io::BufReader::new(conn.try_clone().unwrap());
    let reply = read_frame_line(&mut from);
    match proto::decode_from_worker(&reply) {
        Ok(proto::FromWorker::Error { message }) => {
            assert!(
                message.contains("version"),
                "unexpected rejection: {message}"
            );
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    let err = worker
        .join()
        .unwrap()
        .expect_err("rejected handshake is fatal");
    assert_eq!(err.kind(), "io");
}

/// A worker whose stream drops mid-session redials with backoff and
/// serves a fresh session; a polite shutdown on the second session
/// ends the dial loop cleanly.
#[test]
fn tcp_worker_redials_after_stream_drop() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let spec = SweepSpec::new(vec![benchmarks::figure1()]);
    let hello = proto::encode_hello(0, &spec, &SweepOptions::default(), None);
    let worker = std::thread::spawn(move || worker_connect(&addr, None));
    // Session 1: complete the handshake, then drop the stream.
    let (mut conn, _) = listener.accept().unwrap();
    write_frame_line(&mut conn, &hello);
    let mut from = std::io::BufReader::new(conn.try_clone().unwrap());
    let ready = read_frame_line(&mut from);
    assert!(matches!(
        proto::decode_from_worker(&ready),
        Ok(proto::FromWorker::Ready { .. })
    ));
    drop(from);
    drop(conn);
    // Session 2: the worker redialed; hand it a clean shutdown.
    let (mut conn, _) = listener.accept().unwrap();
    write_frame_line(&mut conn, &hello);
    let mut from = std::io::BufReader::new(conn.try_clone().unwrap());
    let _ready = read_frame_line(&mut from);
    write_frame_line(&mut conn, &proto::encode_shutdown());
    worker
        .join()
        .unwrap()
        .expect("shutdown after redial is a clean exit");
}

/// With nothing listening, the dial loop gives up after its bounded
/// backoff budget with a typed error instead of spinning forever.
#[test]
fn tcp_worker_gives_up_after_bounded_redials() {
    // Bind-then-drop reserves a port that refuses connections.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    let err = worker_connect(&addr, None).expect_err("no listener to reach");
    assert_eq!(err.kind(), "io");
    assert!(err.message().contains("gave up"), "got: {}", err.message());
}

/// Two consecutive workers die with torn frames on their first leased
/// point before a healthy one dials in: every abandoned lease is
/// re-issued (listen mode never gives up on a dead lane — it waits for
/// the next connection) and the final splice is still byte-identical.
#[test]
fn tcp_repeated_torn_deaths_reissue_until_a_worker_survives() {
    let spec = small_spec();
    let serial = serial_canonical(&spec, &Recovery::default());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let coord = {
        let spec = spec.clone();
        std::thread::spawn(move || {
            run_sweep_listen(
                &spec,
                &SweepOptions::default(),
                &Recovery::default(),
                listener,
            )
            .unwrap()
        })
    };
    // Lanes 0 and 1 each tear their first point frame apart mid-bytes
    // and die fatally; each death must be observed before the next
    // dial so the injected lane ids line up.
    for lane in 0..2u32 {
        let addr = addr.clone();
        let torn = std::thread::spawn(move || {
            worker_connect(
                &addr,
                Some(WorkerFail {
                    worker: lane,
                    after: 0,
                }),
            )
        });
        let err = torn.join().unwrap().expect_err("torn worker dies");
        assert_eq!(err.kind(), "panic");
    }
    let survivor = std::thread::spawn(move || worker_connect(&addr, None));
    let outcome = coord.join().unwrap();
    survivor.join().unwrap().expect("survivor exits cleanly");
    assert_eq!(serial, outcome.report.canonical_json());
    assert!(outcome.report.reissued >= 2, "both torn leases re-issue");
    assert_eq!(outcome.report.workers, 3);
}
