//! End-to-end contract of the sweep's event journal: the canonical
//! projection is byte-identical between a serial uncached sweep and a
//! 4-thread cached sweep of the same spec — including under injected
//! deterministic failures — and a disabled journal records nothing.

use hlstb::cdfg::benchmarks;
use hlstb::trace::events;
use hlstb_dse::{run_sweep_with, FailMode, FailPlan, Recovery, SweepOptions, SweepSpec};
use std::sync::Mutex;

/// The journal is process-global; tests in this binary serialize on
/// this lock so concurrent test threads cannot pollute each other's
/// drained records.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn spec() -> SweepSpec {
    let mut spec = SweepSpec::new(vec![benchmarks::figure1(), benchmarks::tseng()]);
    spec.patterns = vec![0, 64];
    spec.strategies.truncate(3);
    spec
}

/// Runs one journaled sweep and returns the drained journal.
fn journaled_sweep(
    spec: &SweepSpec,
    threads: usize,
    cache: bool,
    recovery: &Recovery,
) -> events::Journal {
    events::set_enabled(true);
    events::reset();
    let opts = SweepOptions {
        threads,
        cache,
        ..SweepOptions::default()
    };
    run_sweep_with(spec, &opts, recovery).expect("sweep runs");
    events::set_enabled(false);
    events::drain()
}

#[test]
fn canonical_journal_is_identical_across_threads_and_cache() {
    let _x = exclusive();
    let spec = spec();
    let n = spec.points().len();
    let recovery = Recovery::default();
    let serial = journaled_sweep(&spec, 1, false, &recovery);
    let threaded = journaled_sweep(&spec, 4, true, &recovery);
    assert_eq!(serial.dropped, 0);
    assert_eq!(threaded.dropped, 0);

    let canon_serial = serial.to_canonical_jsonl();
    let canon_threaded = threaded.to_canonical_jsonl();
    assert!(!canon_serial.is_empty());
    assert_eq!(
        canon_serial, canon_threaded,
        "canonical journal must not depend on threads or cache"
    );

    // The stable lifecycle is complete: every point is scheduled and
    // completes, one stage record per pipeline stage per point, and
    // the run is bracketed by sweep.begin/sweep.end.
    let count = |kind: &str| {
        serial
            .records
            .iter()
            .filter(|r| r.stable && r.kind == kind)
            .count()
    };
    assert_eq!(count("point.scheduled"), n);
    assert_eq!(count("point.completed"), n);
    // Four synthesis stages per point, plus grading for graded points.
    let graded = spec.points().iter().filter(|p| p.patterns > 0).count();
    assert_eq!(count("point.stage"), 4 * n + graded);
    assert_eq!(count("sweep.begin"), 1);
    assert_eq!(count("sweep.end"), 1);
    // Volatile records (spans, timings, cache outcomes) exist in the
    // full journal but never reach the canonical projection.
    assert!(serial.records.iter().any(|r| !r.stable));
    assert!(!canon_serial.contains("wall_us"), "{canon_serial}");
    assert!(!canon_serial.contains("\"cache\""), "{canon_serial}");
}

#[test]
fn injected_failures_keep_the_canonical_journal_identical() {
    let _x = exclusive();
    let spec = spec();
    let mut plan = FailPlan::default();
    plan.insert(1, FailMode::Panic);
    plan.insert(3, FailMode::Stall);
    plan.insert(4, FailMode::Flaky);
    let recovery = Recovery {
        fail_plan: Some(plan),
        ..Recovery::default()
    };
    let serial = journaled_sweep(&spec, 1, false, &recovery);
    let threaded = journaled_sweep(&spec, 4, true, &recovery);
    assert_eq!(
        serial.to_canonical_jsonl(),
        threaded.to_canonical_jsonl(),
        "typed failures and retries must journal deterministically"
    );
    let canon = serial.to_canonical_jsonl();
    assert!(canon.contains("\"point.failed\""), "{canon}");
    assert!(canon.contains("\"error\": \"panic\""), "{canon}");
    assert!(canon.contains("\"error\": \"timeout\""), "{canon}");
    // The flaky point retried once, then completed.
    assert!(canon.contains("\"point.retry\""), "{canon}");
    assert!(canon.contains("\"attempt\": 1"), "{canon}");
}

#[test]
fn disabled_journal_records_nothing_during_a_sweep() {
    let _x = exclusive();
    events::set_enabled(false);
    events::reset();
    let opts = SweepOptions::default();
    run_sweep_with(&spec(), &opts, &Recovery::default()).expect("sweep runs");
    assert!(events::drain().is_empty());
}
