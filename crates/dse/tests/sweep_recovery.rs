//! Checkpoint/resume integration tests: a sweep interrupted after k
//! points and resumed from its checkpoint must reproduce the
//! uninterrupted report byte-for-byte, restoring rather than
//! recomputing the completed points.

use std::path::PathBuf;
use std::time::Duration;

use hlstb::cdfg::benchmarks;
use hlstb::flow::DftStrategy;
use hlstb_dse::{run_sweep, run_sweep_with, FailMode, FailPlan, Recovery, SweepOptions, SweepSpec};

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "hlstb_recovery_{}_{name}.jsonl",
        std::process::id()
    ))
}

fn spec() -> SweepSpec {
    let mut spec = SweepSpec::new(vec![benchmarks::figure1(), benchmarks::tseng()]);
    spec.strategies = vec![
        DftStrategy::None,
        DftStrategy::FullScan,
        DftStrategy::BistShared,
    ];
    spec.patterns = vec![64];
    spec
}

/// Keep the first `k` lines of the checkpoint — the file-level shape of
/// a sweep killed partway through.
fn truncate_checkpoint(path: &PathBuf, k: usize) {
    let text = std::fs::read_to_string(path).unwrap();
    let kept: String = text.lines().take(k).map(|l| format!("{l}\n")).collect();
    std::fs::write(path, kept).unwrap();
}

#[test]
fn resumed_sweep_is_byte_identical_to_uninterrupted() {
    let spec = spec();
    let baseline = run_sweep(&spec, &SweepOptions::default());
    assert_eq!(baseline.report.points.len(), 6);

    let path = temp("byte_identity");
    std::fs::remove_file(&path).ok();
    let full = run_sweep_with(
        &spec,
        &SweepOptions::default(),
        &Recovery {
            checkpoint: Some(path.clone()),
            ..Recovery::default()
        },
    )
    .unwrap();
    assert_eq!(full.checkpoint_write_errors, 0);
    assert_eq!(
        full.report.canonical_json(),
        baseline.report.canonical_json(),
        "writing a checkpoint must not perturb the report"
    );

    // "Kill" the run after 4 of 6 points, then resume.
    truncate_checkpoint(&path, 4);
    let resumed = run_sweep_with(
        &spec,
        &SweepOptions {
            threads: 4,
            ..SweepOptions::default()
        },
        &Recovery {
            checkpoint: Some(path.clone()),
            resume: true,
            ..Recovery::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.report.restored, 4);
    assert_eq!(
        resumed.report.canonical_json(),
        baseline.report.canonical_json(),
        "resume must splice checkpointed bytes verbatim"
    );
    // The recomputed points were re-appended, so a second resume
    // restores everything.
    let again = run_sweep_with(
        &spec,
        &SweepOptions::default(),
        &Recovery {
            checkpoint: Some(path.clone()),
            resume: true,
            ..Recovery::default()
        },
    )
    .unwrap();
    assert_eq!(again.report.restored, 6);
    assert_eq!(
        again.report.canonical_json(),
        baseline.report.canonical_json()
    );
    std::fs::remove_file(&path).ok();
}

/// An `io:` fail-point fails a point's *checkpoint append*, not the
/// point: the sweep must degrade to checkpoint-less mode (flagged in
/// the envelope), keep every result, and stop writing further records
/// — while the report itself stays byte-identical to an unaffected
/// run, since degrading changes only where bytes are persisted.
#[test]
fn checkpoint_write_failure_degrades_instead_of_aborting() {
    let spec = spec();
    let baseline = run_sweep(&spec, &SweepOptions::default());

    let path = temp("io_degrade");
    std::fs::remove_file(&path).ok();
    let mut plan = FailPlan::default();
    plan.insert(1, FailMode::Io);
    let out = run_sweep_with(
        &spec,
        &SweepOptions::default(),
        &Recovery {
            fail_plan: Some(plan),
            checkpoint: Some(path.clone()),
            ..Recovery::default()
        },
    )
    .unwrap();
    // Every point completed; only the persistence path degraded.
    assert!(out.report.errors().is_empty());
    assert!(out.report.checkpoint_degraded);
    assert_eq!(out.checkpoint_write_errors, 1);
    assert_eq!(
        out.report.canonical_json(),
        baseline.report.canonical_json(),
        "degrading the checkpoint must not perturb results"
    );
    let envelope = out.report.to_json();
    assert!(
        envelope.contains("\"checkpoint_degraded\": true"),
        "{envelope}"
    );
    // The injected failure hit point 1 serially, so exactly the one
    // record written before it survives; nothing after the degrade.
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 1, "{text}");
    // What did land is still a valid resume source.
    let resumed = run_sweep_with(
        &spec,
        &SweepOptions::default(),
        &Recovery {
            checkpoint: Some(path.clone()),
            resume: true,
            ..Recovery::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.report.restored, 1);
    assert_eq!(
        resumed.report.canonical_json(),
        baseline.report.canonical_json()
    );
    assert!(!resumed.report.checkpoint_degraded);
    std::fs::remove_file(&path).ok();
}

/// A clean checkpointed run reports `checkpoint_degraded: false` in
/// its envelope (and a checkpoint-less run renders the flag too — the
/// field is unconditional so downstream parsers never miss it).
#[test]
fn clean_runs_do_not_raise_the_degraded_flag() {
    let spec = spec();
    let out = run_sweep(&spec, &SweepOptions::default());
    assert!(!out.report.checkpoint_degraded);
    assert!(out
        .report
        .to_json()
        .contains("\"checkpoint_degraded\": false"));
}

#[test]
fn checkpointed_failures_resume_as_typed_errors() {
    let spec = spec();
    let mut plan = FailPlan::default();
    plan.insert(2, FailMode::Panic);
    let path = temp("typed_errors");
    std::fs::remove_file(&path).ok();
    let first = run_sweep_with(
        &spec,
        &SweepOptions::default(),
        &Recovery {
            fail_plan: Some(plan),
            checkpoint: Some(path.clone()),
            ..Recovery::default()
        },
    )
    .unwrap();
    assert_eq!(first.report.errors().len(), 1);
    // Resume WITHOUT the fail plan: the recorded failure is restored
    // as-is (a checkpoint preserves what happened, including errors).
    let resumed = run_sweep_with(
        &spec,
        &SweepOptions::default(),
        &Recovery {
            checkpoint: Some(path.clone()),
            resume: true,
            ..Recovery::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.report.restored, 6);
    assert_eq!(resumed.report.errors().len(), 1);
    assert_eq!(resumed.report.errors()[0].1.kind(), "panic");
    assert_eq!(
        resumed.report.canonical_json(),
        first.report.canonical_json()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn spec_edits_invalidate_checkpoint_entries() {
    let spec_a = spec();
    let path = temp("spec_edit");
    std::fs::remove_file(&path).ok();
    run_sweep_with(
        &spec_a,
        &SweepOptions::default(),
        &Recovery {
            checkpoint: Some(path.clone()),
            ..Recovery::default()
        },
    )
    .unwrap();
    // Change the grading budget: every point's content key changes, so
    // nothing from the stale checkpoint may be served.
    let mut spec_b = spec();
    spec_b.patterns = vec![128];
    let resumed = run_sweep_with(
        &spec_b,
        &SweepOptions::default(),
        &Recovery {
            checkpoint: Some(path.clone()),
            resume: true,
            ..Recovery::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.report.restored, 0);
    assert_eq!(
        resumed.report.canonical_json(),
        run_sweep(&spec_b, &SweepOptions::default())
            .report
            .canonical_json()
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn zero_budget_timeouts_checkpoint_and_resume_byte_identically() {
    let mut spec = SweepSpec::new(vec![benchmarks::figure1()]);
    spec.strategies = vec![DftStrategy::FullScan, DftStrategy::None];
    spec.patterns = vec![256];
    let opts = SweepOptions {
        point_budget: Some(Duration::ZERO),
        ..SweepOptions::default()
    };
    let baseline = run_sweep(&spec, &opts);
    assert!(baseline.report.timeouts() > 0, "zero budget must truncate");
    let path = temp("timeout_ckpt");
    std::fs::remove_file(&path).ok();
    run_sweep_with(
        &spec,
        &opts,
        &Recovery {
            checkpoint: Some(path.clone()),
            ..Recovery::default()
        },
    )
    .unwrap();
    truncate_checkpoint(&path, 1);
    let resumed = run_sweep_with(
        &spec,
        &opts,
        &Recovery {
            checkpoint: Some(path.clone()),
            resume: true,
            ..Recovery::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.report.restored, 1);
    assert_eq!(
        resumed.report.canonical_json(),
        baseline.report.canonical_json(),
        "timed-out partial coverage must round-trip through the checkpoint"
    );
    std::fs::remove_file(&path).ok();
}

/// Two writers appending to one checkpoint file concurrently (the
/// coordinator plus a straggler from a previous run, or two sweeps
/// pointed at the same path) must never interleave partial lines:
/// every record is written as one `write_all` on an `O_APPEND`
/// descriptor, so the file stays parseable and complete.
#[test]
fn concurrent_checkpoint_writers_never_tear_lines() {
    let path = temp("two_writers");
    let _ = std::fs::remove_file(&path);
    const PER_WRITER: usize = 500;
    // A payload long enough to straddle small pipe/page buffers if a
    // writer ever split it across calls.
    let payload = |w: usize, i: usize| {
        format!(
            "{{\"index\": {i}, \"writer\": {w}, \"pad\": \"{}\"}}",
            "x".repeat(512 + (i % 7) * 97)
        )
    };
    std::thread::scope(|s| {
        for w in 0..2usize {
            let path = path.clone();
            s.spawn(move || {
                let ck = hlstb_dse::Checkpoint::open_append(&path).unwrap();
                for i in 0..PER_WRITER {
                    let key = (w * PER_WRITER + i) as u64;
                    ck.record(key, i, &payload(w, i)).unwrap();
                }
            });
        }
    });
    // Every line must parse as a full record — a torn line would make
    // `RestoredSet::load` fail or drop entries.
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 2 * PER_WRITER, "records went missing");
    let restored = hlstb_dse::RestoredSet::load(&path).unwrap();
    assert_eq!(restored.len(), 2 * PER_WRITER);
    for w in 0..2usize {
        for i in 0..PER_WRITER {
            let key = (w * PER_WRITER + i) as u64;
            let got = restored
                .lookup(key, i)
                .unwrap_or_else(|| panic!("writer {w} record {i} torn or lost"));
            assert_eq!(got, payload(w, i));
        }
    }
    let _ = std::fs::remove_file(&path);
}
