//! Differential validation of the SoA grading engine: on random
//! circuits, random frames, and random lane masks, the event-driven
//! structure-of-arrays engine must reproduce the reference engine's
//! detected sets and coverage curves bit-for-bit at every word width.

use hlstb_netlist::fault::all_faults;
use hlstb_netlist::fsim::{
    comb_fault_sim_observed_opts, comb_fault_sim_opts, lane_mask, ParallelOptions, SimEngine,
    TestFrame,
};
use hlstb_netlist::net::{random_combinational, NetId, Netlist};
use hlstb_netlist::random::random_pattern_run_opts;
use hlstb_netlist::word::WordWidth;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn frames_for(nl: &Netlist, count: usize, rng: &mut StdRng) -> Vec<TestFrame> {
    (0..count)
        .map(|_| {
            TestFrame::new(
                (0..nl.inputs().len()).map(|_| rng.gen()).collect(),
                (0..nl.dffs().len()).map(|_| rng.gen()).collect(),
            )
        })
        .collect()
}

fn soa_opts(width: WordWidth) -> ParallelOptions {
    ParallelOptions {
        engine: SimEngine::Soa,
        word_width: width,
        ..ParallelOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Full-mask frames: detected sets and work-ledger invariants agree
    /// between the reference engine and the SoA engine at every width.
    #[test]
    fn detected_sets_match_on_random_netlists(
        seed in 0u64..10_000,
        gates in 4usize..48,
        frame_count in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(5, gates, 2, &mut rng);
        let faults = all_faults(&nl);
        let frames = frames_for(&nl, frame_count, &mut rng);
        let (reference, ref_stats) =
            comb_fault_sim_opts(&nl, &faults, &frames, &ParallelOptions::default());
        for width in WordWidth::ALL {
            let (soa, stats) = comb_fault_sim_opts(&nl, &faults, &frames, &soa_opts(width));
            prop_assert_eq!(&soa, &reference, "width {} seed {}", width, seed);
            // Both engines see the same structural observability.
            prop_assert_eq!(stats.unobservable, ref_stats.unobservable,
                            "width {} seed {}", width, seed);
            let pairs = (stats.faults as u64 - stats.unobservable) * stats.frames as u64;
            prop_assert_eq!(stats.fault_evals + stats.screened + stats.dropped, pairs,
                            "width {} seed {}", width, seed);
        }
    }

    /// Randomly masked tail lanes: padding lanes must be invisible to
    /// both engines, so masking a frame is equivalent to grading the
    /// frame with the padding lanes replaced by copies of a live lane.
    #[test]
    fn masked_frames_match_on_random_netlists(
        seed in 0u64..10_000,
        gates in 4usize..40,
        live in 1usize..64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(4, gates, 2, &mut rng);
        let faults = all_faults(&nl);
        let mut frames = frames_for(&nl, 3, &mut rng);
        frames.last_mut().unwrap().mask = lane_mask(live);
        let (reference, _) =
            comb_fault_sim_opts(&nl, &faults, &frames, &ParallelOptions::default());
        // Ground truth: broadcast lane 0 of the tail frame over its
        // padding lanes and grade with all lanes live.
        let mut explicit = frames.clone();
        {
            let tail = explicit.last_mut().unwrap();
            tail.mask = u64::MAX;
            for w in tail.pi.iter_mut().chain(tail.ff.iter_mut()) {
                let lane0 = if *w & 1 == 1 { u64::MAX } else { 0 };
                *w = (*w & lane_mask(live)) | (lane0 & !lane_mask(live));
            }
        }
        let (truth, _) =
            comb_fault_sim_opts(&nl, &faults, &explicit, &ParallelOptions::default());
        prop_assert_eq!(&reference, &truth, "reference mask, seed {}", seed);
        for width in WordWidth::ALL {
            let (soa, _) = comb_fault_sim_opts(&nl, &faults, &frames, &soa_opts(width));
            prop_assert_eq!(&soa, &truth, "width {} seed {}", width, seed);
        }
    }

    /// Restricted observation sets (a random subset of outputs) agree,
    /// exercising the SoA engine's observability-reachability pruning
    /// against the reference cone engine.
    #[test]
    fn restricted_observation_sets_match(
        seed in 0u64..10_000,
        gates in 4usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(4, gates, 3, &mut rng);
        let faults = all_faults(&nl);
        let frames = frames_for(&nl, 4, &mut rng);
        // Observe only the first output.
        let observed: Vec<NetId> = nl.outputs().iter().take(1).map(|(_, n)| *n).collect();
        let (reference, ref_stats) = comb_fault_sim_observed_opts(
            &nl, &faults, &frames, &observed, &ParallelOptions::default());
        for width in WordWidth::ALL {
            let (soa, stats) = comb_fault_sim_observed_opts(
                &nl, &faults, &frames, &observed, &soa_opts(width));
            prop_assert_eq!(&soa, &reference, "width {} seed {}", width, seed);
            prop_assert_eq!(stats.unobservable, ref_stats.unobservable,
                            "width {} seed {}", width, seed);
        }
    }

    /// Coverage curves from the pseudorandom runner are bit-identical
    /// (same rng consumption, same points) whichever engine grades the
    /// batches.
    #[test]
    fn coverage_curves_match(
        seed in 0u64..10_000,
        gates in 4usize..40,
        budget in 1usize..300,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(5, gates, 2, &mut rng);
        let faults = all_faults(&nl);
        let (reference, _) = random_pattern_run_opts(
            &nl, &faults, budget, &mut StdRng::seed_from_u64(seed ^ 0xC0FFEE),
            &ParallelOptions::default());
        for width in WordWidth::ALL {
            let (soa, _) = random_pattern_run_opts(
                &nl, &faults, budget, &mut StdRng::seed_from_u64(seed ^ 0xC0FFEE),
                &soa_opts(width));
            prop_assert_eq!(&soa.curve, &reference.curve, "width {} seed {}", width, seed);
            prop_assert_eq!(&soa.summary, &reference.summary, "width {} seed {}", width, seed);
        }
    }
}

/// Threading the SoA engine never changes the result either.
#[test]
fn soa_sharding_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(1996);
    let nl = random_combinational(6, 64, 3, &mut rng);
    let faults = all_faults(&nl);
    let frames = frames_for(&nl, 8, &mut rng);
    let (reference, _) = comb_fault_sim_opts(&nl, &faults, &frames, &ParallelOptions::default());
    for width in WordWidth::ALL {
        for threads in [1, 2, 4] {
            let opts = ParallelOptions {
                threads,
                min_faults_per_thread: 0,
                ..soa_opts(width)
            };
            let (soa, stats) = comb_fault_sim_opts(&nl, &faults, &frames, &opts);
            assert_eq!(soa, reference, "width {width} threads {threads}");
            assert_eq!(stats.threads, threads.min(faults.len()));
        }
    }
}
