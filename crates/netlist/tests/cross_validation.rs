//! Property-based cross-validation of the gate-level substrate: the
//! independent instruments — PODEM, parallel-pattern fault simulation,
//! and exhaustive simulation — must agree on random circuits.

use hlstb_netlist::atpg::{generate_all, podem, AtpgOptions, CombView, FaultStatus};
use hlstb_netlist::fault::{all_faults, Fault};
use hlstb_netlist::fsim::{comb_fault_sim, TestFrame};
use hlstb_netlist::net::random_combinational;
use hlstb_netlist::sim::{eval_comb, ForcedNet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every pattern PODEM claims detects a fault is confirmed by the
    /// independent fault simulator.
    #[test]
    fn podem_detections_confirmed_by_fault_sim(
        seed in 0u64..10_000,
        gates in 4usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(4, gates, 2, &mut rng);
        let view = CombView::functional(&nl);
        for fault in all_faults(&nl).into_iter().take(12) {
            let (status, _) = podem(&nl, &view, &[fault.net], fault.stuck_at_one,
                                    &AtpgOptions::default());
            if let FaultStatus::Detected(cube) = status {
                let frame = cube.to_frame(&nl);
                let sim = comb_fault_sim(&nl, &[fault], std::slice::from_ref(&frame));
                prop_assert!(
                    sim.detected.contains(&fault),
                    "PODEM pattern does not detect {} (seed {})", fault, seed
                );
            }
        }
    }

    /// Untestable verdicts are exhaustively true on small circuits.
    #[test]
    fn untestable_verdicts_are_exhaustively_true(
        seed in 0u64..10_000,
        gates in 3usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(3, gates, 1, &mut rng);
        let view = CombView::functional(&nl);
        // Exhaustive frame: all 8 input combinations packed in one word.
        let mut pi = vec![0u64; 3];
        for k in 0..8u64 {
            for (i, word) in pi.iter_mut().enumerate() {
                if k >> i & 1 == 1 {
                    *word |= 1 << k;
                }
            }
        }
        let frame = TestFrame::new(pi, Vec::new());
        for fault in all_faults(&nl).into_iter().take(10) {
            let (status, _) = podem(&nl, &view, &[fault.net], fault.stuck_at_one,
                                    &AtpgOptions::default());
            if status == FaultStatus::Untestable {
                let sim = comb_fault_sim(&nl, &[fault], std::slice::from_ref(&frame));
                prop_assert!(
                    sim.detected.is_empty(),
                    "PODEM called {} untestable but exhaustive sim detects it (seed {})",
                    fault, seed
                );
            }
        }
    }

    /// Full ATPG runs reach 100 % efficiency on combinational circuits
    /// (every fault detected or proved redundant, none aborted).
    #[test]
    fn full_runs_reach_complete_efficiency(
        seed in 0u64..10_000,
        gates in 4usize..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(4, gates, 2, &mut rng);
        let run = generate_all(&nl, &all_faults(&nl), &AtpgOptions::default());
        prop_assert_eq!(run.aborted, 0);
        prop_assert!((run.efficiency_percent() - 100.0).abs() < 1e-9);
    }

    /// Forcing a net reproduces exactly the faulty machine the fault
    /// simulator models (spot check of the injection mechanism).
    #[test]
    fn forced_nets_match_fault_injection(
        seed in 0u64..10_000,
        gates in 3usize..24,
        pattern in 0u64..16,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(4, gates, 1, &mut rng);
        let pi: Vec<u64> = (0..4)
            .map(|i| if pattern >> i & 1 == 1 { u64::MAX } else { 0 })
            .collect();
        let target = nl.outputs()[0].1;
        let fault = Fault::sa1(target);
        let forced = eval_comb(&nl, &pi, &[], Some(ForcedNet { net: target, value: true }));
        prop_assert_eq!(forced[target.index()], u64::MAX);
        let _ = fault;
    }
}
