//! Property tests for the parallel fault-grading engine: every
//! configuration of `ParallelOptions` — any thread count, dropping on
//! or off — must return the exact `detected` set and
//! `coverage_percent` of the serial no-drop path, on arbitrary random
//! netlists and frames. Bit-identity is the engine's contract; these
//! tests are its teeth.

use hlstb_netlist::fault::collapsed_faults;
use hlstb_netlist::fsim::{comb_fault_sim_opts, seq_fault_sim_opts, ParallelOptions, TestFrame};
use hlstb_netlist::net::random_combinational;
use hlstb_netlist::random::random_pattern_run_opts;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn frames_for(nl: &hlstb_netlist::net::Netlist, count: usize, rng: &mut StdRng) -> Vec<TestFrame> {
    (0..count)
        .map(|_| {
            TestFrame::new(
                (0..nl.inputs().len()).map(|_| rng.gen()).collect(),
                (0..nl.dffs().len()).map(|_| rng.gen()).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn parallel_dropping_comb_grading_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        inputs in 2usize..6,
        gates in 4usize..40,
        outputs in 1usize..4,
        nframes in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(inputs, gates, outputs, &mut rng);
        let faults = collapsed_faults(&nl);
        let frames = frames_for(&nl, nframes, &mut rng);
        let serial = ParallelOptions { threads: 1, drop_detected: false, ..ParallelOptions::with_threads_ungated(1) };
        let (base, _) = comb_fault_sim_opts(&nl, &faults, &frames, &serial);
        for threads in [1usize, 2, 4] {
            for drop_detected in [false, true] {
                // `min_faults_per_thread: 0` disables the small-universe
                // gate so the sharded path is actually exercised on these
                // tiny random netlists.
                let opts = ParallelOptions { threads, drop_detected, ..ParallelOptions::with_threads_ungated(1) };
                let (got, stats) = comb_fault_sim_opts(&nl, &faults, &frames, &opts);
                prop_assert_eq!(&got.detected, &base.detected, "t={} d={}", threads, drop_detected);
                prop_assert_eq!(got.coverage_percent(), base.coverage_percent());
                // The accounting must cover the universe exactly.
                prop_assert_eq!(
                    stats.fault_evals + stats.screened + stats.dropped,
                    (faults.len() as u64 - stats.unobservable) * frames.len() as u64
                );
            }
        }
    }

    #[test]
    fn parallel_random_pattern_run_matches_serial_curve(
        seed in 0u64..10_000,
        inputs in 2usize..5,
        gates in 4usize..30,
        outputs in 1usize..3,
        max_patterns in 1usize..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let nl = random_combinational(inputs, gates, outputs, &mut rng);
        let faults = collapsed_faults(&nl);
        let serial = ParallelOptions { threads: 1, drop_detected: false, ..ParallelOptions::with_threads_ungated(1) };
        let mut r1 = StdRng::seed_from_u64(seed ^ 0xABCD);
        let (base, _) = random_pattern_run_opts(&nl, &faults, max_patterns, &mut r1, &serial);
        for threads in [2usize, 4] {
            let mut r2 = StdRng::seed_from_u64(seed ^ 0xABCD);
            let opts = ParallelOptions::with_threads_ungated(threads);
            let (got, _) = random_pattern_run_opts(&nl, &faults, max_patterns, &mut r2, &opts);
            prop_assert_eq!(&got.summary.detected, &base.summary.detected);
            prop_assert_eq!(&got.curve, &base.curve);
            // Satellite regression: the curve never claims more patterns
            // than were requested, and a run that does not saturate ends
            // exactly at the requested count (clamped final batch).
            prop_assert!(got.curve.last().unwrap().patterns <= max_patterns.max(64));
            if got.summary.detected.len() < faults.len() {
                prop_assert_eq!(got.curve.last().unwrap().patterns, max_patterns);
            }
        }
    }

    #[test]
    fn parallel_dropping_seq_grading_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        inputs in 2usize..5,
        gates in 4usize..24,
        outputs in 1usize..3,
        cycles in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // `random_combinational` has no flops, but the sequential engine
        // must still agree with itself across configurations when driven
        // cycle by cycle.
        let nl = random_combinational(inputs, gates, outputs, &mut rng);
        let faults = collapsed_faults(&nl);
        let vectors: Vec<Vec<u64>> = (0..cycles)
            .map(|_| (0..nl.inputs().len()).map(|_| rng.gen()).collect())
            .collect();
        let serial = ParallelOptions { threads: 1, drop_detected: false, ..ParallelOptions::with_threads_ungated(1) };
        let (base, _) = seq_fault_sim_opts(&nl, &faults, &vectors, &serial);
        for threads in [1usize, 2, 4] {
            for drop_detected in [false, true] {
                let opts = ParallelOptions { threads, drop_detected, ..ParallelOptions::with_threads_ungated(1) };
                let (got, _) = seq_fault_sim_opts(&nl, &faults, &vectors, &opts);
                prop_assert_eq!(&got.detected, &base.detected, "t={} d={}", threads, drop_detected);
            }
        }
    }
}
