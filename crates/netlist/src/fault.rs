//! Single-stuck-at fault universe.
//!
//! Faults are modeled per net (gate output), the granularity every
//! experiment in the workbench uses consistently for both coverage
//! numerators and denominators. [`collapsed_faults`] removes the
//! structurally equivalent ones (through buffers and single-fanout
//! inverters) so effort metrics aren't inflated by trivial duplicates.

use crate::net::{GateKind, NetId, Netlist};

/// A single stuck-at fault on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fault {
    /// The faulty net.
    pub net: NetId,
    /// `true` for stuck-at-1, `false` for stuck-at-0.
    pub stuck_at_one: bool,
}

impl Fault {
    /// Stuck-at-0 on `net`.
    pub fn sa0(net: NetId) -> Self {
        Fault {
            net,
            stuck_at_one: false,
        }
    }

    /// Stuck-at-1 on `net`.
    pub fn sa1(net: NetId) -> Self {
        Fault {
            net,
            stuck_at_one: true,
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/sa{}", self.net, u8::from(self.stuck_at_one))
    }
}

/// Every stuck-at fault on every non-constant net.
pub fn all_faults(nl: &Netlist) -> Vec<Fault> {
    let mut out = Vec::new();
    for (id, g) in nl.gates() {
        if matches!(g.kind, GateKind::Const(_)) {
            continue;
        }
        out.push(Fault::sa0(id.net()));
        out.push(Fault::sa1(id.net()));
    }
    out
}

/// Structurally collapsed fault list.
///
/// * A buffer's output faults are equivalent to its input faults when the
///   input net has no other fanout — dropped.
/// * An inverter's output sa0/sa1 are equivalent to its input sa1/sa0
///   under the same single-fanout condition — dropped.
///
/// The collapse only ever removes faults, so coverage percentages remain
/// comparable between the full and collapsed universes.
pub fn collapsed_faults(nl: &Netlist) -> Vec<Fault> {
    let fanouts = nl.fanouts();
    let mut keep = Vec::new();
    for (id, g) in nl.gates() {
        if matches!(g.kind, GateKind::Const(_)) {
            continue;
        }
        let drop = match g.kind {
            GateKind::Buf | GateKind::Not => {
                let src = g.inputs[0];
                fanouts[src.index()].len() == 1
                    && !matches!(nl.gate(crate::net::GateId(src.0)).kind, GateKind::Const(_))
            }
            _ => false,
        };
        if !drop {
            keep.push(Fault::sa0(id.net()));
            keep.push(Fault::sa1(id.net()));
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetlistBuilder;

    #[test]
    fn all_faults_skip_constants() {
        let mut b = NetlistBuilder::new("c");
        let x = b.input("x");
        let z = b.zero();
        let g = b.and2(x, z);
        b.output("o", g);
        let nl = b.finish().unwrap();
        let faults = all_faults(&nl);
        // x and g only: 4 faults.
        assert_eq!(faults.len(), 4);
    }

    #[test]
    fn collapse_drops_single_fanout_inverter_outputs() {
        let mut b = NetlistBuilder::new("inv");
        let x = b.input("x");
        let n = b.not(x);
        b.output("o", n);
        let nl = b.finish().unwrap();
        assert_eq!(all_faults(&nl).len(), 4);
        assert_eq!(collapsed_faults(&nl).len(), 2);
    }

    #[test]
    fn collapse_keeps_inverters_on_fanout_stems() {
        let mut b = NetlistBuilder::new("stem");
        let x = b.input("x");
        let n = b.not(x);
        let a = b.and2(x, n); // x has fanout 2
        b.output("o", a);
        let nl = b.finish().unwrap();
        // Inverter output kept because x fans out elsewhere.
        assert_eq!(collapsed_faults(&nl).len(), 6);
    }

    #[test]
    fn display_format() {
        assert_eq!(Fault::sa1(NetId(3)).to_string(), "net3/sa1");
        assert_eq!(Fault::sa0(NetId(0)).to_string(), "net0/sa0");
    }
}
