//! Pseudorandom-pattern coverage measurement for the BIST experiments.
//!
//! Pseudorandom BIST quality is a coverage-versus-pattern-count curve:
//! how fast random patterns detect the fault universe, and where the
//! curve saturates (random-pattern-resistant faults). The arithmetic
//! BIST experiment (E13) compares these curves for accumulator-generated
//! versus LFSR-like uniform patterns.

use rand::Rng;

use crate::fault::Fault;
use crate::fsim::{comb_fault_sim_opts, FaultSimSummary, ParallelOptions, TestFrame};
use crate::net::Netlist;
use crate::stats::GradeStats;

/// A point on a coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// Patterns applied so far.
    pub patterns: usize,
    /// Coverage in percent at this point.
    pub coverage_percent: f64,
}

/// Result of a pseudorandom grading run.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomRun {
    /// The coverage curve, one point per batch of 64 patterns.
    pub curve: Vec<CoveragePoint>,
    /// Final summary.
    pub summary: FaultSimSummary,
    /// Whether the run stopped early because the engine's
    /// [`crate::deadline::Deadline`] expired: the curve is then a
    /// truncated prefix of the requested budget, not a saturated run.
    pub timed_out: bool,
}

impl RandomRun {
    /// The number of patterns needed to reach `target` percent coverage,
    /// if the run got there.
    pub fn patterns_to_reach(&self, target: f64) -> Option<usize> {
        self.curve
            .iter()
            .find(|p| p.coverage_percent >= target)
            .map(|p| p.patterns)
    }
}

/// Grades uniformly random full-scan patterns in batches of 64 until
/// `max_patterns` have been applied (rounded up to a whole batch).
pub fn random_pattern_run<R: Rng>(
    nl: &Netlist,
    faults: &[Fault],
    max_patterns: usize,
    rng: &mut R,
) -> RandomRun {
    random_pattern_run_opts(nl, faults, max_patterns, rng, &ParallelOptions::default()).0
}

/// [`random_pattern_run`] with engine options and aggregated run
/// instrumentation. The batch loop already drops detected faults from
/// the graded universe between batches; `opts` additionally controls
/// sharding and in-batch dropping.
pub fn random_pattern_run_opts<R: Rng>(
    nl: &Netlist,
    faults: &[Fault],
    max_patterns: usize,
    rng: &mut R,
    opts: &ParallelOptions,
) -> (RandomRun, GradeStats) {
    let _span = hlstb_trace::span("fsim.grade");
    let batches = max_patterns.div_ceil(64).max(1);
    let mut detected = std::collections::BTreeSet::new();
    let mut curve = Vec::with_capacity(batches);
    let mut remaining: Vec<Fault> = faults.to_vec();
    let mut stats = GradeStats::default();
    let mut timed_out = false;
    for bi in 0..batches {
        // Cooperative cutoff between batches. The first batch always
        // runs, so an expired-from-the-start deadline still yields one
        // deterministic curve point (partial coverage, flagged below).
        if bi > 0 && opts.deadline.expired() {
            timed_out = true;
            break;
        }
        // The final batch may be asked for fewer than 64 patterns; mask
        // the unused high lanes so the random padding in them cannot
        // contribute phantom detections. A zero request still grades
        // one whole live word (see the curve labeling below).
        let live = if max_patterns == 0 {
            64
        } else {
            (max_patterns - bi * 64).min(64)
        };
        let frame = TestFrame::with_lanes(
            (0..nl.inputs().len()).map(|_| rng.gen()).collect(),
            (0..nl.dffs().len()).map(|_| rng.gen()).collect(),
            live,
        );
        let (r, s) = comb_fault_sim_opts(nl, &remaining, std::slice::from_ref(&frame), opts);
        stats.absorb(&s);
        for f in r.detected {
            detected.insert(f);
        }
        remaining.retain(|f| !detected.contains(f));
        // The final batch is padded to a full 64-pattern word; label the
        // point with the patterns actually requested, not the padding.
        // A zero request still grades one whole word and says so.
        let applied = if max_patterns == 0 {
            64
        } else {
            ((bi + 1) * 64).min(max_patterns)
        };
        curve.push(CoveragePoint {
            patterns: applied,
            coverage_percent: 100.0 * detected.len() as f64 / faults.len().max(1) as f64,
        });
        if remaining.is_empty() {
            break;
        }
    }
    stats.faults = faults.len();
    let run = RandomRun {
        curve,
        summary: FaultSimSummary {
            detected,
            total: faults.len(),
        },
        // An in-batch truncation (the fsim shards poll the same
        // deadline) also makes the curve partial.
        timed_out: timed_out || stats.timed_out,
    };
    (run, stats)
}

/// Grades a caller-supplied pattern source (e.g. an arithmetic/
/// accumulator generator): `source(i)` must yield the i-th pattern as
/// one bit per primary input and per flip-flop.
pub fn pattern_source_run(
    nl: &Netlist,
    faults: &[Fault],
    max_patterns: usize,
    source: impl FnMut(usize) -> (Vec<bool>, Vec<bool>),
) -> RandomRun {
    pattern_source_run_opts(
        nl,
        faults,
        max_patterns,
        source,
        &ParallelOptions::default(),
    )
    .0
}

/// [`pattern_source_run`] with engine options and aggregated run
/// instrumentation.
pub fn pattern_source_run_opts(
    nl: &Netlist,
    faults: &[Fault],
    max_patterns: usize,
    mut source: impl FnMut(usize) -> (Vec<bool>, Vec<bool>),
    opts: &ParallelOptions,
) -> (RandomRun, GradeStats) {
    let _span = hlstb_trace::span("fsim.grade");
    let mut detected = std::collections::BTreeSet::new();
    let mut curve = Vec::new();
    let mut remaining: Vec<Fault> = faults.to_vec();
    let mut applied = 0usize;
    let mut stats = GradeStats::default();
    let mut timed_out = false;
    while applied < max_patterns && !remaining.is_empty() {
        if applied > 0 && opts.deadline.expired() {
            timed_out = true;
            break;
        }
        // Pack up to 64 patterns into one frame.
        let count = 64.min(max_patterns - applied);
        let mut pi = vec![0u64; nl.inputs().len()];
        let mut ff = vec![0u64; nl.dffs().len()];
        for k in 0..count {
            let (pbits, fbits) = source(applied + k);
            assert_eq!(pbits.len(), pi.len(), "pattern width mismatch");
            assert_eq!(fbits.len(), ff.len(), "state width mismatch");
            for (i, &bit) in pbits.iter().enumerate() {
                if bit {
                    pi[i] |= 1 << k;
                }
            }
            for (i, &bit) in fbits.iter().enumerate() {
                if bit {
                    ff[i] |= 1 << k;
                }
            }
        }
        applied += count;
        // A partial word's high lanes are zero-filled, not real
        // patterns; mask them out of detection.
        let frame = TestFrame::with_lanes(pi, ff, count);
        let (r, s) = comb_fault_sim_opts(nl, &remaining, std::slice::from_ref(&frame), opts);
        stats.absorb(&s);
        for f in r.detected {
            detected.insert(f);
        }
        remaining.retain(|f| !detected.contains(f));
        curve.push(CoveragePoint {
            patterns: applied,
            coverage_percent: 100.0 * detected.len() as f64 / faults.len().max(1) as f64,
        });
    }
    stats.faults = faults.len();
    let run = RandomRun {
        curve,
        summary: FaultSimSummary {
            detected,
            total: faults.len(),
        },
        timed_out: timed_out || stats.timed_out,
    };
    (run, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use crate::net::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder() -> Netlist {
        let mut b = NetlistBuilder::new("a");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let (s, co) = b.ripple_add(&a, &c);
        b.outputs("s", &s);
        b.output("co", co);
        b.finish().unwrap()
    }

    #[test]
    fn random_patterns_cover_an_adder() {
        let nl = adder();
        let faults = all_faults(&nl);
        let mut rng = StdRng::seed_from_u64(42);
        let run = random_pattern_run(&nl, &faults, 512, &mut rng);
        assert!(run.summary.coverage_percent() > 95.0);
        // The curve is monotone.
        for w in run.curve.windows(2) {
            assert!(w[1].coverage_percent >= w[0].coverage_percent);
        }
    }

    #[test]
    fn patterns_to_reach_reports_crossing() {
        let nl = adder();
        let faults = all_faults(&nl);
        let mut rng = StdRng::seed_from_u64(1);
        let run = random_pattern_run(&nl, &faults, 2048, &mut rng);
        let p90 = run.patterns_to_reach(90.0);
        assert!(p90.is_some());
        assert!(run.patterns_to_reach(101.0).is_none());
    }

    #[test]
    fn counting_source_covers_small_adder() {
        let nl = adder();
        let faults = all_faults(&nl);
        // Exhaustive 8-bit counting source.
        let run = pattern_source_run(&nl, &faults, 256, |i| {
            let bits = (0..8).map(|k| i >> k & 1 == 1).collect();
            (bits, Vec::new())
        });
        assert_eq!(run.summary.coverage_percent(), 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = adder();
        let faults = all_faults(&nl);
        let r1 = random_pattern_run(&nl, &faults, 128, &mut StdRng::seed_from_u64(9));
        let r2 = random_pattern_run(&nl, &faults, 128, &mut StdRng::seed_from_u64(9));
        assert_eq!(r1.curve, r2.curve);
    }

    #[test]
    fn curve_tail_is_clamped_to_max_patterns() {
        let nl = adder();
        let faults = all_faults(&nl);
        // 100 is not a multiple of 64: the last point must say 100, not
        // 128 (the padded batch size).
        let run = random_pattern_run(&nl, &faults, 100, &mut StdRng::seed_from_u64(3));
        assert!(run.curve.iter().all(|p| p.patterns <= 100));
        let last = run.curve.last().unwrap();
        assert!(
            last.patterns == 100 || run.curve.len() < 2,
            "{:?}",
            run.curve
        );
        // Requests below one batch still grade (and label) a full word.
        let tiny = random_pattern_run(&nl, &faults, 0, &mut StdRng::seed_from_u64(3));
        assert_eq!(tiny.curve.first().unwrap().patterns, 64);
    }

    /// Satellite regression: a partial final word must not let its
    /// padding lanes detect anything. One all-ones pattern graded
    /// through the source runner must match a full word of all-ones
    /// duplicates — and differ from a run that really applies the
    /// all-zero pattern the padding used to smuggle in.
    #[test]
    fn tail_padding_lanes_never_detect() {
        use crate::fsim::{comb_fault_sim, TestFrame};
        let nl = adder();
        let faults = all_faults(&nl);
        let run = pattern_source_run(&nl, &faults, 1, |_| (vec![true; 8], Vec::new()));
        // Ground truth: 64 duplicates of the all-ones pattern.
        let want = comb_fault_sim(
            &nl,
            &faults,
            &[TestFrame::new(vec![u64::MAX; 8], Vec::new())],
        );
        assert_eq!(run.summary.detected, want.detected);
        // The buggy padding behaved like an extra all-zero pattern,
        // which detects strictly more on an adder (e.g. input sa1s).
        let with_zero = comb_fault_sim(
            &nl,
            &faults,
            &[
                TestFrame::new(vec![u64::MAX; 8], Vec::new()),
                TestFrame::new(vec![0u64; 8], Vec::new()),
            ],
        );
        assert!(want.detected.len() < with_zero.detected.len());
    }

    /// A 16-input AND chain: the output stuck-at-0 fault needs the
    /// all-ones pattern, so 64 random patterns essentially never
    /// saturate the universe and the batch loop keeps running.
    fn and_chain() -> Netlist {
        let mut b = NetlistBuilder::new("ac");
        let ins: Vec<_> = (0..16).map(|i| b.input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = b.and2(acc, x);
        }
        b.output("o", acc);
        b.finish().unwrap()
    }

    #[test]
    fn expired_deadline_truncates_the_curve_deterministically() {
        use crate::deadline::Deadline;
        use std::time::Duration;
        let nl = and_chain();
        let faults = all_faults(&nl);
        let opts = ParallelOptions {
            deadline: Deadline::after(Duration::ZERO),
            ..ParallelOptions::default()
        };
        let (a, _) =
            random_pattern_run_opts(&nl, &faults, 512, &mut StdRng::seed_from_u64(7), &opts);
        let (b, _) =
            random_pattern_run_opts(&nl, &faults, 512, &mut StdRng::seed_from_u64(7), &opts);
        // Exactly one batch runs before the (pre-expired) cutoff fires,
        // so the partial result is reproducible.
        assert!(a.timed_out);
        assert_eq!(a.curve.len(), 1);
        assert_eq!(a.curve, b.curve);
        assert_eq!(a.summary, b.summary);
        // Without a deadline the same seed grades the full budget.
        let full = random_pattern_run(&nl, &faults, 512, &mut StdRng::seed_from_u64(7));
        assert!(!full.timed_out);
        assert_eq!(full.curve[0], a.curve[0]);
    }

    #[test]
    fn opts_variant_matches_and_reports_work() {
        let nl = adder();
        let faults = all_faults(&nl);
        let plain = random_pattern_run(&nl, &faults, 256, &mut StdRng::seed_from_u64(5));
        let (opted, stats) = random_pattern_run_opts(
            &nl,
            &faults,
            256,
            &mut StdRng::seed_from_u64(5),
            &ParallelOptions::with_threads_ungated(2),
        );
        assert_eq!(plain.curve, opted.curve);
        assert_eq!(plain.summary, opted.summary);
        assert_eq!(stats.faults, faults.len());
        assert!(stats.fault_evals > 0);
        assert!(stats.wall() > std::time::Duration::ZERO);
    }
}
