//! Pseudorandom-pattern coverage measurement for the BIST experiments.
//!
//! Pseudorandom BIST quality is a coverage-versus-pattern-count curve:
//! how fast random patterns detect the fault universe, and where the
//! curve saturates (random-pattern-resistant faults). The arithmetic
//! BIST experiment (E13) compares these curves for accumulator-generated
//! versus LFSR-like uniform patterns.

use rand::Rng;

use crate::fault::Fault;
use crate::fsim::{comb_fault_sim, FaultSimSummary, TestFrame};
use crate::net::Netlist;

/// A point on a coverage curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoveragePoint {
    /// Patterns applied so far.
    pub patterns: usize,
    /// Coverage in percent at this point.
    pub coverage_percent: f64,
}

/// Result of a pseudorandom grading run.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomRun {
    /// The coverage curve, one point per batch of 64 patterns.
    pub curve: Vec<CoveragePoint>,
    /// Final summary.
    pub summary: FaultSimSummary,
}

impl RandomRun {
    /// The number of patterns needed to reach `target` percent coverage,
    /// if the run got there.
    pub fn patterns_to_reach(&self, target: f64) -> Option<usize> {
        self.curve.iter().find(|p| p.coverage_percent >= target).map(|p| p.patterns)
    }
}

/// Grades uniformly random full-scan patterns in batches of 64 until
/// `max_patterns` have been applied (rounded up to a whole batch).
pub fn random_pattern_run<R: Rng>(
    nl: &Netlist,
    faults: &[Fault],
    max_patterns: usize,
    rng: &mut R,
) -> RandomRun {
    let batches = max_patterns.div_ceil(64).max(1);
    let mut detected = std::collections::BTreeSet::new();
    let mut curve = Vec::with_capacity(batches);
    let mut remaining: Vec<Fault> = faults.to_vec();
    for bi in 0..batches {
        let frame = TestFrame {
            pi: (0..nl.inputs().len()).map(|_| rng.gen()).collect(),
            ff: (0..nl.dffs().len()).map(|_| rng.gen()).collect(),
        };
        let r = comb_fault_sim(nl, &remaining, std::slice::from_ref(&frame));
        for f in r.detected {
            detected.insert(f);
        }
        remaining.retain(|f| !detected.contains(f));
        curve.push(CoveragePoint {
            patterns: (bi + 1) * 64,
            coverage_percent: 100.0 * detected.len() as f64 / faults.len().max(1) as f64,
        });
        if remaining.is_empty() {
            break;
        }
    }
    RandomRun {
        curve,
        summary: FaultSimSummary { detected, total: faults.len() },
    }
}

/// Grades a caller-supplied pattern source (e.g. an arithmetic/
/// accumulator generator): `source(i)` must yield the i-th pattern as
/// one bit per primary input and per flip-flop.
pub fn pattern_source_run(
    nl: &Netlist,
    faults: &[Fault],
    max_patterns: usize,
    mut source: impl FnMut(usize) -> (Vec<bool>, Vec<bool>),
) -> RandomRun {
    let mut detected = std::collections::BTreeSet::new();
    let mut curve = Vec::new();
    let mut remaining: Vec<Fault> = faults.to_vec();
    let mut applied = 0usize;
    while applied < max_patterns && !remaining.is_empty() {
        // Pack up to 64 patterns into one frame.
        let count = 64.min(max_patterns - applied);
        let mut pi = vec![0u64; nl.inputs().len()];
        let mut ff = vec![0u64; nl.dffs().len()];
        for k in 0..count {
            let (pbits, fbits) = source(applied + k);
            assert_eq!(pbits.len(), pi.len(), "pattern width mismatch");
            assert_eq!(fbits.len(), ff.len(), "state width mismatch");
            for (i, &bit) in pbits.iter().enumerate() {
                if bit {
                    pi[i] |= 1 << k;
                }
            }
            for (i, &bit) in fbits.iter().enumerate() {
                if bit {
                    ff[i] |= 1 << k;
                }
            }
        }
        applied += count;
        let frame = TestFrame { pi, ff };
        let r = comb_fault_sim(nl, &remaining, std::slice::from_ref(&frame));
        for f in r.detected {
            detected.insert(f);
        }
        remaining.retain(|f| !detected.contains(f));
        curve.push(CoveragePoint {
            patterns: applied,
            coverage_percent: 100.0 * detected.len() as f64 / faults.len().max(1) as f64,
        });
    }
    RandomRun {
        curve,
        summary: FaultSimSummary { detected, total: faults.len() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use crate::net::NetlistBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder() -> Netlist {
        let mut b = NetlistBuilder::new("a");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let (s, co) = b.ripple_add(&a, &c);
        b.outputs("s", &s);
        b.output("co", co);
        b.finish().unwrap()
    }

    #[test]
    fn random_patterns_cover_an_adder() {
        let nl = adder();
        let faults = all_faults(&nl);
        let mut rng = StdRng::seed_from_u64(42);
        let run = random_pattern_run(&nl, &faults, 512, &mut rng);
        assert!(run.summary.coverage_percent() > 95.0);
        // The curve is monotone.
        for w in run.curve.windows(2) {
            assert!(w[1].coverage_percent >= w[0].coverage_percent);
        }
    }

    #[test]
    fn patterns_to_reach_reports_crossing() {
        let nl = adder();
        let faults = all_faults(&nl);
        let mut rng = StdRng::seed_from_u64(1);
        let run = random_pattern_run(&nl, &faults, 2048, &mut rng);
        let p90 = run.patterns_to_reach(90.0);
        assert!(p90.is_some());
        assert!(run.patterns_to_reach(101.0).is_none());
    }

    #[test]
    fn counting_source_covers_small_adder() {
        let nl = adder();
        let faults = all_faults(&nl);
        // Exhaustive 8-bit counting source.
        let run = pattern_source_run(&nl, &faults, 256, |i| {
            let bits = (0..8).map(|k| i >> k & 1 == 1).collect();
            (bits, Vec::new())
        });
        assert_eq!(run.summary.coverage_percent(), 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = adder();
        let faults = all_faults(&nl);
        let r1 = random_pattern_run(&nl, &faults, 128, &mut StdRng::seed_from_u64(9));
        let r2 = random_pattern_run(&nl, &faults, 128, &mut StdRng::seed_from_u64(9));
        assert_eq!(r1.curve, r2.curve);
    }
}
