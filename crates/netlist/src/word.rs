//! Wide pattern words for the parallel-pattern simulators.
//!
//! The classic PPSFP trick packs 64 independent patterns into one `u64`
//! per net. A [`PatternWord`] generalizes the word to `[u64; N]` so one
//! evaluation carries 64·N patterns: `N = 1/4/8` gives 64/256/512
//! patterns per frame. All lane operations are plain bitwise ops the
//! compiler auto-vectorizes; no platform intrinsics are needed, so the
//! widths work identically everywhere.
//!
//! Lanes are fully independent: no operation ever mixes bits between
//! lane positions, which is what makes the tail-lane masking in
//! [`crate::fsim`] sound — a detection in a masked (padding) lane can
//! never have been caused by a real pattern.

use std::fmt;

/// A pattern word: `N` 64-bit lanes, 64·N parallel patterns.
pub type PatternWord<const N: usize> = [u64; N];

/// The selectable pattern-word widths of the SoA engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WordWidth {
    /// One lane — 64 patterns per frame (the historical width).
    #[default]
    W64,
    /// Four lanes — 256 patterns per frame.
    W256,
    /// Eight lanes — 512 patterns per frame.
    W512,
}

impl WordWidth {
    /// Every width, narrowest first.
    pub const ALL: [WordWidth; 3] = [WordWidth::W64, WordWidth::W256, WordWidth::W512];

    /// Number of `u64` lanes in a word of this width.
    pub fn lanes(self) -> usize {
        match self {
            WordWidth::W64 => 1,
            WordWidth::W256 => 4,
            WordWidth::W512 => 8,
        }
    }

    /// Patterns carried per frame at this width.
    pub fn patterns(self) -> usize {
        self.lanes() * 64
    }

    /// Parses `"64"`, `"256"`, or `"512"`.
    pub fn parse(s: &str) -> Option<WordWidth> {
        match s {
            "64" => Some(WordWidth::W64),
            "256" => Some(WordWidth::W256),
            "512" => Some(WordWidth::W512),
            _ => None,
        }
    }
}

impl fmt::Display for WordWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.patterns())
    }
}

/// The all-zeros word.
#[inline]
pub fn zeros<const N: usize>() -> PatternWord<N> {
    [0; N]
}

/// The all-ones word.
#[inline]
pub fn ones<const N: usize>() -> PatternWord<N> {
    [u64::MAX; N]
}

/// Broadcasts one bit across every lane.
#[inline]
pub fn splat<const N: usize>(bit: bool) -> PatternWord<N> {
    if bit {
        ones()
    } else {
        zeros()
    }
}

/// Lanewise NOT.
#[inline]
pub fn not<const N: usize>(a: PatternWord<N>) -> PatternWord<N> {
    let mut out = [0; N];
    for i in 0..N {
        out[i] = !a[i];
    }
    out
}

/// Lanewise AND.
#[inline]
pub fn and<const N: usize>(a: PatternWord<N>, b: PatternWord<N>) -> PatternWord<N> {
    let mut out = [0; N];
    for i in 0..N {
        out[i] = a[i] & b[i];
    }
    out
}

/// Lanewise OR.
#[inline]
pub fn or<const N: usize>(a: PatternWord<N>, b: PatternWord<N>) -> PatternWord<N> {
    let mut out = [0; N];
    for i in 0..N {
        out[i] = a[i] | b[i];
    }
    out
}

/// Lanewise XOR.
#[inline]
pub fn xor<const N: usize>(a: PatternWord<N>, b: PatternWord<N>) -> PatternWord<N> {
    let mut out = [0; N];
    for i in 0..N {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// Lanewise 2:1 mux: `sel ? a : b`.
#[inline]
pub fn mux<const N: usize>(
    sel: PatternWord<N>,
    a: PatternWord<N>,
    b: PatternWord<N>,
) -> PatternWord<N> {
    let mut out = [0; N];
    for i in 0..N {
        out[i] = (sel[i] & a[i]) | (!sel[i] & b[i]);
    }
    out
}

/// Whether `a` and `b` differ in any lane bit at all (unmasked).
#[inline]
pub fn differs<const N: usize>(a: &PatternWord<N>, b: &PatternWord<N>) -> bool {
    a != b
}

/// Whether `a` and `b` differ in any bit the mask keeps.
#[inline]
pub fn masked_differs<const N: usize>(
    a: &PatternWord<N>,
    b: &PatternWord<N>,
    mask: &PatternWord<N>,
) -> bool {
    for i in 0..N {
        if (a[i] ^ b[i]) & mask[i] != 0 {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_enumerate_lanes_and_patterns() {
        assert_eq!(WordWidth::W64.lanes(), 1);
        assert_eq!(WordWidth::W256.lanes(), 4);
        assert_eq!(WordWidth::W512.lanes(), 8);
        for w in WordWidth::ALL {
            assert_eq!(w.patterns(), w.lanes() * 64);
            assert_eq!(WordWidth::parse(&w.to_string()), Some(w));
        }
        assert_eq!(WordWidth::parse("128"), None);
        assert_eq!(WordWidth::default(), WordWidth::W64);
    }

    #[test]
    fn lane_ops_match_u64_semantics() {
        let a: PatternWord<4> = [0xF0, 0x0F, u64::MAX, 0];
        let b: PatternWord<4> = [0xFF, 0xFF, 0, 0];
        assert_eq!(and(a, b), [0xF0, 0x0F, 0, 0]);
        assert_eq!(or(a, b), [0xFF, 0xFF, u64::MAX, 0]);
        assert_eq!(xor(a, b), [0x0F, 0xF0, u64::MAX, 0]);
        assert_eq!(not(zeros::<4>()), ones::<4>());
        assert_eq!(splat::<4>(true), ones::<4>());
        assert_eq!(splat::<4>(false), zeros::<4>());
        let s: PatternWord<4> = [u64::MAX, 0, 0xFF, 0];
        assert_eq!(mux(s, a, b), [0xF0, 0xFF, 0xFF, 0]);
    }

    #[test]
    fn masked_diff_ignores_masked_lanes() {
        let a: PatternWord<2> = [1, 2];
        let b: PatternWord<2> = [1, 3];
        assert!(differs(&a, &b));
        assert!(masked_differs(&a, &b, &ones::<2>()));
        // The differing bit sits in lane 1; masking it out hides it.
        assert!(!masked_differs(&a, &b, &[u64::MAX, 0]));
        assert!(!masked_differs(&a, &b, &[u64::MAX, !2 & !1]));
    }
}
