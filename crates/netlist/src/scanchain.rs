//! Physical scan-chain stitching and serial test application.
//!
//! The rest of the workbench uses the standard *abstraction* of scan
//! (scannable flop outputs are pseudo-inputs, their data inputs pseudo-
//! outputs). This module builds the real thing — a mux-D scan chain with
//! `scan_en`/`scan_in`/`scan_out` — and applies tests serially
//! (shift-in, capture, shift-out), so the abstraction can be *validated*
//! against an actual chain: every fault the abstract full-scan model
//! detects is detected by the serial protocol too.

use crate::fault::Fault;
use crate::fsim::TestFrame;
use crate::net::{GateKind, Netlist, NetlistBuilder};
use crate::sim::{eval_comb, next_state, output_values, ForcedNet};

/// A netlist with a stitched scan chain.
#[derive(Debug, Clone)]
pub struct ScanDesign {
    /// The rewritten netlist (`scan_en`, `scan_in` inputs; `scan_out`
    /// output).
    pub netlist: Netlist,
    /// The chained flops in shift order (scan_in → first … last →
    /// scan_out), as positions into `netlist.dffs()`.
    pub chain: Vec<usize>,
    /// Map from original flop position (in the source netlist's `dffs()`
    /// order, scannable ones only) to chain position.
    pub chain_of_scan_flop: Vec<usize>,
}

/// Stitches every scannable flop of `nl` into one mux-D scan chain.
///
/// Each scan flop's data input becomes `scan_en ? prev_scan_bit : D`;
/// the last flop's output is exported as `scan_out`. Non-scannable flops
/// are untouched.
pub fn stitch(nl: &Netlist) -> ScanDesign {
    let mut b = NetlistBuilder::new(format!("{}_chain", nl.name()));
    for (id, g) in nl.gates() {
        let name = nl.net_name(id.net()).map(str::to_owned);
        b.push_gate(g.kind, &g.inputs, name);
    }
    for (name, net) in nl.outputs() {
        b.output(name.clone(), *net);
    }
    let scan_en = b.input("scan_en");
    let scan_in = b.input("scan_in");
    let mut prev = scan_in;
    let mut chain = Vec::new();
    let mut chain_of_scan_flop = Vec::new();
    for (pos, &f) in nl.dffs().iter().enumerate() {
        if !matches!(nl.gate(f).kind, GateKind::Dff { scan: true }) {
            continue;
        }
        let d = nl.gate(f).inputs[0];
        let muxed = b.gate(GateKind::Mux, &[scan_en, prev, d]);
        b.set_dff_input(f.net(), muxed);
        prev = f.net();
        chain_of_scan_flop.push(chain.len());
        chain.push(pos);
    }
    b.output("scan_out", prev);
    let netlist = b.finish().expect("stitching preserves validity");
    ScanDesign {
        netlist,
        chain,
        chain_of_scan_flop,
    }
}

/// Serially applies one abstract test frame (single pattern, lane 0):
/// shift the state in, apply the primary inputs for one capture cycle,
/// then shift the response out. Returns `(po_values_at_capture,
/// shifted_out_bits)` for the good or faulty machine.
pub fn apply_serial(
    sd: &ScanDesign,
    frame: &TestFrame,
    fault: Option<Fault>,
    source_dff_count: usize,
) -> (Vec<bool>, Vec<bool>) {
    let nl = &sd.netlist;
    let n_chain = sd.chain.len();
    let npi = nl.inputs().len();
    // Input order: original PIs … then scan_en, scan_in (appended last).
    let force = fault.map(|f| ForcedNet {
        net: f.net,
        value: f.stuck_at_one,
    });
    let mut ff = vec![0u64; nl.dffs().len()];
    let drive = |pi_bits: &[bool]| -> Vec<u64> {
        pi_bits
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect()
    };
    let functional_pi: Vec<bool> = (0..npi - 2)
        .map(|i| frame.pi.get(i).copied().unwrap_or(0) & 1 == 1)
        .collect();
    // Shift in: chain order is scan_in → chain[0] → …; after k shifts the
    // bit injected first sits in chain[k-1]. To land frame.ff[flop] into
    // its flop we shift the *last* chain element's value first.
    let mut load_bits: Vec<bool> = Vec::with_capacity(n_chain);
    for &pos in sd.chain.iter().rev() {
        let word = frame.ff.get(pos).copied().unwrap_or(0);
        let _ = source_dff_count;
        load_bits.push(word & 1 == 1);
    }
    for &bit in &load_bits {
        let mut pi = functional_pi.clone();
        pi.push(true); // scan_en
        pi.push(bit); // scan_in
        let values = eval_comb(nl, &drive(&pi), &ff, force);
        ff = next_state(nl, &values);
        pin(nl, force, &mut ff);
    }
    // Capture cycle: scan_en = 0.
    let mut pi = functional_pi.clone();
    pi.push(false);
    pi.push(false);
    let values = eval_comb(nl, &drive(&pi), &ff, force);
    let pos = output_values(nl, &values);
    let po_bits: Vec<bool> = pos.iter().map(|&w| w & 1 == 1).collect();
    ff = next_state(nl, &values);
    pin(nl, force, &mut ff);
    // Shift out.
    let mut out_bits = Vec::with_capacity(n_chain);
    for _ in 0..n_chain {
        let mut pi = functional_pi.clone();
        pi.push(true);
        pi.push(false);
        let values = eval_comb(nl, &drive(&pi), &ff, force);
        let scan_out = nl
            .outputs()
            .iter()
            .find(|(n, _)| n == "scan_out")
            .map(|(_, net)| values[net.index()] & 1 == 1)
            .expect("scan_out exists");
        out_bits.push(scan_out);
        ff = next_state(nl, &values);
        pin(nl, force, &mut ff);
    }
    (po_bits, out_bits)
}

fn pin(nl: &Netlist, force: Option<ForcedNet>, ff: &mut [u64]) {
    if let Some(fr) = force {
        for (i, &f) in nl.dffs().iter().enumerate() {
            if f.net() == fr.net {
                ff[i] = if fr.value { u64::MAX } else { 0 };
            }
        }
    }
}

/// Whether the serial protocol detects `fault` with `frame`: any
/// difference between good and faulty machines at the primary outputs
/// during capture or in the shifted-out response.
pub fn detects_serial(sd: &ScanDesign, frame: &TestFrame, fault: Fault, src_dffs: usize) -> bool {
    let good = apply_serial(sd, frame, None, src_dffs);
    let bad = apply_serial(sd, frame, Some(fault), src_dffs);
    good != bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atpg::{generate_all, AtpgOptions};
    use crate::fault::collapsed_faults;
    use crate::net::NetlistBuilder;

    /// A small sequential design: two pipeline registers around an XOR.
    fn design() -> Netlist {
        let mut b = NetlistBuilder::new("pipe");
        let x = b.input("x");
        let y = b.input("y");
        let q1 = b.register(&[x], None, true)[0];
        let g = b.xor2(q1, y);
        let q2 = b.register(&[g], None, true)[0];
        b.output("o", q2);
        b.finish().unwrap()
    }

    #[test]
    fn chain_covers_all_scan_flops() {
        let nl = design();
        let sd = stitch(&nl);
        assert_eq!(sd.chain.len(), 2);
        assert!(sd.netlist.outputs().iter().any(|(n, _)| n == "scan_out"));
        // Two extra inputs.
        assert_eq!(sd.netlist.inputs().len(), nl.inputs().len() + 2);
    }

    #[test]
    fn shift_register_behavior() {
        // With scan_en held high the chain is a plain shift register.
        let nl = design();
        let sd = stitch(&nl);
        let frame = TestFrame::new(vec![0, 0], vec![u64::MAX, 0]);
        // After shifting in [chain1, chain0] and shifting out again we
        // must read back what we wrote (no capture disturbance means we
        // compare against the captured state instead — exercised by the
        // equivalence test below). Here: just assert determinism.
        let a = apply_serial(&sd, &frame, None, 2);
        let b = apply_serial(&sd, &frame, None, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn serial_protocol_matches_abstract_full_scan() {
        let nl = design();
        let faults = collapsed_faults(&nl);
        let run = generate_all(&nl, &faults, &AtpgOptions::default());
        assert_eq!(run.aborted, 0);
        let sd = stitch(&nl);
        // Every fault detected abstractly must be caught serially by at
        // least one generated frame.
        let mut missed = Vec::new();
        for &fault in &faults {
            let abstractly = run.patterns.iter().any(|frame| {
                let sim = crate::fsim::comb_fault_sim(&nl, &[fault], std::slice::from_ref(frame));
                !sim.detected.is_empty()
            });
            if !abstractly {
                continue;
            }
            let serially = run
                .patterns
                .iter()
                .any(|frame| detects_serial(&sd, frame, fault, nl.dffs().len()));
            if !serially {
                missed.push(fault);
            }
        }
        assert!(missed.is_empty(), "serial protocol missed {missed:?}");
    }

    #[test]
    fn scan_out_observes_injected_bit() {
        let nl = design();
        let sd = stitch(&nl);
        // Shift in a 1 into the deepest flop; it must come back out.
        let frame = TestFrame::new(vec![0, 0], vec![u64::MAX, u64::MAX]);
        let (_, out) = apply_serial(&sd, &frame, None, 2);
        assert_eq!(out.len(), 2);
    }
}
