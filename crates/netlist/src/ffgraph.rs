//! Extraction of the flip-flop S-graph from a gate-level netlist.
//!
//! This is the gate-level counterpart of the register adjacency the HLS
//! crates compute structurally — and the bridge that lets the
//! experiments compare behavioral scan selection against conventional
//! gate-level partial scan on the *same* measure.

use hlstb_sgraph::{NodeId, SGraph};

use crate::net::{GateId, GateKind, Netlist};

/// The flip-flop S-graph plus the node ↔ flop correspondence and the
/// boundary sets used for sequential-depth analysis.
#[derive(Debug, Clone)]
pub struct FfGraph {
    /// Edge `u → v` iff a combinational path leads from flop `u`'s output
    /// to flop `v`'s data input.
    pub graph: SGraph,
    /// `flops[i]` is the flip-flop behind node `i`.
    pub flops: Vec<GateId>,
    /// Nodes whose data input is combinationally reachable from a
    /// primary input.
    pub input_nodes: Vec<NodeId>,
    /// Nodes whose output combinationally reaches a primary output.
    pub output_nodes: Vec<NodeId>,
}

impl FfGraph {
    /// The node of a given flop, if it is in the graph.
    pub fn node_of(&self, flop: GateId) -> Option<NodeId> {
        self.flops
            .iter()
            .position(|&f| f == flop)
            .map(|i| NodeId(i as u32))
    }
}

/// Builds the flip-flop S-graph of a netlist.
pub fn ff_sgraph(nl: &Netlist) -> FfGraph {
    let flops: Vec<GateId> = nl.dffs().to_vec();
    let n = flops.len();
    let mut graph = SGraph::new(n);
    for (i, &f) in flops.iter().enumerate() {
        graph.set_label(
            NodeId(i as u32),
            nl.net_name(f.net())
                .map(str::to_owned)
                .unwrap_or_else(|| f.to_string()),
        );
    }
    let fanouts = nl.fanouts();

    // For each source net, the set of flop D-inputs its combinational
    // cone reaches, found by forward DFS that stops at flops.
    let reaches_flops = |start: crate::net::NetId| -> Vec<usize> {
        let mut seen = vec![false; nl.num_gates()];
        let mut stack = vec![start];
        let mut hit = Vec::new();
        seen[start.index()] = true;
        while let Some(net) = stack.pop() {
            for &g in &fanouts[net.index()] {
                match nl.gate(g).kind {
                    GateKind::Dff { .. } => {
                        if let Some(pos) = flops.iter().position(|&f| f == g) {
                            hit.push(pos);
                        }
                    }
                    _ => {
                        if !seen[g.index()] {
                            seen[g.index()] = true;
                            stack.push(g.net());
                        }
                    }
                }
            }
        }
        hit.sort_unstable();
        hit.dedup();
        hit
    };

    for (i, &f) in flops.iter().enumerate() {
        for j in reaches_flops(f.net()) {
            graph.add_edge(NodeId(i as u32), NodeId(j as u32));
        }
    }
    let mut input_nodes = Vec::new();
    for &pi in nl.inputs() {
        for j in reaches_flops(pi) {
            input_nodes.push(NodeId(j as u32));
        }
    }
    input_nodes.sort_unstable();
    input_nodes.dedup();

    // Output reachability: backward from POs through combinational gates.
    let mut reaches_po = vec![false; nl.num_gates()];
    let mut stack: Vec<usize> = Vec::new();
    for (_, net) in nl.outputs() {
        if !reaches_po[net.index()] {
            reaches_po[net.index()] = true;
            stack.push(net.index());
        }
    }
    while let Some(g) = stack.pop() {
        let gate = nl.gate(GateId(g as u32));
        if gate.kind.is_dff() {
            continue; // stop at flops: their Q is the observed point
        }
        for &inp in &gate.inputs {
            if !reaches_po[inp.index()] {
                reaches_po[inp.index()] = true;
                stack.push(inp.index());
            }
        }
    }
    let output_nodes: Vec<NodeId> = flops
        .iter()
        .enumerate()
        .filter(|&(_, &f)| reaches_po[f.net().index()])
        .map(|(i, _)| NodeId(i as u32))
        .collect();

    FfGraph {
        graph,
        flops,
        input_nodes,
        output_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetlistBuilder;

    #[test]
    fn shift_register_is_a_chain() {
        let mut b = NetlistBuilder::new("sr");
        let x = b.input("x");
        let q1 = b.register(&[x], None, false)[0];
        let q2 = b.register(&[q1], None, false)[0];
        let q3 = b.register(&[q2], None, false)[0];
        b.output("o", q3);
        let nl = b.finish().unwrap();
        let ffg = ff_sgraph(&nl);
        assert_eq!(ffg.graph.num_nodes(), 3);
        assert_eq!(ffg.graph.num_edges(), 2);
        assert!(ffg.graph.is_acyclic(true));
        assert_eq!(ffg.input_nodes, vec![NodeId(0)]);
        assert_eq!(ffg.output_nodes, vec![NodeId(2)]);
    }

    #[test]
    fn enabled_register_has_self_loop() {
        let mut b = NetlistBuilder::new("en");
        let x = b.input("x");
        let en = b.input("en");
        let q = b.register(&[x], Some(en), false)[0];
        b.output("o", q);
        let nl = b.finish().unwrap();
        let ffg = ff_sgraph(&nl);
        assert!(ffg.graph.has_self_loop(NodeId(0)));
    }

    #[test]
    fn feedback_pair_forms_a_ring() {
        let mut b = NetlistBuilder::new("ring");
        let x = b.input("x");
        // q1 <- xor(x, q2); q2 <- q1
        let q2_net = crate::net::NetId(b.num_gates() as u32 + 2);
        let x1 = b.gate(GateKind::Xor, &[x, q2_net]);
        let q1 = b.gate(GateKind::Dff { scan: false }, &[x1]);
        let q2 = b.gate(GateKind::Dff { scan: false }, &[q1]);
        assert_eq!(q2, q2_net);
        b.output("o", q1);
        let nl = b.finish().unwrap();
        let ffg = ff_sgraph(&nl);
        assert!(ffg.graph.has_edge(NodeId(0), NodeId(1)));
        assert!(ffg.graph.has_edge(NodeId(1), NodeId(0)));
        assert!(!ffg.graph.is_acyclic(true));
    }

    #[test]
    fn combinational_circuit_yields_empty_graph() {
        let mut b = NetlistBuilder::new("comb");
        let a = b.input("a");
        let c = b.input("b");
        let g = b.and2(a, c);
        b.output("o", g);
        let nl = b.finish().unwrap();
        let ffg = ff_sgraph(&nl);
        assert_eq!(ffg.graph.num_nodes(), 0);
    }
}
