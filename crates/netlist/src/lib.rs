//! Gate-level substrate of the `hlstb` workbench.
//!
//! The surveyed results are ultimately claims about gate-level
//! testability: fault coverage, sequential ATPG effort, pseudorandom
//! pattern resistance. Reproducing them needs a real (if small) gate
//! level under the RTL — this crate provides it, built from scratch:
//!
//! * [`net`] — the netlist IR (generic gates, D flip-flops with optional
//!   scan) and a [`net::NetlistBuilder`] with structural arithmetic
//!   blocks (ripple adders/subtractors, array multiplier, comparators,
//!   mux trees, registers);
//! * [`sim`] — 64-way parallel-pattern logic simulation, combinational
//!   and sequential;
//! * [`fault`] — single-stuck-at fault universe with structural
//!   equivalence collapsing;
//! * [`fsim`] — parallel-pattern fault simulation (combinational) and
//!   sequence-based sequential fault simulation, full-scan aware;
//! * [`atpg`] — a 5-valued PODEM for combinational/full-scan circuits
//!   with backtrack-effort accounting;
//! * [`seq`] — time-frame expansion and sequential ATPG on top of PODEM,
//!   the measurement instrument for the survey's §3.1 claim that cycles
//!   make sequential test generation exponentially harder;
//! * [`random`] — pseudorandom-pattern coverage curves for the BIST
//!   experiments;
//! * [`ffgraph`] — extraction of the flip-flop S-graph that gate-level
//!   partial scan analyzes.
//!
//! # Example: a full adder is fully testable
//!
//! ```
//! use hlstb_netlist::net::NetlistBuilder;
//! use hlstb_netlist::{atpg, fault};
//!
//! let mut b = NetlistBuilder::new("adder");
//! let a = b.inputs("a", 4);
//! let c = b.inputs("b", 4);
//! let (sum, carry) = b.ripple_add(&a, &c);
//! b.outputs("s", &sum);
//! b.output("cout", carry);
//! let nl = b.finish()?;
//!
//! let faults = fault::collapsed_faults(&nl);
//! let result = atpg::generate_all(&nl, &faults, &atpg::AtpgOptions::default());
//! assert_eq!(result.aborted + result.untestable, 0);
//! # Ok::<(), hlstb_netlist::net::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atpg;
pub mod boundary;
pub mod cop;
pub mod deadline;
pub mod fault;
pub mod ffgraph;
pub mod fsim;
pub mod logic5;
pub mod net;
pub mod random;
pub mod scanchain;
pub mod seq;
pub mod sim;
pub mod soa;
pub mod stats;
pub mod verilog;
pub mod word;

pub use deadline::Deadline;
pub use fault::Fault;
pub use fsim::{ParallelOptions, SimEngine};
pub use net::{GateId, GateKind, NetId, Netlist, NetlistBuilder, NetlistError};
pub use stats::GradeStats;
pub use word::WordWidth;
