//! Event-driven fault grading over the structure-of-arrays IR.
//!
//! This is the fast engine behind [`crate::fsim`]'s
//! [`SimEngine::Soa`](crate::fsim::SimEngine) option. It differs from
//! the retained reference engine in three ways, none of which may
//! change a detected set:
//!
//! * **Levelized SoA walk** — gate kinds, operand ids, and levels live
//!   in flat `u32`-indexed arrays ([`crate::net::SoaIr`]) instead of
//!   per-gate heap nodes, so the inner loop is a handful of contiguous
//!   array reads.
//! * **Wide pattern words** — frames are packed [`WordWidth::lanes`]
//!   at a time into [`PatternWord`]s, so one propagation pass grades up
//!   to 512 patterns. Lanes are independent bitwise channels; the
//!   per-lane masks from [`TestFrame::mask`] keep padding lanes from
//!   ever contributing a detection.
//! * **Stem-region grading** — instead of simulating every fault's
//!   full faulty machine (the reference engine's per-fault cone cache,
//!   which this engine supersedes), each fault is first traced through
//!   its fanout-free region: within an FFR every net has exactly one
//!   path forward, so the fault effect at the region's stem is the
//!   excitation word ANDed with one-step Boolean differences along the
//!   chain — all computed directly from good values. What remains is
//!   the stem's own observability, which is shared by *every* fault
//!   (of either polarity) that funnels into that stem: one event-driven
//!   flip propagation per stem and chunk, memoized, computes the exact
//!   per-pattern word of lanes in which flipping the stem flips some
//!   observed net. Pattern lanes are independent bit channels, so the
//!   composition `excitation & path_sensitization & stem_observability`
//!   is exact for every pattern, not an approximation.
//!
//! Deadline polling is re-derived in fault-eval units via
//! [`crate::fsim::deadline_poll_stride`] so zero-budget sweeps grade
//! the same deterministic prefix at every word width.

use std::collections::BTreeSet;
use std::time::Instant;

use crate::deadline::Deadline;
use crate::fault::Fault;
use crate::fsim::{deadline_poll_stride, FaultSimSummary, ParallelOptions, TestFrame};
use crate::net::{GateKind, NetId, Netlist, SoaIr};
use crate::stats::GradeStats;
use crate::word::{self, PatternWord, WordWidth};

/// Marker for nets that are stems (no unique forward path).
const STEM: u32 = u32::MAX;

/// Observation tables shared read-only by every grading worker.
struct ObsTables {
    /// Net index → is an observation point.
    mark: Vec<bool>,
    /// Net index → some observation point is in this net's
    /// combinational fanout cone (including the net itself). Faults on
    /// nets outside this set are structurally undetectable.
    reach: Vec<bool>,
    /// CSR fanout restricted to obs-reaching readers, rebuilt per
    /// observation set: `fedges[fstarts[g]..fstarts[g+1]]` holds each
    /// reader packed as `level << 32 | gate`, so the enqueue loop needs
    /// no `reach` or `level_of` lookups of its own.
    fstarts: Vec<u32>,
    fedges: Vec<u64>,
    /// Net index → the unique obs-reaching comb reader when the net is
    /// interior to a fanout-free region, else [`STEM`]. Observed nets
    /// are always stems (their fault effects are seen directly), as are
    /// nets with zero or several distinct reaching readers.
    parent: Vec<u32>,
}

impl ObsTables {
    fn new(nl: &Netlist, observed: &[NetId]) -> ObsTables {
        let n = nl.num_nets();
        let soa = nl.soa();
        let mut mark = vec![false; n];
        for net in observed {
            mark[net.index()] = true;
        }
        // Backward reachability over the levelized order: a gate that
        // reaches an observation point makes each operand reach it too.
        // Unused operand slots hold the gate's own id, so blanket
        // propagation over all three slots is harmless.
        let mut reach = mark.clone();
        for &g in soa.comb_order().iter().rev() {
            if reach[g as usize] {
                for op in soa.operands(g) {
                    reach[op as usize] = true;
                }
            }
        }
        let mut fstarts = Vec::with_capacity(n + 1);
        let mut fedges = Vec::new();
        fstarts.push(0u32);
        for g in 0..n as u32 {
            for &h in soa.fanout(g) {
                if reach[h as usize] {
                    fedges.push(u64::from(soa.level_of(h)) << 32 | u64::from(h));
                }
            }
            fstarts.push(fedges.len() as u32);
        }
        // A net is interior to a fanout-free region when exactly one
        // distinct reaching gate reads it (a gate reading the net on
        // two pins counts once — the flip-based sensitization below is
        // exact for double reads) and the net is not observed itself.
        // Readers that cannot reach an observation point are ignored:
        // fault effects through them are never seen.
        let mut parent = vec![STEM; n];
        for g in 0..n {
            if mark[g] {
                continue;
            }
            let edges = &fedges[fstarts[g] as usize..fstarts[g + 1] as usize];
            if let Some((&first, rest)) = edges.split_first() {
                let first = first as u32;
                if rest.iter().all(|&e| e as u32 == first) {
                    parent[g] = first;
                }
            }
        }
        ObsTables {
            mark,
            reach,
            fstarts,
            fedges,
            parent,
        }
    }

    /// Obs-reaching readers of `g`, packed `level << 32 | gate`.
    #[inline]
    fn fanout(&self, g: u32) -> &[u64] {
        &self.fedges[self.fstarts[g as usize] as usize..self.fstarts[g as usize + 1] as usize]
    }
}

/// Per-worker reusable state: an epoch-marked faulty-value overlay
/// (unmarked nets read through to the good values), one worklist bucket
/// per level, and the per-chunk stem-observability memo. One `mark`
/// word per net carries both scheduling states — `2 * epoch` once
/// enqueued, `2 * epoch + 1` once a changed value is stamped — so the
/// hot loops touch a single side array.
struct EventScratch<const N: usize> {
    val: Vec<PatternWord<N>>,
    mark: Vec<u64>,
    epoch: u64,
    buckets: Vec<Vec<u32>>,
    /// Stem → observability word, valid when `stem_stamp[stem]` equals
    /// the current chunk index + 1. Shared by every fault in the shard
    /// that funnels into the stem, for either stuck-at polarity.
    stem_obs: Vec<PatternWord<N>>,
    stem_stamp: Vec<u64>,
}

impl<const N: usize> EventScratch<N> {
    fn new(nets: usize, levels: usize) -> Self {
        EventScratch {
            val: vec![word::zeros(); nets],
            mark: vec![0; nets],
            epoch: 0,
            buckets: vec![Vec::new(); levels],
            stem_obs: vec![word::zeros(); nets],
            stem_stamp: vec![0; nets],
        }
    }
}

#[inline]
fn rd<const N: usize>(
    mark: &[u64],
    val: &[PatternWord<N>],
    good: &[PatternWord<N>],
    stamped: u64,
    i: usize,
) -> PatternWord<N> {
    if mark[i] == stamped {
        val[i]
    } else {
        good[i]
    }
}

/// Evaluates gate `p` from good values with net `flip` inverted in
/// every bit — the one-step Boolean difference used by the FFR path
/// walk. Every operand slot holding `flip` sees the inverted word, so
/// a gate reading the same net on two pins is handled exactly.
#[inline]
fn eval_flip<const N: usize>(
    soa: &SoaIr,
    good: &[PatternWord<N>],
    p: u32,
    flip: u32,
) -> PatternWord<N> {
    let ops = soa.operands(p);
    let ld = |k: usize| {
        let i = ops[k];
        if i == flip {
            word::not(good[i as usize])
        } else {
            good[i as usize]
        }
    };
    match soa.kind(p) {
        GateKind::Buf => ld(0),
        GateKind::Not => word::not(ld(0)),
        GateKind::And => word::and(ld(0), ld(1)),
        GateKind::Or => word::or(ld(0), ld(1)),
        GateKind::Nand => word::not(word::and(ld(0), ld(1))),
        GateKind::Nor => word::not(word::or(ld(0), ld(1))),
        GateKind::Xor => word::xor(ld(0), ld(1)),
        GateKind::Xnor => word::not(word::xor(ld(0), ld(1))),
        GateKind::Mux => word::mux(ld(0), ld(1), ld(2)),
        // Sources never read nets, so they can never be an FFR parent.
        GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. } => good[p as usize],
    }
}

/// Computes the stem observability word: the pattern bits (confined to
/// live lanes) in which flipping `stem` changes at least one observed
/// net. Runs the event frontier to exhaustion — or stops early once
/// every live bit is covered — so the result is exact per pattern and
/// reusable by every fault that funnels into `stem` this chunk.
fn stem_flip_obs<const N: usize>(
    soa: &SoaIr,
    obs: &ObsTables,
    good: &[PatternWord<N>],
    mask: &PatternWord<N>,
    stem: u32,
    scratch: &mut EventScratch<N>,
    stats: &mut GradeStats,
) -> PatternWord<N> {
    // A directly observed stem is its own observation point.
    if obs.mark[stem as usize] {
        return *mask;
    }
    scratch.epoch += 1;
    let queued = scratch.epoch * 2;
    let stamped = queued + 1;
    // Flip the stem in live lanes only: padding lanes keep their good
    // values, so no event ever carries a masked difference.
    scratch.val[stem as usize] = word::xor(good[stem as usize], *mask);
    scratch.mark[stem as usize] = stamped;
    let mut obs_word: PatternWord<N> = word::zeros();
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for &packed in obs.fanout(stem) {
        let g = packed as u32;
        if scratch.mark[g as usize] >= queued {
            continue;
        }
        scratch.mark[g as usize] = queued;
        let l = (packed >> 32) as usize;
        scratch.buckets[l].push(g);
        lo = lo.min(l);
        hi = hi.max(l);
    }
    if lo == usize::MAX {
        return obs_word;
    }
    let mut lvl = lo;
    while lvl <= hi {
        // Pushes from this level only target strictly higher levels
        // (level = 1 + max operand level), so taking the bucket out
        // while enqueuing into others is safe.
        let mut bucket = std::mem::take(&mut scratch.buckets[lvl]);
        for &g in &bucket {
            let gi = g as usize;
            stats.flip_events += 1;
            let ops = soa.operands(g);
            let a = rd(&scratch.mark, &scratch.val, good, stamped, ops[0] as usize);
            let v = match soa.kind(g) {
                GateKind::Buf => a,
                GateKind::Not => word::not(a),
                GateKind::And => word::and(
                    a,
                    rd(&scratch.mark, &scratch.val, good, stamped, ops[1] as usize),
                ),
                GateKind::Or => word::or(
                    a,
                    rd(&scratch.mark, &scratch.val, good, stamped, ops[1] as usize),
                ),
                GateKind::Nand => word::not(word::and(
                    a,
                    rd(&scratch.mark, &scratch.val, good, stamped, ops[1] as usize),
                )),
                GateKind::Nor => word::not(word::or(
                    a,
                    rd(&scratch.mark, &scratch.val, good, stamped, ops[1] as usize),
                )),
                GateKind::Xor => word::xor(
                    a,
                    rd(&scratch.mark, &scratch.val, good, stamped, ops[1] as usize),
                ),
                GateKind::Xnor => word::not(word::xor(
                    a,
                    rd(&scratch.mark, &scratch.val, good, stamped, ops[1] as usize),
                )),
                GateKind::Mux => word::mux(
                    a,
                    rd(&scratch.mark, &scratch.val, good, stamped, ops[1] as usize),
                    rd(&scratch.mark, &scratch.val, good, stamped, ops[2] as usize),
                ),
                GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. } => continue,
            };
            if v == good[gi] {
                // The event died here: downstream readers fall through
                // to the good values, so nothing is enqueued.
                continue;
            }
            scratch.val[gi] = v;
            scratch.mark[gi] = stamped;
            if obs.mark[gi] {
                obs_word = word::or(obs_word, word::xor(v, good[gi]));
                if obs_word == *mask {
                    // Every live pattern already observes the flip;
                    // drop the stale entries so the next pass starts
                    // from empty buckets.
                    stats.early_exits += 1;
                    for b in &mut scratch.buckets[lvl..=hi] {
                        b.clear();
                    }
                    return obs_word;
                }
            }
            for &packed in obs.fanout(g) {
                let h = packed as u32;
                if scratch.mark[h as usize] < queued {
                    scratch.mark[h as usize] = queued;
                    let l = (packed >> 32) as usize;
                    scratch.buckets[l].push(h);
                    hi = hi.max(l);
                }
            }
        }
        bucket.clear();
        scratch.buckets[lvl] = bucket;
        lvl += 1;
    }
    obs_word
}

/// The wide good-machine trace plus per-chunk bookkeeping, shared
/// read-only by the workers.
struct WideTrace<const N: usize> {
    /// Chunk-major good values: `goods[c * nets + net]`.
    goods: Vec<PatternWord<N>>,
    /// Per-chunk lane mask (padding lanes are zero).
    masks: Vec<PatternWord<N>>,
    /// Per-chunk count of real frames (the rest of the word is
    /// padding).
    active: Vec<usize>,
    nets: usize,
}

impl<const N: usize> WideTrace<N> {
    fn new(nl: &Netlist, frames: &[TestFrame]) -> WideTrace<N> {
        let nets = nl.num_nets();
        let nc = frames.len().div_ceil(N);
        let mut goods = Vec::with_capacity(nc * nets);
        let mut masks = Vec::with_capacity(nc);
        let mut active = Vec::with_capacity(nc);
        let zero_ff = vec![0u64; nl.dffs().len()];
        for chunk in frames.chunks(N) {
            let mut pi: Vec<PatternWord<N>> = vec![word::zeros(); nl.inputs().len()];
            let mut ff: Vec<PatternWord<N>> = vec![word::zeros(); nl.dffs().len()];
            let mut mask: PatternWord<N> = word::zeros();
            for (j, frame) in chunk.iter().enumerate() {
                for (i, w) in frame.pi.iter().enumerate() {
                    pi[i][j] = *w;
                }
                // Same rule as the reference engine: a frame without
                // state words on a sequential circuit means all-zero
                // state.
                let fw = if frame.ff.is_empty() && !nl.dffs().is_empty() {
                    &zero_ff
                } else {
                    &frame.ff
                };
                for (i, w) in fw.iter().enumerate() {
                    ff[i][j] = *w;
                }
                mask[j] = frame.mask;
            }
            goods.extend(crate::sim::eval_comb_wide(nl, &pi, &ff, None));
            masks.push(mask);
            active.push(chunk.len());
        }
        WideTrace {
            goods,
            masks,
            active,
            nets,
        }
    }

    #[inline]
    fn chunk(&self, c: usize) -> &[PatternWord<N>] {
        &self.goods[c * self.nets..(c + 1) * self.nets]
    }

    fn chunks(&self) -> usize {
        self.active.len()
    }
}

/// Grades one contiguous fault shard against the shared wide trace.
fn grade_shard<const N: usize>(
    soa: &SoaIr,
    obs: &ObsTables,
    trace: &WideTrace<N>,
    shard: &[Fault],
    drop_detected: bool,
    deadline: Deadline,
) -> (BTreeSet<Fault>, GradeStats) {
    let mut detected = BTreeSet::new();
    let mut stats = GradeStats::default();
    let mut scratch = EventScratch::<N>::new(trace.nets, soa.level_count().max(1));
    let stride = deadline_poll_stride(N);
    let zero: PatternWord<N> = word::zeros();
    for (fault_idx, &fault) in shard.iter().enumerate() {
        // Cooperative cutoff between faults, at the width-scaled
        // stride; the first stride always grades, which keeps
        // zero-budget runs deterministic.
        if fault_idx > 0 && fault_idx % stride == 0 && deadline.expired() {
            stats.timed_out = true;
            break;
        }
        let src = fault.net.index();
        if !obs.reach[src] {
            stats.unobservable += 1;
            continue;
        }
        let stuck = if fault.stuck_at_one { u64::MAX } else { 0 };
        let stuck_word: PatternWord<N> = word::splat(fault.stuck_at_one);
        let mut hit = false;
        for c in 0..trace.chunks() {
            if hit && drop_detected {
                stats.dropped += trace.active[c..].iter().sum::<usize>() as u64;
                break;
            }
            let good = trace.chunk(c);
            let mask = &trace.masks[c];
            // Per-lane activation screen, counted in frame units so the
            // work ledger stays exact: each real frame is either
            // screened here or evaluated below.
            let gsrc = &good[src];
            let mut excited = 0usize;
            for j in 0..trace.active[c].min(N) {
                if (gsrc[j] ^ stuck) & mask[j] != 0 {
                    excited += 1;
                }
            }
            stats.screened += (trace.active[c] - excited) as u64;
            if excited == 0 {
                continue;
            }
            stats.fault_evals += excited as u64;
            // Fault effect at the stem: the per-pattern excitation word
            // ANDed with the one-step Boolean difference of every gate
            // on the (unique) path out of the fanout-free region.
            let mut s = word::and(word::xor(*gsrc, stuck_word), *mask);
            let mut n = src as u32;
            loop {
                let p = obs.parent[n as usize];
                if p == STEM {
                    break;
                }
                s = word::and(s, word::xor(eval_flip(soa, good, p, n), good[p as usize]));
                if s == zero {
                    break;
                }
                n = p;
            }
            if s == zero {
                continue;
            }
            // The stem observability word is shared by every fault of
            // this region, for either polarity; memoized per chunk.
            let ow = if scratch.stem_stamp[n as usize] == c as u64 + 1 {
                stats.stem_memo_hits += 1;
                scratch.stem_obs[n as usize]
            } else {
                stats.stem_memo_misses += 1;
                let w = stem_flip_obs(soa, obs, good, mask, n, &mut scratch, &mut stats);
                scratch.stem_stamp[n as usize] = c as u64 + 1;
                scratch.stem_obs[n as usize] = w;
                w
            };
            if word::and(s, ow) != zero {
                hit = true;
            }
        }
        if hit {
            detected.insert(fault);
        }
    }
    (detected, stats)
}

fn run<const N: usize>(
    nl: &Netlist,
    faults: &[Fault],
    frames: &[TestFrame],
    observed: &[NetId],
    opts: &ParallelOptions,
) -> (FaultSimSummary, GradeStats) {
    let good_span = hlstb_trace::span("fsim.good");
    let good_start = Instant::now();
    let trace = WideTrace::<N>::new(nl, frames);
    let obs = ObsTables::new(nl, observed);
    let wall_good = good_start.elapsed();
    good_span.end();

    let fault_span = hlstb_trace::span("fsim.fault");
    let fault_start = Instant::now();
    let soa = nl.soa();
    let threads = opts.effective_threads(faults.len());
    let drop_detected = opts.drop_detected;
    let deadline = opts.deadline;
    let (detected, mut stats) = if threads == 1 {
        grade_shard(soa, &obs, &trace, faults, drop_detected, deadline)
    } else {
        let chunk = faults.len().div_ceil(threads);
        let mut merged = BTreeSet::new();
        let mut counts = GradeStats::default();
        std::thread::scope(|scope| {
            let obs = &obs;
            let trace = &trace;
            let handles: Vec<_> = faults
                .chunks(chunk)
                .map(|shard| {
                    scope
                        .spawn(move || grade_shard(soa, obs, trace, shard, drop_detected, deadline))
                })
                .collect();
            for handle in handles {
                let (shard_detected, shard_counts) =
                    handle.join().expect("grading worker panicked");
                merged.extend(shard_detected);
                counts.merge_counts(&shard_counts);
            }
        });
        (merged, counts)
    };
    stats.faults = faults.len();
    stats.frames = frames.len();
    stats.threads = threads;
    stats.wall_good = wall_good;
    stats.wall_fault = fault_start.elapsed();
    fault_span.end();
    stats.trace_bridge();
    (
        FaultSimSummary {
            detected,
            total: faults.len(),
        },
        stats,
    )
}

/// Entry point called by [`crate::fsim::comb_fault_sim_observed_opts`]
/// when [`SimEngine::Soa`](crate::fsim::SimEngine) is selected:
/// dispatches on the configured word width.
pub(crate) fn grade_observed_opts(
    nl: &Netlist,
    faults: &[Fault],
    frames: &[TestFrame],
    observed: &[NetId],
    opts: &ParallelOptions,
) -> (FaultSimSummary, GradeStats) {
    match opts.word_width {
        WordWidth::W64 => run::<1>(nl, faults, frames, observed, opts),
        WordWidth::W256 => run::<4>(nl, faults, frames, observed, opts),
        WordWidth::W512 => run::<8>(nl, faults, frames, observed, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use crate::net::NetlistBuilder;

    fn mixed() -> Netlist {
        let mut b = NetlistBuilder::new("mix");
        let a = b.inputs("a", 3);
        let c = b.inputs("b", 3);
        let (s, co) = b.ripple_add(&a, &c);
        let n = b.not(s[0]);
        let m = b.gate(GateKind::Mux, &[co, n, s[1]]);
        let q = b.register(&[m, s[2]], None, true);
        b.output("o", q[0]);
        b.output("p", m);
        b.finish().unwrap()
    }

    #[test]
    fn obs_reach_covers_exactly_the_observable_cones() {
        let nl = mixed();
        let observed: Vec<NetId> = nl.outputs().iter().map(|(_, n)| *n).collect();
        let obs = ObsTables::new(&nl, &observed);
        // Every observed net reaches itself.
        for net in &observed {
            assert!(obs.reach[net.index()]);
        }
        // A net never read by anything and not observed reaches
        // nothing: the flop outputs here feed only output "o" (observed)
        // so instead check a fabricated dead gate.
        let mut b = NetlistBuilder::new("dead");
        let x = b.input("x");
        let dead = b.not(x);
        let live = b.not(x);
        b.output("o", live);
        let nl2 = b.finish().unwrap();
        let observed2: Vec<NetId> = nl2.outputs().iter().map(|(_, n)| *n).collect();
        let obs2 = ObsTables::new(&nl2, &observed2);
        assert!(!obs2.reach[dead.index()]);
        assert!(obs2.reach[live.index()]);
        assert!(obs2.reach[x.index()]);
    }

    #[test]
    fn ffr_parents_follow_unique_reaching_readers() {
        // x feeds two live readers → stem; a chain net with one reader
        // is interior; observed nets are stems regardless of fanout.
        let mut b = NetlistBuilder::new("ffr");
        let x = b.input("x");
        let y = b.input("y");
        let n1 = b.not(x);
        let n2 = b.not(x);
        let a = b.and2(n1, y);
        let o = b.or2(a, n2);
        b.output("o", o);
        let nl = b.finish().unwrap();
        let observed: Vec<NetId> = nl.outputs().iter().map(|(_, n)| *n).collect();
        let obs = ObsTables::new(&nl, &observed);
        assert_eq!(obs.parent[x.index()], STEM, "two readers");
        assert_eq!(obs.parent[n1.index()], a.index() as u32);
        assert_eq!(obs.parent[a.index()], o.index() as u32);
        assert_eq!(obs.parent[o.index()], STEM, "observed net");
    }

    #[test]
    fn levelization_is_a_topological_order() {
        let nl = mixed();
        let soa = nl.soa();
        for &g in soa.comb_order() {
            for op in soa.operands(g) {
                if op != g {
                    assert!(
                        soa.level_of(op) < soa.level_of(g),
                        "operand {op} of gate {g} is not at a lower level"
                    );
                }
            }
        }
        // The per-level slices tile the combinational order.
        let total: usize = (0..soa.level_count()).map(|l| soa.level(l).len()).sum();
        assert_eq!(total, nl.topo().len());
    }

    #[test]
    fn all_widths_match_the_reference_detected_set() {
        let nl = mixed();
        let faults = all_faults(&nl);
        let frames: Vec<TestFrame> = (0..10u64)
            .map(|k| TestFrame {
                pi: (0..6)
                    .map(|i| 0x9e37_79b9_7f4a_7c15u64.rotate_left((k * 11 + i) as u32))
                    .collect(),
                ff: Vec::new(),
                mask: u64::MAX,
            })
            .collect();
        let reference = crate::fsim::comb_fault_sim(&nl, &faults, &frames);
        for width in WordWidth::ALL {
            let opts = ParallelOptions {
                engine: crate::fsim::SimEngine::Soa,
                word_width: width,
                ..ParallelOptions::default()
            };
            let (r, stats) = crate::fsim::comb_fault_sim_opts(&nl, &faults, &frames, &opts);
            assert_eq!(r, reference, "width {width}");
            // The work ledger still accounts for every real
            // (fault, frame) pair at every width.
            let pairs = (stats.faults as u64 - stats.unobservable) * stats.frames as u64;
            assert_eq!(stats.fault_evals + stats.screened + stats.dropped, pairs);
        }
    }
}
