//! Netlist IR and structural building blocks.
//!
//! Every gate drives exactly one net, so [`NetId`] and [`GateId`] share
//! indices; primary inputs and constants are source gates. D flip-flops
//! carry a `scan` flag — scan-chain stitching is abstracted: full-scan
//! analyses treat a scannable flop's output as a pseudo primary input
//! and its data input as a pseudo primary output, which is the standard
//! model for coverage studies.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a net — equal to the id of the gate driving it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub u32);

/// Identifier of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub u32);

impl NetId {
    /// The id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// The id as a dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The net this gate drives.
    #[inline]
    pub fn net(self) -> NetId {
        NetId(self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Gate kinds. `Mux` has operands `[sel, a, b]` and computes
/// `sel ? a : b`; `Dff` has operand `[d]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no operands).
    Input,
    /// Constant driver (no operands).
    Const(bool),
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2:1 multiplexer, operands `[sel, a, b]`.
    Mux,
    /// D flip-flop, operand `[d]`; `scan` marks it scannable.
    Dff {
        /// Whether the flop is on a scan chain.
        scan: bool,
    },
}

impl GateKind {
    /// Number of operand nets.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const(_) => 0,
            GateKind::Buf | GateKind::Not | GateKind::Dff { .. } => 1,
            GateKind::Mux => 3,
            _ => 2,
        }
    }

    /// Whether the gate is sequential.
    pub fn is_dff(self) -> bool {
        matches!(self, GateKind::Dff { .. })
    }

    /// Rough area in gate equivalents (NAND2 = 1), used for the overhead
    /// accounting in the DFT experiments.
    pub fn gate_equivalents(self) -> f64 {
        match self {
            GateKind::Input | GateKind::Const(_) => 0.0,
            GateKind::Buf | GateKind::Not => 0.5,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => 1.0,
            GateKind::Xor | GateKind::Xnor => 2.0,
            GateKind::Mux => 2.5,
            GateKind::Dff { scan: false } => 6.0,
            GateKind::Dff { scan: true } => 8.0, // mux-D scan flop
        }
    }
}

/// A gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The kind.
    pub kind: GateKind,
    /// Operand nets; length is `kind.arity()`.
    pub inputs: Vec<NetId>,
}

/// Errors from netlist construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate has the wrong operand count.
    Arity {
        /// Offending gate.
        gate: GateId,
        /// Expected operand count.
        expected: usize,
        /// Found operand count.
        found: usize,
    },
    /// A combinational cycle exists (not broken by a flip-flop).
    CombinationalCycle {
        /// A gate on the cycle.
        gate: GateId,
    },
    /// A referenced net does not exist.
    DanglingNet {
        /// The missing net.
        net: NetId,
    },
    /// Two outputs share a name.
    DuplicateOutput {
        /// The clashing name.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Arity {
                gate,
                expected,
                found,
            } => {
                write!(f, "{gate} expects {expected} operands, found {found}")
            }
            NetlistError::CombinationalCycle { gate } => {
                write!(f, "combinational cycle through {gate}")
            }
            NetlistError::DanglingNet { net } => write!(f, "dangling reference to {net}"),
            NetlistError::DuplicateOutput { name } => write!(f, "duplicate output `{name}`"),
        }
    }
}

impl Error for NetlistError {}

/// Index-based structure-of-arrays view of a netlist, built once by
/// [`NetlistBuilder::finish`] and shared read-only by the evaluators.
///
/// The per-gate [`Gate`] records are the convenient API view; the hot
/// simulation loops instead walk these flat `u32` arrays: gate kinds,
/// fixed three-slot operand ids, a levelized topological order with
/// contiguous per-level ranges, and a CSR fanout table. Unused operand
/// slots hold the gate's own id so every slot is always a valid index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaIr {
    kinds: Vec<GateKind>,
    ops: Vec<[u32; 3]>,
    level_of: Vec<u32>,
    level_order: Vec<u32>,
    level_starts: Vec<u32>,
    fanout_starts: Vec<u32>,
    fanout_edges: Vec<u32>,
}

impl SoaIr {
    /// Builds the flat arrays from the validated AoS gate list and its
    /// topological order.
    fn build(gates: &[Gate], topo: &[GateId]) -> SoaIr {
        let n = gates.len();
        let is_source = |g: &Gate| {
            matches!(
                g.kind,
                GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
            )
        };
        let mut kinds = Vec::with_capacity(n);
        let mut ops = Vec::with_capacity(n);
        for (i, g) in gates.iter().enumerate() {
            kinds.push(g.kind);
            let mut slots = [i as u32; 3];
            for (k, inp) in g.inputs.iter().enumerate() {
                slots[k] = inp.0;
            }
            ops.push(slots);
        }
        // Levels: sources sit at 0; a combinational gate is one past its
        // deepest operand. `topo` is topologically sorted, so operand
        // levels are final when a gate is reached.
        let mut level_of = vec![0u32; n];
        let mut max_level = 0u32;
        for &gid in topo {
            let g = &gates[gid.index()];
            let lvl = 1 + g
                .inputs
                .iter()
                .map(|inp| level_of[inp.index()])
                .max()
                .unwrap_or(0);
            level_of[gid.index()] = lvl;
            max_level = max_level.max(lvl);
        }
        let num_levels = if topo.is_empty() {
            0
        } else {
            max_level as usize + 1
        };
        // Bucket the combinational gates by (level, id): counting sort
        // keeps the order deterministic and the per-level runs
        // contiguous.
        let mut counts = vec![0u32; num_levels + 1];
        for &gid in topo {
            counts[level_of[gid.index()] as usize] += 1;
        }
        let mut level_starts = vec![0u32; num_levels + 1];
        let mut acc = 0u32;
        for (l, c) in counts.iter().enumerate().take(num_levels) {
            level_starts[l] = acc;
            acc += c;
        }
        level_starts[num_levels] = acc;
        let mut cursor = level_starts.clone();
        let mut level_order = vec![0u32; topo.len()];
        for (i, g) in gates.iter().enumerate() {
            if is_source(g) {
                continue;
            }
            let l = level_of[i] as usize;
            level_order[cursor[l] as usize] = i as u32;
            cursor[l] += 1;
        }
        // CSR fanout: per net, the combinational gates reading it, in
        // gate-id order.
        let mut fan_counts = vec![0u32; n + 1];
        for g in gates {
            if is_source(g) {
                continue;
            }
            for inp in &g.inputs {
                fan_counts[inp.index()] += 1;
            }
        }
        let mut fanout_starts = vec![0u32; n + 1];
        let mut acc = 0u32;
        for (i, c) in fan_counts.iter().enumerate().take(n) {
            fanout_starts[i] = acc;
            acc += c;
        }
        fanout_starts[n] = acc;
        let mut fan_cursor: Vec<u32> = fanout_starts.clone();
        let mut fanout_edges = vec![0u32; acc as usize];
        for (i, g) in gates.iter().enumerate() {
            if is_source(g) {
                continue;
            }
            for inp in &g.inputs {
                fanout_edges[fan_cursor[inp.index()] as usize] = i as u32;
                fan_cursor[inp.index()] += 1;
            }
        }
        SoaIr {
            kinds,
            ops,
            level_of,
            level_order,
            level_starts,
            fanout_starts,
            fanout_edges,
        }
    }

    /// The kind of gate `g`.
    #[inline]
    pub fn kind(&self, g: u32) -> GateKind {
        self.kinds[g as usize]
    }

    /// The three operand slots of gate `g`; unused slots hold `g`
    /// itself, so every slot indexes a valid net.
    #[inline]
    pub fn operands(&self, g: u32) -> [u32; 3] {
        self.ops[g as usize]
    }

    /// The level of gate `g`: 0 for sources, `1 + max(operand levels)`
    /// for combinational gates.
    #[inline]
    pub fn level_of(&self, g: u32) -> u32 {
        self.level_of[g as usize]
    }

    /// Number of combinational levels (0 for a source-only netlist).
    /// Level 0 itself holds only sources, so the per-level slices start
    /// at level 1.
    pub fn level_count(&self) -> usize {
        self.level_starts.len() - 1
    }

    /// The combinational gates at `level`, in id order. Empty for level
    /// 0 (sources are not scheduled).
    #[inline]
    pub fn level(&self, level: usize) -> &[u32] {
        let lo = self.level_starts[level] as usize;
        let hi = self.level_starts[level + 1] as usize;
        &self.level_order[lo..hi]
    }

    /// Every combinational gate, level-major then id order — a valid
    /// topological order with contiguous per-level runs.
    #[inline]
    pub fn comb_order(&self) -> &[u32] {
        &self.level_order
    }

    /// The combinational gates reading net `net`, in id order.
    #[inline]
    pub fn fanout(&self, net: u32) -> &[u32] {
        let lo = self.fanout_starts[net as usize] as usize;
        let hi = self.fanout_starts[net as usize + 1] as usize;
        &self.fanout_edges[lo..hi]
    }
}

/// A validated gate-level netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    net_names: Vec<Option<String>>,
    outputs: Vec<(String, NetId)>,
    inputs: Vec<NetId>,
    dffs: Vec<GateId>,
    /// Combinational gates in topological order (sources excluded).
    topo: Vec<GateId>,
    /// Structure-of-arrays mirror of `gates` + levelization, built once.
    soa: SoaIr,
}

impl Netlist {
    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gates (including inputs, constants and flops).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    ///
    /// Every gate drives exactly one net and every net is driven by
    /// exactly one gate, so [`NetId`] and [`GateId`] share the same
    /// index space and `num_nets() == num_gates()` by construction.
    /// Value buffers in [`crate::sim`] and [`crate::soa`] are sized by
    /// this and indexed by `NetId`.
    pub fn num_nets(&self) -> usize {
        self.gates.len()
    }

    /// The structure-of-arrays view: flat kind/operand arrays, gate
    /// levels, and a CSR fanout table, built once at
    /// [`NetlistBuilder::finish`] time.
    pub fn soa(&self) -> &SoaIr {
        &self.soa
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates all gates in id order.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// Primary input nets in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs as `(name, net)` pairs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Flip-flop gates in declaration order.
    pub fn dffs(&self) -> &[GateId] {
        &self.dffs
    }

    /// Combinational gates in topological (evaluable) order.
    pub fn topo(&self) -> &[GateId] {
        &self.topo
    }

    /// Optional debug name of a net.
    pub fn net_name(&self, net: NetId) -> Option<&str> {
        self.net_names[net.index()].as_deref()
    }

    /// Total area in gate equivalents.
    pub fn area(&self) -> f64 {
        self.gates.iter().map(|g| g.kind.gate_equivalents()).sum()
    }

    /// Fanout lists: for each net, the gates reading it.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut fan = vec![Vec::new(); self.gates.len()];
        for (id, g) in self.gates() {
            for &inp in &g.inputs {
                fan[inp.index()].push(id);
            }
        }
        fan
    }

    /// Marks every flip-flop scannable (full scan).
    pub fn with_full_scan(mut self) -> Netlist {
        for (i, g) in self.gates.iter_mut().enumerate() {
            if let GateKind::Dff { scan } = &mut g.kind {
                *scan = true;
                self.soa.kinds[i] = g.kind;
            }
        }
        self
    }

    /// Marks the given flip-flops scannable (partial scan).
    ///
    /// # Panics
    ///
    /// Panics if an id is not a flip-flop.
    pub fn with_scan(mut self, flops: &[GateId]) -> Netlist {
        for &f in flops {
            match &mut self.gates[f.index()].kind {
                GateKind::Dff { scan } => *scan = true,
                _ => panic!("{f} is not a flip-flop"),
            }
            self.soa.kinds[f.index()] = self.gates[f.index()].kind;
        }
        self
    }

    /// The scannable flip-flops.
    pub fn scan_flops(&self) -> Vec<GateId> {
        self.dffs
            .iter()
            .copied()
            .filter(|&f| matches!(self.gates[f.index()].kind, GateKind::Dff { scan: true }))
            .collect()
    }
}

/// Incremental netlist construction with structural arithmetic blocks.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    net_names: Vec<Option<String>>,
    outputs: Vec<(String, NetId)>,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl NetlistBuilder {
    /// Starts an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            gates: Vec::new(),
            net_names: Vec::new(),
            outputs: Vec::new(),
            const0: None,
            const1: None,
        }
    }

    fn push(&mut self, kind: GateKind, inputs: Vec<NetId>, name: Option<String>) -> NetId {
        debug_assert_eq!(inputs.len(), kind.arity());
        let id = NetId(self.gates.len() as u32);
        self.gates.push(Gate { kind, inputs });
        self.net_names.push(name);
        id
    }

    /// Adds a named primary input bit.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        self.push(GateKind::Input, Vec::new(), Some(name.into()))
    }

    /// Adds a `width`-bit primary input bus named `name[0..width)`,
    /// least significant bit first.
    pub fn inputs(&mut self, name: &str, width: u32) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// The constant-0 net (shared).
    pub fn zero(&mut self) -> NetId {
        if let Some(z) = self.const0 {
            return z;
        }
        let z = self.push(GateKind::Const(false), Vec::new(), Some("const0".into()));
        self.const0 = Some(z);
        z
    }

    /// The constant-1 net (shared).
    pub fn one(&mut self) -> NetId {
        if let Some(o) = self.const1 {
            return o;
        }
        let o = self.push(GateKind::Const(true), Vec::new(), Some("const1".into()));
        self.const1 = Some(o);
        o
    }

    /// A `width`-bit constant bus, LSB first.
    pub fn constant(&mut self, value: u64, width: u32) -> Vec<NetId> {
        (0..width)
            .map(|i| {
                if value >> i & 1 == 1 {
                    self.one()
                } else {
                    self.zero()
                }
            })
            .collect()
    }

    /// Adds an arbitrary gate.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the kind's arity.
    pub fn gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert_eq!(inputs.len(), kind.arity(), "{kind:?} arity mismatch");
        self.push(kind, inputs.to_vec(), None)
    }

    /// Replays a gate verbatim, preserving indices — no constant
    /// deduplication, optional net name. This is the low-level API used
    /// by netlist-rewriting passes (e.g. test-point insertion) that
    /// reconstruct a netlist gate-for-gate before editing it.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match the kind's arity.
    pub fn push_gate(&mut self, kind: GateKind, inputs: &[NetId], name: Option<String>) -> NetId {
        assert_eq!(inputs.len(), kind.arity(), "{kind:?} arity mismatch");
        self.push(kind, inputs.to_vec(), name)
    }

    /// NOT gate.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(GateKind::Not, vec![a], None)
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::And, vec![a, b], None)
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Or, vec![a, b], None)
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Xor, vec![a, b], None)
    }

    /// 2:1 mux: `sel ? a : b`.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.push(GateKind::Mux, vec![sel, a, b], None)
    }

    /// Word-wide 2:1 mux.
    ///
    /// # Panics
    ///
    /// Panics if the buses have different widths.
    pub fn mux_bus(&mut self, sel: NetId, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "mux operand width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux2(sel, x, y))
            .collect()
    }

    /// N-way word mux with binary select `sel_bits` (LSB first):
    /// `options[sel]`. Missing options beyond the provided ones read as
    /// the last option.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or widths differ.
    pub fn mux_n(&mut self, sel_bits: &[NetId], options: &[Vec<NetId>]) -> Vec<NetId> {
        assert!(!options.is_empty());
        let width = options[0].len();
        assert!(options.iter().all(|o| o.len() == width));
        let mut layer: Vec<Vec<NetId>> = options.to_vec();
        for &sel in sel_bits {
            if layer.len() == 1 {
                break;
            }
            let mut next = Vec::new();
            let mut i = 0;
            while i < layer.len() {
                if i + 1 < layer.len() {
                    let hi = layer[i + 1].clone();
                    let lo = layer[i].clone();
                    next.push(self.mux_bus(sel, &hi, &lo));
                } else {
                    next.push(layer[i].clone());
                }
                i += 2;
            }
            layer = next;
        }
        layer[0].clone()
    }

    /// A bank of D flip-flops with optional load enable (`en == None`
    /// loads every cycle) and a `scan` marking.
    ///
    /// With a load enable, each flop's D input is `en ? d : q` (a
    /// recirculating register — precisely the structure that creates the
    /// self-loops the partial-scan experiments tolerate).
    pub fn register(&mut self, d: &[NetId], en: Option<NetId>, scan: bool) -> Vec<NetId> {
        let mut q = Vec::with_capacity(d.len());
        for &bit in d {
            // Reserve the flop first so the enable mux can reference Q.
            let ff = NetId(self.gates.len() as u32);
            match en {
                None => {
                    self.push(GateKind::Dff { scan }, vec![bit], None);
                    q.push(ff);
                }
                Some(e) => {
                    // flop at index ff+1; mux at ff reads (e, d, q=ff+1)
                    let mux = self.push(GateKind::Mux, vec![e, bit, NetId(ff.0 + 1)], None);
                    let flop = self.push(GateKind::Dff { scan }, vec![mux], None);
                    q.push(flop);
                }
            }
        }
        q
    }

    /// One full-adder stage with constant folding of a known carry-in,
    /// which keeps ripple structures free of untestable (redundant)
    /// gates.
    fn add_stage(&mut self, x: NetId, y: NetId, carry: Option<bool>) -> (NetId, NetId) {
        match carry {
            // Half adder: s = x^y, carry = x&y.
            Some(false) => {
                let s = self.xor2(x, y);
                let c = self.and2(x, y);
                (s, c)
            }
            // s = !(x^y), carry = x|y.
            Some(true) => {
                let p = self.xor2(x, y);
                let s = self.not(p);
                let c = self.or2(x, y);
                (s, c)
            }
            None => unreachable!("unknown constant carry handled by caller"),
        }
    }

    fn full_stage(&mut self, x: NetId, y: NetId, carry: NetId) -> (NetId, NetId) {
        let p = self.xor2(x, y);
        let s = self.xor2(p, carry);
        let g1 = self.and2(x, y);
        let g2 = self.and2(p, carry);
        let c = self.or2(g1, g2);
        (s, c)
    }

    /// Creates a D flip-flop whose data input is temporarily wired to its
    /// own output (a benign self-loop), to be rewired with
    /// [`set_dff_input`](Self::set_dff_input). This is how structures
    /// with register↔logic cycles (data paths) are built.
    pub fn dff_uninit(&mut self, scan: bool) -> NetId {
        let id = NetId(self.gates.len() as u32);
        self.push(GateKind::Dff { scan }, vec![id], None)
    }

    /// Rewires a flip-flop's data input.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a flip-flop.
    pub fn set_dff_input(&mut self, ff: NetId, d: NetId) {
        let gate = &mut self.gates[ff.index()];
        assert!(gate.kind.is_dff(), "{ff} is not a flip-flop");
        gate.inputs[0] = d;
    }

    /// Ripple-carry adder; returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ or are zero.
    pub fn ripple_add(&mut self, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len(), "adder width mismatch");
        assert!(!a.is_empty(), "zero-width adder");
        let mut sum = Vec::with_capacity(a.len());
        let (s0, mut carry) = self.add_stage(a[0], b[0], Some(false));
        sum.push(s0);
        for (&x, &y) in a.iter().zip(b).skip(1) {
            let (s, c) = self.full_stage(x, y, carry);
            carry = c;
            sum.push(s);
        }
        (sum, carry)
    }

    /// Two's-complement subtractor `a - b`; returns `(difference,
    /// carry_out)` where carry-out 1 means no borrow.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths differ or are zero.
    pub fn ripple_sub(&mut self, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len(), "subtractor width mismatch");
        assert!(!a.is_empty(), "zero-width subtractor");
        let mut diff = Vec::with_capacity(a.len());
        let ny0 = self.not(b[0]);
        let (d0, mut carry) = self.add_stage(a[0], ny0, Some(true));
        diff.push(d0);
        for (&x, &y) in a.iter().zip(b).skip(1) {
            let ny = self.not(y);
            let (s, c) = self.full_stage(x, ny, carry);
            carry = c;
            diff.push(s);
        }
        (diff, carry)
    }

    /// Array multiplier returning the low `a.len()` bits of `a × b`.
    ///
    /// Only live partial products are summed and no dead carry logic is
    /// generated, so the structure contains no untestable gates beyond
    /// the inherent truncation.
    pub fn array_mul(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "multiplier width mismatch");
        let w = a.len();
        // Row 0 seeds the accumulator directly — no add against zero.
        let mut acc: Vec<NetId> = a.iter().map(|&aj| self.and2(aj, b[0])).collect();
        for (i, &bi) in b.iter().enumerate().skip(1) {
            // Add the shifted row into acc[i..w), dropping the final
            // carry (truncated product).
            let mut carry: Option<NetId> = None;
            for (j, &aj) in a.iter().enumerate().take(w - i) {
                let pos = i + j;
                let r = self.and2(aj, bi);
                let last = pos == w - 1;
                match carry.take() {
                    None => {
                        if last {
                            acc[pos] = self.xor2(acc[pos], r);
                        } else {
                            let sum = self.xor2(acc[pos], r);
                            carry = Some(self.and2(acc[pos], r));
                            acc[pos] = sum;
                        }
                    }
                    Some(c) => {
                        if last {
                            let t = self.xor2(acc[pos], r);
                            acc[pos] = self.xor2(t, c);
                        } else {
                            let (sum, cout) = self.full_stage(acc[pos], r, c);
                            acc[pos] = sum;
                            carry = Some(cout);
                        }
                    }
                }
            }
        }
        acc
    }

    /// Bitwise word operation using `op` per bit pair.
    pub fn bitwise(&mut self, kind: GateKind, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len());
        assert_eq!(kind.arity(), 2);
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.gate(kind, &[x, y]))
            .collect()
    }

    /// Equality comparator: 1 iff `a == b`.
    pub fn eq_bus(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len());
        let mut acc = self.one();
        for (&x, &y) in a.iter().zip(b) {
            let e = self.push(GateKind::Xnor, vec![x, y], None);
            acc = self.and2(acc, e);
        }
        acc
    }

    /// Unsigned less-than comparator: 1 iff `a < b`.
    pub fn lt_bus(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len());
        // From LSB to MSB: lt = (~a & b) | (a XNOR b) & lt_prev
        let mut lt = self.zero();
        for (&x, &y) in a.iter().zip(b) {
            let nx = self.not(x);
            let strict = self.and2(nx, y);
            let eq = self.push(GateKind::Xnor, vec![x, y], None);
            let keep = self.and2(eq, lt);
            lt = self.or2(strict, keep);
        }
        lt
    }

    /// Logical shift by a constant amount (left when `left`, else right),
    /// filling with zeros.
    pub fn shift_const(&mut self, a: &[NetId], amount: usize, left: bool) -> Vec<NetId> {
        let w = a.len();
        let zero = self.zero();
        (0..w)
            .map(|i| {
                let src = if left {
                    i.checked_sub(amount)
                } else {
                    i.checked_add(amount)
                };
                match src {
                    Some(j) if j < w => a[j],
                    _ => zero,
                }
            })
            .collect()
    }

    /// Declares a single-bit primary output.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Declares a bus primary output `name[0..width)`.
    pub fn outputs(&mut self, name: &str, bits: &[NetId]) {
        for (i, &b) in bits.iter().enumerate() {
            self.outputs.push((format!("{name}[{i}]"), b));
        }
    }

    /// Number of gates so far.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// A snapshot of the gates added so far, as
    /// `(kind, inputs, net name)` — the companion of
    /// [`push_gate`](Self::push_gate) for rewrite passes that need to
    /// rewire an in-progress netlist.
    pub fn gates_snapshot(&self) -> Vec<(GateKind, Vec<NetId>, Option<String>)> {
        self.gates
            .iter()
            .zip(&self.net_names)
            .map(|(g, n)| (g.kind, g.inputs.clone(), n.clone()))
            .collect()
    }

    /// Validates and finishes the netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] on arity mismatches, dangling nets,
    /// duplicate output names, or combinational cycles.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        let n = self.gates.len();
        let mut seen = HashMap::new();
        for (name, net) in &self.outputs {
            if net.index() >= n {
                return Err(NetlistError::DanglingNet { net: *net });
            }
            if seen.insert(name.clone(), ()).is_some() {
                return Err(NetlistError::DuplicateOutput { name: name.clone() });
            }
        }
        let mut inputs = Vec::new();
        let mut dffs = Vec::new();
        for (i, g) in self.gates.iter().enumerate() {
            if g.inputs.len() != g.kind.arity() {
                return Err(NetlistError::Arity {
                    gate: GateId(i as u32),
                    expected: g.kind.arity(),
                    found: g.inputs.len(),
                });
            }
            for &inp in &g.inputs {
                if inp.index() >= n {
                    return Err(NetlistError::DanglingNet { net: inp });
                }
            }
            match g.kind {
                GateKind::Input => inputs.push(NetId(i as u32)),
                GateKind::Dff { .. } => dffs.push(GateId(i as u32)),
                _ => {}
            }
        }
        // Kahn levelization over combinational gates; DFF/Input/Const are
        // sources.
        let mut indeg = vec![0usize; n];
        let mut fan: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, g) in self.gates.iter().enumerate() {
            if matches!(
                g.kind,
                GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
            ) {
                continue;
            }
            for &inp in &g.inputs {
                let src = &self.gates[inp.index()];
                if !matches!(
                    src.kind,
                    GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
                ) {
                    indeg[i] += 1;
                    fan[inp.index()].push(i);
                }
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&i| {
                indeg[i] == 0
                    && !matches!(
                        self.gates[i].kind,
                        GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
                    )
            })
            .collect();
        let mut topo = Vec::new();
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(GateId(u as u32));
            for &v in &fan[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        let comb_count = self
            .gates
            .iter()
            .filter(|g| {
                !matches!(
                    g.kind,
                    GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
                )
            })
            .count();
        if topo.len() != comb_count {
            let stuck = (0..n)
                .find(|&i| {
                    indeg[i] > 0
                        && !matches!(
                            self.gates[i].kind,
                            GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
                        )
                })
                .expect("some gate is on the cycle");
            return Err(NetlistError::CombinationalCycle {
                gate: GateId(stuck as u32),
            });
        }
        let soa = SoaIr::build(&self.gates, &topo);
        Ok(Netlist {
            name: self.name,
            gates: self.gates,
            net_names: self.net_names,
            outputs: self.outputs,
            inputs,
            dffs,
            topo,
            soa,
        })
    }
}

/// Generates a seeded random combinational netlist: `inputs` primary
/// inputs, `gates` random two-input gates over earlier nets, the last
/// few nets exported as outputs. Used by the property-based tests that
/// cross-validate ATPG against fault simulation.
pub fn random_combinational<R: rand::Rng>(
    inputs: usize,
    gates: usize,
    outputs: usize,
    rng: &mut R,
) -> Netlist {
    assert!(inputs > 0 && gates > 0 && outputs > 0);
    let mut b = NetlistBuilder::new("rand");
    let mut nets: Vec<NetId> = (0..inputs).map(|i| b.input(format!("i{i}"))).collect();
    const KINDS: [GateKind; 7] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
    ];
    for _ in 0..gates {
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let a = nets[rng.gen_range(0..nets.len())];
        let out = if kind.arity() == 1 {
            b.gate(kind, &[a])
        } else {
            let c = nets[rng.gen_range(0..nets.len())];
            b.gate(kind, &[a, c])
        };
        nets.push(out);
    }
    for (k, &net) in nets.iter().rev().take(outputs).enumerate() {
        b.output(format!("o{k}"), net);
    }
    b.finish().expect("random combinational netlists are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_structure() {
        let mut b = NetlistBuilder::new("add4");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let (s, co) = b.ripple_add(&a, &c);
        b.outputs("s", &s);
        b.output("co", co);
        let nl = b.finish().unwrap();
        assert_eq!(nl.inputs().len(), 8);
        assert_eq!(nl.outputs().len(), 5);
        assert!(nl.area() > 0.0);
    }

    #[test]
    fn register_with_enable_self_loops() {
        let mut b = NetlistBuilder::new("reg");
        let d = b.inputs("d", 2);
        let en = b.input("en");
        let q = b.register(&d, Some(en), false);
        b.outputs("q", &q);
        let nl = b.finish().unwrap();
        assert_eq!(nl.dffs().len(), 2);
        // Each flop's mux reads the flop's own output.
        for &ff in nl.dffs() {
            let mux = nl.gate(GateId(ff.0 - 1));
            assert_eq!(mux.kind, GateKind::Mux);
            assert_eq!(mux.inputs[2], ff.net());
        }
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut b = NetlistBuilder::new("cyc");
        let x = b.input("x");
        // Manually wire a gate to a not-yet-created gate to form a loop.
        let g1 = NetId(b.num_gates() as u32 + 1); // will be g2's id
        let g0 = b.gate(GateKind::And, &[x, g1]);
        let _g1_real = b.gate(GateKind::Not, &[g0]);
        b.output("o", g0);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut b = NetlistBuilder::new("cnt1");
        // 1-bit toggler: q -> not -> dff -> q
        let ff = NetId(b.num_gates() as u32 + 1);
        let n = b.gate(GateKind::Not, &[ff]);
        let ff_real = b.gate(GateKind::Dff { scan: false }, &[n]);
        assert_eq!(ff, ff_real);
        b.output("q", ff_real);
        let nl = b.finish().unwrap();
        assert_eq!(nl.dffs().len(), 1);
    }

    #[test]
    fn duplicate_outputs_rejected() {
        let mut b = NetlistBuilder::new("dup");
        let x = b.input("x");
        b.output("o", x);
        b.output("o", x);
        assert!(matches!(
            b.finish(),
            Err(NetlistError::DuplicateOutput { .. })
        ));
    }

    #[test]
    fn full_scan_marks_all_flops() {
        let mut b = NetlistBuilder::new("fs");
        let d = b.inputs("d", 3);
        let q = b.register(&d, None, false);
        b.outputs("q", &q);
        let nl = b.finish().unwrap().with_full_scan();
        assert_eq!(nl.scan_flops().len(), 3);
    }

    #[test]
    fn constants_are_shared() {
        let mut b = NetlistBuilder::new("c");
        let z1 = b.zero();
        let z2 = b.zero();
        let o1 = b.one();
        let o2 = b.one();
        assert_eq!(z1, z2);
        assert_eq!(o1, o2);
    }
}
