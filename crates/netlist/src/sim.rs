//! 64-way parallel-pattern logic simulation.
//!
//! Each `u64` word carries 64 independent patterns down a net — the
//! classic PPSFP trick that makes fault grading of the experiment
//! circuits fast enough to run in unit tests.

use crate::net::{GateKind, NetId, Netlist};
use crate::word::{self, PatternWord};

/// A forced net value used for stuck-at fault injection: the net is
/// pinned to all-zeros or all-ones across every parallel pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedNet {
    /// The pinned net.
    pub net: NetId,
    /// The stuck value.
    pub value: bool,
}

/// Evaluates the combinational logic for one parallel-pattern frame.
///
/// `pi[i]` is the word for the i-th primary input (order of
/// [`Netlist::inputs`]); `ff[i]` is the present-state word of the i-th
/// flip-flop (order of [`Netlist::dffs`]). Returns a word per net.
///
/// # Panics
///
/// Panics if the slice lengths do not match the netlist.
pub fn eval_comb(nl: &Netlist, pi: &[u64], ff: &[u64], force: Option<ForcedNet>) -> Vec<u64> {
    assert_eq!(pi.len(), nl.inputs().len(), "primary input count mismatch");
    assert_eq!(ff.len(), nl.dffs().len(), "flip-flop count mismatch");
    // The buffer is indexed by net, not gate; `Netlist::num_nets`
    // documents the one-driver-per-net invariant that makes the two
    // counts equal by construction.
    debug_assert_eq!(nl.num_nets(), nl.num_gates());
    let mut values = vec![0u64; nl.num_nets()];
    for (i, &net) in nl.inputs().iter().enumerate() {
        values[net.index()] = pi[i];
    }
    for (i, &f) in nl.dffs().iter().enumerate() {
        values[f.net().index()] = ff[i];
    }
    for (id, g) in nl.gates() {
        if let GateKind::Const(c) = g.kind {
            values[id.net().index()] = if c { u64::MAX } else { 0 };
        }
    }
    let apply = |values: &mut Vec<u64>, net: NetId| {
        if let Some(fr) = force {
            if fr.net == net {
                values[net.index()] = if fr.value { u64::MAX } else { 0 };
            }
        }
    };
    // Sources may themselves be the faulty net.
    if let Some(fr) = force {
        let g = nl.gate(crate::net::GateId(fr.net.0));
        if matches!(
            g.kind,
            GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
        ) {
            values[fr.net.index()] = if fr.value { u64::MAX } else { 0 };
        }
    }
    for &gid in nl.topo() {
        let g = nl.gate(gid);
        let v = match g.kind {
            GateKind::Buf => values[g.inputs[0].index()],
            GateKind::Not => !values[g.inputs[0].index()],
            GateKind::And => values[g.inputs[0].index()] & values[g.inputs[1].index()],
            GateKind::Or => values[g.inputs[0].index()] | values[g.inputs[1].index()],
            GateKind::Nand => !(values[g.inputs[0].index()] & values[g.inputs[1].index()]),
            GateKind::Nor => !(values[g.inputs[0].index()] | values[g.inputs[1].index()]),
            GateKind::Xor => values[g.inputs[0].index()] ^ values[g.inputs[1].index()],
            GateKind::Xnor => !(values[g.inputs[0].index()] ^ values[g.inputs[1].index()]),
            GateKind::Mux => {
                let s = values[g.inputs[0].index()];
                (s & values[g.inputs[1].index()]) | (!s & values[g.inputs[2].index()])
            }
            GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. } => continue,
        };
        values[gid.net().index()] = v;
        apply(&mut values, gid.net());
    }
    values
}

/// Wide-word variant of [`eval_comb`]: each net carries a
/// [`PatternWord`] of `64·N` parallel patterns. The walk runs over the
/// netlist's structure-of-arrays view ([`Netlist::soa`]) — flat kind,
/// operand, and level arrays — so it is also the good-machine
/// evaluator of the SoA grading engine.
///
/// # Panics
///
/// Panics if the slice lengths do not match the netlist.
pub fn eval_comb_wide<const N: usize>(
    nl: &Netlist,
    pi: &[PatternWord<N>],
    ff: &[PatternWord<N>],
    force: Option<ForcedNet>,
) -> Vec<PatternWord<N>> {
    assert_eq!(pi.len(), nl.inputs().len(), "primary input count mismatch");
    assert_eq!(ff.len(), nl.dffs().len(), "flip-flop count mismatch");
    let soa = nl.soa();
    let mut values: Vec<PatternWord<N>> = vec![word::zeros(); nl.num_nets()];
    for (i, &net) in nl.inputs().iter().enumerate() {
        values[net.index()] = pi[i];
    }
    for (i, &f) in nl.dffs().iter().enumerate() {
        values[f.net().index()] = ff[i];
    }
    for (id, g) in nl.gates() {
        if let GateKind::Const(c) = g.kind {
            values[id.net().index()] = word::splat(c);
        }
    }
    if let Some(fr) = force {
        let g = nl.gate(crate::net::GateId(fr.net.0));
        if matches!(
            g.kind,
            GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
        ) {
            values[fr.net.index()] = word::splat(fr.value);
        }
    }
    for &g in soa.comb_order() {
        let gi = g as usize;
        let ops = soa.operands(g);
        let a = values[ops[0] as usize];
        let v = match soa.kind(g) {
            GateKind::Buf => a,
            GateKind::Not => word::not(a),
            GateKind::And => word::and(a, values[ops[1] as usize]),
            GateKind::Or => word::or(a, values[ops[1] as usize]),
            GateKind::Nand => word::not(word::and(a, values[ops[1] as usize])),
            GateKind::Nor => word::not(word::or(a, values[ops[1] as usize])),
            GateKind::Xor => word::xor(a, values[ops[1] as usize]),
            GateKind::Xnor => word::not(word::xor(a, values[ops[1] as usize])),
            GateKind::Mux => word::mux(a, values[ops[1] as usize], values[ops[2] as usize]),
            GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. } => continue,
        };
        values[gi] = v;
        if let Some(fr) = force {
            if fr.net.index() == gi {
                values[gi] = word::splat(fr.value);
            }
        }
    }
    values
}

/// Wide-word variant of [`next_state`].
pub fn next_state_wide<const N: usize>(
    nl: &Netlist,
    values: &[PatternWord<N>],
) -> Vec<PatternWord<N>> {
    nl.dffs()
        .iter()
        .map(|&f| values[nl.gate(f).inputs[0].index()])
        .collect()
}

/// Samples the next flip-flop state from a completed evaluation frame.
pub fn next_state(nl: &Netlist, values: &[u64]) -> Vec<u64> {
    nl.dffs()
        .iter()
        .map(|&f| values[nl.gate(f).inputs[0].index()])
        .collect()
}

/// Primary output words from an evaluation frame, in
/// [`Netlist::outputs`] order.
pub fn output_values(nl: &Netlist, values: &[u64]) -> Vec<u64> {
    nl.outputs()
        .iter()
        .map(|(_, net)| values[net.index()])
        .collect()
}

/// Runs a vector sequence from the all-zero state (or a given initial
/// state) and returns the primary output words per cycle.
///
/// `vectors[t]` holds one word per primary input at cycle `t`.
pub fn run_sequence(
    nl: &Netlist,
    vectors: &[Vec<u64>],
    initial: Option<Vec<u64>>,
    force: Option<ForcedNet>,
) -> Vec<Vec<u64>> {
    let mut ff = initial.unwrap_or_else(|| vec![0u64; nl.dffs().len()]);
    let mut outs = Vec::with_capacity(vectors.len());
    for v in vectors {
        let values = eval_comb(nl, v, &ff, force);
        outs.push(output_values(nl, &values));
        ff = next_state(nl, &values);
        // A stuck flip-flop output also corrupts the sampled state.
        if let Some(fr) = force {
            for (i, &f) in nl.dffs().iter().enumerate() {
                if f.net() == fr.net {
                    ff[i] = if fr.value { u64::MAX } else { 0 };
                }
            }
        }
    }
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetlistBuilder;

    fn adder(width: u32) -> Netlist {
        let mut b = NetlistBuilder::new("add");
        let a = b.inputs("a", width);
        let c = b.inputs("b", width);
        let (s, co) = b.ripple_add(&a, &c);
        b.outputs("s", &s);
        b.output("co", co);
        b.finish().unwrap()
    }

    fn drive(bits: u64, width: u32, word: &mut Vec<u64>) {
        for i in 0..width {
            word.push(if bits >> i & 1 == 1 { u64::MAX } else { 0 });
        }
    }

    #[test]
    fn adder_adds_exhaustively() {
        let nl = adder(4);
        for a in 0..16u64 {
            for c in 0..16u64 {
                let mut pi = Vec::new();
                drive(a, 4, &mut pi);
                drive(c, 4, &mut pi);
                let values = eval_comb(&nl, &pi, &[], None);
                let outs = output_values(&nl, &values);
                let mut sum = 0u64;
                for (i, &w) in outs.iter().take(4).enumerate() {
                    if w != 0 {
                        assert_eq!(w, u64::MAX);
                        sum |= 1 << i;
                    }
                }
                let carry = outs[4] != 0;
                assert_eq!(sum | (u64::from(carry) << 4), a + c, "{a}+{c}");
            }
        }
    }

    #[test]
    fn subtractor_and_multiplier() {
        let mut b = NetlistBuilder::new("aux");
        let a = b.inputs("a", 4);
        let c = b.inputs("b", 4);
        let (d, _) = b.ripple_sub(&a, &c);
        let m = b.array_mul(&a, &c);
        b.outputs("d", &d);
        b.outputs("m", &m);
        let nl = b.finish().unwrap();
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut pi = Vec::new();
                drive(x, 4, &mut pi);
                drive(y, 4, &mut pi);
                let values = eval_comb(&nl, &pi, &[], None);
                let outs = output_values(&nl, &values);
                let mut diff = 0u64;
                let mut prod = 0u64;
                for i in 0..4 {
                    if outs[i] != 0 {
                        diff |= 1 << i;
                    }
                    if outs[4 + i] != 0 {
                        prod |= 1 << i;
                    }
                }
                assert_eq!(diff, x.wrapping_sub(y) & 0xf, "{x}-{y}");
                assert_eq!(prod, (x * y) & 0xf, "{x}*{y}");
            }
        }
    }

    #[test]
    fn comparators() {
        let mut b = NetlistBuilder::new("cmp");
        let a = b.inputs("a", 3);
        let c = b.inputs("b", 3);
        let e = b.eq_bus(&a, &c);
        let l = b.lt_bus(&a, &c);
        b.output("eq", e);
        b.output("lt", l);
        let nl = b.finish().unwrap();
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut pi = Vec::new();
                drive(x, 3, &mut pi);
                drive(y, 3, &mut pi);
                let values = eval_comb(&nl, &pi, &[], None);
                let outs = output_values(&nl, &values);
                assert_eq!(outs[0] != 0, x == y);
                assert_eq!(outs[1] != 0, x < y);
            }
        }
    }

    #[test]
    fn parallel_patterns_are_independent() {
        let nl = adder(2);
        // Pattern k: a = k & 3, b = (k >> 2) & 3, packed bitwise.
        let mut pi = vec![0u64; 4];
        for k in 0..16u64 {
            for i in 0..2 {
                if k >> i & 1 == 1 {
                    pi[i] |= 1 << k;
                }
                if k >> (2 + i) & 1 == 1 {
                    pi[2 + i] |= 1 << k;
                }
            }
        }
        let values = eval_comb(&nl, &pi, &[], None);
        let outs = output_values(&nl, &values);
        for k in 0..16u64 {
            let a = k & 3;
            let b = (k >> 2) & 3;
            let mut sum = 0u64;
            for (i, &word) in outs.iter().enumerate().take(2) {
                if word >> k & 1 == 1 {
                    sum |= 1 << i;
                }
            }
            if outs[2] >> k & 1 == 1 {
                sum |= 4;
            }
            assert_eq!(sum, a + b, "pattern {k}");
        }
    }

    #[test]
    fn toggle_flop_oscillates() {
        let mut b = NetlistBuilder::new("t");
        let ff = crate::net::NetId(b.num_gates() as u32 + 1);
        let n = b.gate(GateKind::Not, &[ff]);
        let ff_real = b.gate(GateKind::Dff { scan: false }, &[n]);
        assert_eq!(ff, ff_real);
        b.output("q", ff_real);
        let nl = b.finish().unwrap();
        let vectors = vec![Vec::new(); 4];
        let outs = run_sequence(&nl, &vectors, None, None);
        assert_eq!(
            outs.iter().map(|o| o[0] & 1).collect::<Vec<_>>(),
            vec![0, 1, 0, 1]
        );
    }

    #[test]
    fn forced_net_overrides_logic() {
        let nl = adder(2);
        let mut pi = vec![0u64; 4];
        pi[0] = u64::MAX; // a = 1
        let co_net = nl.outputs().iter().find(|(n, _)| n == "co").unwrap().1;
        let values = eval_comb(
            &nl,
            &pi,
            &[],
            Some(ForcedNet {
                net: co_net,
                value: true,
            }),
        );
        assert_eq!(values[co_net.index()], u64::MAX);
    }
}
