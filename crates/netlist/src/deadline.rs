//! Cooperative wall-clock deadlines for the grading engines.
//!
//! The fault-simulation, random-pattern, and ATPG loops are the only
//! unbounded work in the workbench: a pathological netlist or a huge
//! fault universe can run for minutes. A [`Deadline`] lets a caller
//! (the DSE sweep's per-point budget) bound that work *cooperatively*:
//! each loop polls [`Deadline::expired`] at a safe granularity (between
//! pattern batches, every few dozen faults, between ATPG targets) and
//! returns a partial result flagged `timed_out` instead of being killed
//! mid-update. Nothing here preempts — a deadline is advisory until a
//! loop checks it, which keeps every data structure consistent at the
//! moment work stops.

use std::time::{Duration, Instant};

/// An optional wall-clock cutoff, cheap to copy into worker shards.
///
/// The default ([`Deadline::none`]) never expires, so engines behave
/// exactly as before unless a caller opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Deadline(Option<Instant>);

impl Deadline {
    /// No deadline: [`expired`](Self::expired) is always `false`.
    pub const fn none() -> Self {
        Deadline(None)
    }

    /// A deadline `budget` from now. A zero budget is already expired —
    /// useful for deterministic timeout tests, since every cooperative
    /// check then fires on its first poll.
    pub fn after(budget: Duration) -> Self {
        Deadline(Instant::now().checked_add(budget))
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline(Some(instant))
    }

    /// Whether a cutoff is set at all.
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Whether the cutoff has passed. Never `true` for
    /// [`Deadline::none`].
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|t| Instant::now() >= t)
    }

    /// Time left before the cutoff (`None` when no deadline is set,
    /// zero when already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.0.map(|t| t.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_set());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(Deadline::default(), d);
    }

    #[test]
    fn zero_budget_is_already_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.is_set());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_not_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(d.is_set());
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn absolute_instant_round_trips() {
        let t = Instant::now() + Duration::from_secs(60);
        let d = Deadline::at(t);
        assert!(!d.expired());
    }
}
