//! Run instrumentation for the grading engines.
//!
//! Every `_opts` entry point in [`crate::fsim`], [`crate::random`], and
//! [`crate::atpg`] reports a [`GradeStats`]: how much work the engine
//! actually did (faulty-machine evaluations), how much it avoided
//! (activation screening, fault dropping, unobservable cones), and the
//! wall time of the good-machine and faulty-machine phases. The bench
//! binaries serialize these into `BENCH_fsim.json` so engine-performance
//! regressions are visible across commits.

use std::fmt;
use std::time::Duration;

/// Work and timing counters from one grading run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GradeStats {
    /// Size of the graded fault universe.
    pub faults: usize,
    /// Test frames (combinational) or cycles (sequential) supplied.
    pub frames: usize,
    /// Faulty-machine frame evaluations actually run.
    pub fault_evals: u64,
    /// (fault, frame) pairs skipped by the activation screen: the good
    /// value already equaled the stuck value on every parallel pattern.
    pub screened: u64,
    /// (fault, frame) pairs skipped because the fault was already
    /// detected (fault dropping).
    pub dropped: u64,
    /// Faults whose combinational fanout cone reaches no observation
    /// point — structurally undetectable for this observation set.
    pub unobservable: u64,
    /// SoA engine only: stem-observability lookups answered by the
    /// per-chunk memo (the fault's FFR stem was already resolved this
    /// chunk).
    pub stem_memo_hits: u64,
    /// SoA engine only: stem lookups that had to run the event-driven
    /// flip propagation.
    pub stem_memo_misses: u64,
    /// SoA engine only: gate evaluations performed by the event-driven
    /// flip propagation (the engine's true unit of hot-loop work).
    pub flip_events: u64,
    /// SoA engine only: flip propagations cut short because the
    /// observability word saturated (every parallel pattern already
    /// differed at an observation point).
    pub early_exits: u64,
    /// Worker threads the faulty-machine phase actually ran on — the
    /// *effective* count after the small-universe gate
    /// ([`crate::fsim::ParallelOptions::min_faults_per_thread`]) may
    /// have reduced the requested `threads`.
    pub threads: usize,
    /// Wall time of the good-machine phase (reference evaluations).
    pub wall_good: Duration,
    /// Wall time of the faulty-machine phase (sharded grading).
    pub wall_fault: Duration,
    /// Whether any shard stopped early because its
    /// [`crate::deadline::Deadline`] expired — the counters above then
    /// describe a truncated (but internally consistent) run.
    pub timed_out: bool,
}

impl GradeStats {
    /// Total wall time across both phases.
    pub fn wall(&self) -> Duration {
        self.wall_good + self.wall_fault
    }

    /// Folds another run's counters and phase times into this one —
    /// used when a curve or ATPG loop grades in many small calls and
    /// reports one aggregate.
    pub fn absorb(&mut self, other: &GradeStats) {
        self.faults = self.faults.max(other.faults);
        self.frames += other.frames;
        self.merge_counts(other);
        self.threads = self.threads.max(other.threads);
        self.wall_good += other.wall_good;
        self.wall_fault += other.wall_fault;
    }

    /// Sums the per-shard work counters only; phase walls and shape
    /// fields stay as the orchestrator measured them (shards run
    /// concurrently, so their elapsed times must not be added).
    pub(crate) fn merge_counts(&mut self, other: &GradeStats) {
        self.fault_evals += other.fault_evals;
        self.screened += other.screened;
        self.dropped += other.dropped;
        self.unobservable += other.unobservable;
        self.stem_memo_hits += other.stem_memo_hits;
        self.stem_memo_misses += other.stem_memo_misses;
        self.flip_events += other.flip_events;
        self.early_exits += other.early_exits;
        self.timed_out |= other.timed_out;
    }

    /// Renders the stats as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = hlstb_trace::json::Obj::new();
        o.number_u64("faults", self.faults as u64)
            .number_u64("frames", self.frames as u64)
            .number_u64("fault_evals", self.fault_evals)
            .number_u64("screened", self.screened)
            .number_u64("dropped", self.dropped)
            .number_u64("unobservable", self.unobservable)
            .number_u64("stem_memo_hits", self.stem_memo_hits)
            .number_u64("stem_memo_misses", self.stem_memo_misses)
            .number_u64("flip_events", self.flip_events)
            .number_u64("early_exits", self.early_exits)
            .number_u64("threads", self.threads as u64)
            .raw(
                "wall_good_ms",
                &format!("{:.3}", self.wall_good.as_secs_f64() * 1e3),
            )
            .raw(
                "wall_fault_ms",
                &format!("{:.3}", self.wall_fault.as_secs_f64() * 1e3),
            )
            .boolean("timed_out", self.timed_out);
        o.finish()
    }

    /// Bridges this run's counters into the global trace collector
    /// (`fsim.*` counters, thread/universe gauges). The engines call it
    /// on exit so `GradeStats` stays the per-run record while the trace
    /// layer accumulates whole-process totals. No-op when tracing is
    /// disabled.
    pub fn trace_bridge(&self) {
        if !hlstb_trace::enabled() {
            return;
        }
        hlstb_trace::counter("fsim.fault_evals", self.fault_evals);
        hlstb_trace::counter("fsim.screened", self.screened);
        hlstb_trace::counter("fsim.dropped", self.dropped);
        hlstb_trace::counter("fsim.unobservable", self.unobservable);
        hlstb_trace::counter("fsim.stem_memo_hits", self.stem_memo_hits);
        hlstb_trace::counter("fsim.stem_memo_misses", self.stem_memo_misses);
        hlstb_trace::counter("fsim.flip_events", self.flip_events);
        hlstb_trace::counter("fsim.early_exits", self.early_exits);
        hlstb_trace::counter("fsim.frames", self.frames as u64);
        hlstb_trace::gauge("fsim.threads", self.threads as u64);
        hlstb_trace::gauge("fsim.faults", self.faults as u64);
    }
}

impl fmt::Display for GradeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults x {} frames: {} evals ({} screened, {} dropped, \
             {} unobservable) on {} thread(s) in {:.1} ms good + {:.1} ms fault",
            self.faults,
            self.frames,
            self.fault_evals,
            self.screened,
            self.dropped,
            self.unobservable,
            self.threads.max(1),
            self.wall_good.as_secs_f64() * 1e3,
            self.wall_fault.as_secs_f64() * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_work_and_time() {
        let mut a = GradeStats {
            faults: 10,
            frames: 2,
            fault_evals: 5,
            screened: 1,
            dropped: 0,
            unobservable: 1,
            threads: 2,
            wall_good: Duration::from_millis(1),
            wall_fault: Duration::from_millis(2),
            timed_out: false,
            ..Default::default()
        };
        let b = GradeStats {
            faults: 10,
            frames: 3,
            fault_evals: 7,
            screened: 2,
            dropped: 4,
            unobservable: 0,
            threads: 1,
            wall_good: Duration::from_millis(3),
            wall_fault: Duration::from_millis(4),
            timed_out: true,
            stem_memo_hits: 6,
            stem_memo_misses: 2,
            flip_events: 40,
            early_exits: 1,
        };
        a.absorb(&b);
        assert_eq!(a.faults, 10);
        assert_eq!(a.frames, 5);
        assert_eq!(a.fault_evals, 12);
        assert_eq!(a.screened, 3);
        assert_eq!(a.dropped, 4);
        assert_eq!(a.threads, 2);
        assert_eq!(a.wall(), Duration::from_millis(10));
        assert_eq!(a.stem_memo_hits, 6);
        assert_eq!(a.stem_memo_misses, 2);
        assert_eq!(a.flip_events, 40);
        assert_eq!(a.early_exits, 1);
        // A truncated sub-run marks the aggregate as truncated.
        assert!(a.timed_out);
    }

    #[test]
    fn json_has_every_field() {
        let s = GradeStats::default().to_json();
        for key in [
            "faults",
            "frames",
            "fault_evals",
            "screened",
            "dropped",
            "unobservable",
            "stem_memo_hits",
            "stem_memo_misses",
            "flip_events",
            "early_exits",
            "threads",
            "wall_good_ms",
            "wall_fault_ms",
            "timed_out",
        ] {
            assert!(s.contains(&format!("\"{key}\"")), "{key} missing: {s}");
        }
    }

    #[test]
    fn display_is_compact() {
        let s = GradeStats::default().to_string();
        assert!(s.contains("faults"));
        assert!(s.contains("thread"));
    }
}
