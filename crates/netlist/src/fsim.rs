//! Fault simulation: parallel-pattern combinational grading and
//! sequence-based sequential grading.
//!
//! Sequential grading assumes a resettable design starting from the
//! all-zero state for both the good and the faulty machine — the
//! standard simplification for architecture-level coverage studies; the
//! in-tree sequential ATPG ([`crate::seq`]) is the pessimistic
//! (3-valued) instrument.

use std::collections::BTreeSet;

use crate::fault::Fault;
use crate::net::Netlist;
use crate::sim::{eval_comb, next_state, output_values, ForcedNet};

/// One combinational test frame: a word (64 parallel patterns) per
/// primary input, and per flip-flop when the circuit is graded in
/// full-scan mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestFrame {
    /// One word per primary input.
    pub pi: Vec<u64>,
    /// One word per flip-flop (scan-loaded state); empty for pure
    /// combinational circuits or non-scan grading.
    pub ff: Vec<u64>,
}

/// Summary of a grading run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSimSummary {
    /// Faults detected, in fault order.
    pub detected: BTreeSet<Fault>,
    /// Size of the graded universe.
    pub total: usize,
}

impl FaultSimSummary {
    /// Detected / total, in percent (100 for an empty universe).
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected.len() as f64 / self.total as f64
        }
    }
}

fn forced(fault: Fault) -> ForcedNet {
    ForcedNet { net: fault.net, value: fault.stuck_at_one }
}

/// Grades `faults` against combinational/full-scan frames.
///
/// In scan mode (`frame.ff` nonempty) the observation points are the
/// primary outputs *plus every scannable flip-flop's data input* (the
/// response that would be shifted out); controllability comes from the
/// frame's `ff` words standing in for scan-in.
pub fn comb_fault_sim(nl: &Netlist, faults: &[Fault], frames: &[TestFrame]) -> FaultSimSummary {
    let scan_obs: Vec<crate::net::NetId> = nl
        .scan_flops()
        .iter()
        .map(|&f| nl.gate(f).inputs[0])
        .collect();
    let observed: Vec<crate::net::NetId> = nl
        .outputs()
        .iter()
        .map(|(_, n)| *n)
        .chain(scan_obs)
        .collect();
    comb_fault_sim_observed(nl, faults, frames, &observed)
}

/// Grades `faults` with an explicit observation set — the primitive
/// behind both full-scan grading and BIST grading (where only the
/// signature registers' data inputs are compacted).
pub fn comb_fault_sim_observed(
    nl: &Netlist,
    faults: &[Fault],
    frames: &[TestFrame],
    observed: &[crate::net::NetId],
) -> FaultSimSummary {
    let scan_obs: Vec<usize> = observed.iter().map(|n| n.index()).collect();
    let mut detected = BTreeSet::new();
    for frame in frames {
        let ff = if frame.ff.is_empty() && !nl.dffs().is_empty() {
            vec![0u64; nl.dffs().len()]
        } else {
            frame.ff.clone()
        };
        let good = eval_comb(nl, &frame.pi, &ff, None);
        let good_obs: Vec<u64> = scan_obs.iter().map(|&i| good[i]).collect();
        for &fault in faults {
            if detected.contains(&fault) {
                continue;
            }
            // Activation screen: if the good value already equals the
            // stuck value on every pattern, the fault is not excited.
            let gv = good[fault.net.index()];
            let excited = if fault.stuck_at_one { gv != u64::MAX } else { gv != 0 };
            if !excited {
                continue;
            }
            let bad = eval_comb(nl, &frame.pi, &ff, Some(forced(fault)));
            let differs = scan_obs
                .iter()
                .map(|&i| bad[i])
                .zip(&good_obs)
                .any(|(b, &g)| b != g);
            if differs {
                detected.insert(fault);
            }
        }
    }
    FaultSimSummary { detected, total: faults.len() }
}

/// Grades `faults` against an input sequence (64 parallel sequences per
/// word). Detection = any primary output differs in any cycle.
pub fn seq_fault_sim(
    nl: &Netlist,
    faults: &[Fault],
    vectors: &[Vec<u64>],
) -> FaultSimSummary {
    // Good-machine trace.
    let mut good_outs = Vec::with_capacity(vectors.len());
    let mut ff = vec![0u64; nl.dffs().len()];
    for v in vectors {
        let values = eval_comb(nl, v, &ff, None);
        good_outs.push(output_values(nl, &values));
        ff = next_state(nl, &values);
    }
    let mut detected = BTreeSet::new();
    for &fault in faults {
        let mut ff = vec![0u64; nl.dffs().len()];
        pin_state(nl, fault, &mut ff);
        'run: for (t, v) in vectors.iter().enumerate() {
            let values = eval_comb(nl, v, &ff, Some(forced(fault)));
            let outs = output_values(nl, &values);
            if outs != good_outs[t] {
                detected.insert(fault);
                break 'run;
            }
            ff = next_state(nl, &values);
            pin_state(nl, fault, &mut ff);
        }
    }
    FaultSimSummary { detected, total: faults.len() }
}

/// Sequence-based grading with an explicit observation set and initial
/// state: the BIST instrument. `vectors[t]` drives the primary inputs at
/// cycle `t`; detection = any observed net differs in any cycle.
pub fn seq_fault_sim_observed(
    nl: &Netlist,
    faults: &[Fault],
    vectors: &[Vec<u64>],
    initial: &[u64],
    observed: &[crate::net::NetId],
) -> FaultSimSummary {
    let obs: Vec<usize> = observed.iter().map(|n| n.index()).collect();
    let mut good_trace = Vec::with_capacity(vectors.len());
    let mut ff = initial.to_vec();
    for v in vectors {
        let values = eval_comb(nl, v, &ff, None);
        good_trace.push(obs.iter().map(|&i| values[i]).collect::<Vec<u64>>());
        ff = next_state(nl, &values);
    }
    let mut detected = BTreeSet::new();
    for &fault in faults {
        let mut ff = initial.to_vec();
        pin_state(nl, fault, &mut ff);
        'run: for (t, v) in vectors.iter().enumerate() {
            let values = eval_comb(nl, v, &ff, Some(forced(fault)));
            let bad: Vec<u64> = obs.iter().map(|&i| values[i]).collect();
            if bad != good_trace[t] {
                detected.insert(fault);
                break 'run;
            }
            ff = next_state(nl, &values);
            pin_state(nl, fault, &mut ff);
        }
    }
    FaultSimSummary { detected, total: faults.len() }
}

/// A stuck flip-flop output keeps its sampled state pinned as well.
fn pin_state(nl: &Netlist, fault: Fault, ff: &mut [u64]) {
    for (i, &f) in nl.dffs().iter().enumerate() {
        if f.net() == fault.net {
            ff[i] = if fault.stuck_at_one { u64::MAX } else { 0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use crate::net::{GateKind, NetlistBuilder};

    fn xor_tree() -> Netlist {
        let mut b = NetlistBuilder::new("xt");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let x1 = b.xor2(a, c);
        let x2 = b.xor2(x1, d);
        b.output("o", x2);
        b.finish().unwrap()
    }

    #[test]
    fn exhaustive_patterns_detect_everything_in_xor_tree() {
        let nl = xor_tree();
        let faults = all_faults(&nl);
        // 8 patterns packed into one frame.
        let mut pi = vec![0u64; 3];
        for k in 0..8u64 {
            for i in 0..3 {
                if k >> i & 1 == 1 {
                    pi[i] |= 1 << k;
                }
            }
        }
        let r = comb_fault_sim(&nl, &faults, &[TestFrame { pi, ff: Vec::new() }]);
        assert_eq!(r.detected.len(), r.total);
        assert_eq!(r.coverage_percent(), 100.0);
    }

    #[test]
    fn no_patterns_detect_nothing() {
        let nl = xor_tree();
        let faults = all_faults(&nl);
        let r = comb_fault_sim(&nl, &faults, &[]);
        assert!(r.detected.is_empty());
        assert_eq!(r.coverage_percent(), 0.0);
    }

    #[test]
    fn blocked_logic_is_undetectable() {
        // o = x AND 0: faults on x can never propagate.
        let mut b = NetlistBuilder::new("blk");
        let x = b.input("x");
        let z = b.zero();
        let g = b.and2(x, z);
        b.output("o", g);
        let nl = b.finish().unwrap();
        let faults = vec![Fault::sa0(x), Fault::sa1(x)];
        let pi = vec![0b01u64];
        let r = comb_fault_sim(&nl, &faults, &[TestFrame { pi, ff: Vec::new() }]);
        assert!(r.detected.is_empty());
    }

    #[test]
    fn sequential_detection_through_a_flop() {
        // in -> dff -> out: a stuck input shows up one cycle later.
        let mut b = NetlistBuilder::new("pipe");
        let x = b.input("x");
        let q = b.register(&[x], None, false);
        b.output("o", q[0]);
        let nl = b.finish().unwrap();
        let faults = vec![Fault::sa0(x)];
        let vectors = vec![vec![u64::MAX], vec![0]];
        let r = seq_fault_sim(&nl, &faults, &vectors);
        assert_eq!(r.detected.len(), 1);
    }

    #[test]
    fn scan_mode_observes_flop_inputs() {
        // x -> dff (scan) with no PO: only scan observation detects.
        let mut b = NetlistBuilder::new("scanobs");
        let x = b.input("x");
        let n = b.not(x);
        let _q = b.gate(GateKind::Dff { scan: true }, &[n]);
        b.output("dummy", x);
        let nl = b.finish().unwrap();
        let faults = vec![Fault::sa0(n), Fault::sa1(n)];
        let frames = [
            TestFrame { pi: vec![0], ff: vec![0] },
            TestFrame { pi: vec![u64::MAX], ff: vec![0] },
        ];
        let r = comb_fault_sim(&nl, &faults, &frames);
        assert_eq!(r.detected.len(), 2);
    }

    #[test]
    fn stuck_flop_output_corrupts_state() {
        let mut b = NetlistBuilder::new("st");
        let x = b.input("x");
        let q = b.register(&[x], None, false);
        b.output("o", q[0]);
        let nl = b.finish().unwrap();
        let ff_net = nl.dffs()[0].net();
        let faults = vec![Fault::sa1(ff_net)];
        // Good machine: out = delayed x = 0,0; faulty: 1,1.
        let vectors = vec![vec![0u64], vec![0u64]];
        let r = seq_fault_sim(&nl, &faults, &vectors);
        assert_eq!(r.detected.len(), 1);
    }
}
