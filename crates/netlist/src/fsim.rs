//! Fault simulation: parallel-pattern combinational grading and
//! sequence-based sequential grading.
//!
//! Sequential grading assumes a resettable design starting from the
//! all-zero state for both the good and the faulty machine — the
//! standard simplification for architecture-level coverage studies; the
//! in-tree sequential ATPG ([`crate::seq`]) is the pessimistic
//! (3-valued) instrument.
//!
//! # The grading engine
//!
//! Every entry point has an `_opts` variant taking a
//! [`ParallelOptions`] and returning a [`GradeStats`] alongside the
//! summary. The engine grades fault-major: per frame the good machine
//! is evaluated once, then each fault is checked with a
//! faulty-machine evaluation restricted to the fault's combinational
//! fanout cone (nets outside the cone cannot differ from the good
//! values, so they are read through). Three screens avoid work without
//! ever changing the detected set:
//!
//! * **activation** — a fault whose good value equals the stuck value
//!   on every parallel pattern is not excited in this frame;
//! * **observability** — a fault whose cone reaches no observation
//!   point is structurally undetectable;
//! * **fault dropping** — once detected, a fault's remaining frames
//!   are skipped (detection is monotone in the frame set).
//!
//! With `threads > 1` the fault universe is sharded contiguously
//! across `std::thread::scope` workers. Shards are disjoint and each
//! fault's verdict depends only on the shared good-machine trace, so
//! the merged result is bit-identical to the serial one regardless of
//! scheduling — the default options keep the engine serial anyway.
//!
//! ## The small-universe gate
//!
//! Spawning workers is not free: each worker pays the thread-spawn
//! cost and rebuilds its own cone cache, so for small fault universes
//! the sharded engine is *slower* than the serial one (the original
//! `BENCH_fsim.json` showed drop-2t/drop-4t behind serial drop on
//! every benchmark design, all of which collapse to under ~2k faults).
//! [`ParallelOptions::min_faults_per_thread`] gates the shard count:
//! the engine uses at most `faults / min_faults_per_thread` workers
//! (never fewer than one), falling back to the serial path when the
//! universe cannot feed every worker at least that many faults. The
//! gate changes only the schedule, never the detected set, and the
//! *effective* worker count is what [`GradeStats::threads`] records.
//! Set the field to `0` to disable the gate (tests and measurements
//! that must exercise the sharded path do this).

use std::collections::BTreeSet;
use std::time::Instant;

use crate::deadline::Deadline;
use crate::fault::Fault;
use crate::net::{GateId, GateKind, NetId, Netlist};
use crate::sim::{eval_comb, next_state, ForcedNet};
use crate::stats::GradeStats;
use crate::word::WordWidth;

/// One combinational test frame: a word (64 parallel patterns) per
/// primary input, and per flip-flop when the circuit is graded in
/// full-scan mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestFrame {
    /// One word per primary input.
    pub pi: Vec<u64>,
    /// One word per flip-flop (scan-loaded state); empty for pure
    /// combinational circuits or non-scan grading.
    pub ff: Vec<u64>,
    /// Which of the 64 lanes carry real patterns. A frame holding only
    /// `k < 64` patterns must clear the unused high lanes
    /// (`mask = (1 << k) - 1`) or padding lanes would contribute
    /// phantom detections. [`TestFrame::new`] sets all lanes live.
    pub mask: u64,
}

impl TestFrame {
    /// A frame with all 64 lanes live — the historical behavior.
    pub fn new(pi: Vec<u64>, ff: Vec<u64>) -> TestFrame {
        TestFrame {
            pi,
            ff,
            mask: u64::MAX,
        }
    }

    /// A frame carrying only the `count` low lanes (`count` is clamped
    /// to 64); the rest are padding and can never detect a fault.
    pub fn with_lanes(pi: Vec<u64>, ff: Vec<u64>, count: usize) -> TestFrame {
        TestFrame {
            pi,
            ff,
            mask: lane_mask(count),
        }
    }
}

/// The mask selecting the `count` low lanes of a word (`count >= 64`
/// selects all of them).
pub fn lane_mask(count: usize) -> u64 {
    if count >= 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Summary of a grading run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSimSummary {
    /// Faults detected, in fault order.
    pub detected: BTreeSet<Fault>,
    /// Size of the graded universe.
    pub total: usize,
}

impl FaultSimSummary {
    /// Detected / total, in percent (100 for an empty universe).
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected.len() as f64 / self.total as f64
        }
    }
}

/// Which combinational grading engine runs the faulty-machine phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimEngine {
    /// The retained reference engine: per-fault structural cone cache
    /// over the per-gate netlist view, one 64-pattern word per frame.
    /// Default, and the correctness anchor the SoA engine is
    /// differential-tested against.
    #[default]
    Reference,
    /// The levelized structure-of-arrays engine ([`crate::soa`]):
    /// event-driven propagation over flat index arrays, with frames
    /// packed [`ParallelOptions::word_width`] lanes per pattern word.
    Soa,
}

/// Options for the grading engine. The default — one thread, fault
/// dropping on, the reference engine at 64-pattern words — reproduces
/// the historical serial behavior and results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Worker threads for the faulty-machine phase; `1` grades in place
    /// without spawning.
    pub threads: usize,
    /// Skip a fault's remaining frames (combinational) or cycles
    /// (sequential) once it is detected. Detection is monotone, so this
    /// changes only the work done, never the detected set.
    pub drop_detected: bool,
    /// Minimum faults each worker shard must receive before the engine
    /// spawns threads at all (see the module-level *small-universe
    /// gate*). `0` disables the gate. The default,
    /// [`DEFAULT_MIN_FAULTS_PER_THREAD`], keeps every benchmark-sized
    /// universe on the serial path, where it is measurably faster.
    pub min_faults_per_thread: usize,
    /// Cooperative wall-clock cutoff. Shard loops poll it every
    /// [`deadline_poll_stride`] faults and stop early with
    /// [`GradeStats::timed_out`] set; the default never expires.
    pub deadline: Deadline,
    /// Which faulty-machine engine grades combinational frames.
    pub engine: SimEngine,
    /// Pattern-word width of the SoA engine: how many frames are packed
    /// into one [`crate::word::PatternWord`]. Ignored by the reference
    /// engine, whose frames are inherently one 64-bit word wide.
    pub word_width: WordWidth,
}

/// How many faults a shard grades between deadline polls at the
/// historical one-lane width: often enough that an expired budget stops
/// work promptly, rarely enough that the `Instant::now` syscall is
/// invisible in the profile. Wider words poll at the scaled
/// [`deadline_poll_stride`] instead.
pub const DEADLINE_POLL_STRIDE: usize = 64;

/// Faults between deadline polls for an engine whose pattern words
/// carry `lanes` 64-bit lanes.
///
/// [`DEADLINE_POLL_STRIDE`] was calibrated as a *fault-eval* budget at
/// the historical one-lane width: 64 faults, each paying one frame-eval
/// per 64-pattern word between polls. An `L`-lane word does `L` lanes'
/// worth of evaluation per fault chunk, so the fault stride shrinks by
/// `L` to keep the work between polls — and therefore the worst-case
/// overshoot past an expired deadline — roughly constant across widths.
/// The stride never drops below one fault, and shard loops still skip
/// the poll before the first stride, so a zero-budget run always grades
/// exactly one stride's worth of faults: deterministic at every width,
/// with [`GradeStats::timed_out`] set the same way.
pub fn deadline_poll_stride(lanes: usize) -> usize {
    (DEADLINE_POLL_STRIDE / lanes.max(1)).max(1)
}

/// Default for [`ParallelOptions::min_faults_per_thread`]: below ~4k
/// faults per worker, thread-spawn cost and per-worker cone-cache
/// duplication outweigh the parallel win on every design we measure.
pub const DEFAULT_MIN_FAULTS_PER_THREAD: usize = 4096;

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 1,
            drop_detected: true,
            min_faults_per_thread: DEFAULT_MIN_FAULTS_PER_THREAD,
            deadline: Deadline::none(),
            engine: SimEngine::Reference,
            word_width: WordWidth::W64,
        }
    }
}

impl ParallelOptions {
    /// The serial engine (the default).
    pub fn serial() -> Self {
        ParallelOptions::default()
    }

    /// The serial SoA engine at the given pattern-word width.
    pub fn soa(width: WordWidth) -> Self {
        ParallelOptions {
            engine: SimEngine::Soa,
            word_width: width,
            ..ParallelOptions::default()
        }
    }

    /// An `n`-thread engine with fault dropping and the default
    /// small-universe gate.
    pub fn with_threads(n: usize) -> Self {
        ParallelOptions {
            threads: n.max(1),
            ..ParallelOptions::default()
        }
    }

    /// An `n`-thread engine with the small-universe gate disabled —
    /// for tests and measurements that must exercise the sharded path
    /// regardless of universe size.
    pub fn with_threads_ungated(n: usize) -> Self {
        ParallelOptions {
            threads: n.max(1),
            min_faults_per_thread: 0,
            ..ParallelOptions::default()
        }
    }

    /// Worker threads the engine will actually use for a universe of
    /// `faults` faults: the requested count, capped by the universe
    /// size and by the small-universe gate. This is the value recorded
    /// in [`GradeStats::threads`].
    pub fn effective_threads(&self, faults: usize) -> usize {
        let mut t = self.threads.max(1).min(faults.max(1));
        if let Some(full_shards) = faults.checked_div(self.min_faults_per_thread) {
            t = t.min(full_shards.max(1));
        }
        t
    }
}

fn forced(fault: Fault) -> ForcedNet {
    ForcedNet {
        net: fault.net,
        value: fault.stuck_at_one,
    }
}

/// The default observation set: primary outputs plus every scannable
/// flip-flop's data input (the response that would be shifted out).
fn scan_observed(nl: &Netlist) -> Vec<NetId> {
    let scan_obs: Vec<NetId> = nl
        .scan_flops()
        .iter()
        .map(|&f| nl.gate(f).inputs[0])
        .collect();
    nl.outputs()
        .iter()
        .map(|(_, n)| *n)
        .chain(scan_obs)
        .collect()
}

/// Grades `faults` against combinational/full-scan frames.
///
/// In scan mode (`frame.ff` nonempty) the observation points are the
/// primary outputs *plus every scannable flip-flop's data input* (the
/// response that would be shifted out); controllability comes from the
/// frame's `ff` words standing in for scan-in.
pub fn comb_fault_sim(nl: &Netlist, faults: &[Fault], frames: &[TestFrame]) -> FaultSimSummary {
    comb_fault_sim_opts(nl, faults, frames, &ParallelOptions::default()).0
}

/// [`comb_fault_sim`] with engine options and run instrumentation.
pub fn comb_fault_sim_opts(
    nl: &Netlist,
    faults: &[Fault],
    frames: &[TestFrame],
    opts: &ParallelOptions,
) -> (FaultSimSummary, GradeStats) {
    comb_fault_sim_observed_opts(nl, faults, frames, &scan_observed(nl), opts)
}

/// Grades `faults` with an explicit observation set — the primitive
/// behind both full-scan grading and BIST grading (where only the
/// signature registers' data inputs are compacted).
pub fn comb_fault_sim_observed(
    nl: &Netlist,
    faults: &[Fault],
    frames: &[TestFrame],
    observed: &[NetId],
) -> FaultSimSummary {
    comb_fault_sim_observed_opts(nl, faults, frames, observed, &ParallelOptions::default()).0
}

/// [`comb_fault_sim_observed`] with engine options and run
/// instrumentation.
pub fn comb_fault_sim_observed_opts(
    nl: &Netlist,
    faults: &[Fault],
    frames: &[TestFrame],
    observed: &[NetId],
    opts: &ParallelOptions,
) -> (FaultSimSummary, GradeStats) {
    if opts.engine == SimEngine::Soa {
        return crate::soa::grade_observed_opts(nl, faults, frames, observed, opts);
    }
    // Good-machine phase: one reference evaluation per frame, plus the
    // engine's structural tables (fanout, topo positions, observation
    // marks). All of it is shared read-only by the workers.
    let good_span = hlstb_trace::span("fsim.good");
    let good_start = Instant::now();
    let masks: Vec<u64> = frames.iter().map(|f| f.mask).collect();
    let goods: Vec<Vec<u64>> = frames
        .iter()
        .map(|frame| {
            let ff = if frame.ff.is_empty() && !nl.dffs().is_empty() {
                vec![0u64; nl.dffs().len()]
            } else {
                frame.ff.clone()
            };
            eval_comb(nl, &frame.pi, &ff, None)
        })
        .collect();
    let engine = ConeEngine::new(nl, observed);
    let wall_good = good_start.elapsed();
    good_span.end();

    let fault_span = hlstb_trace::span("fsim.fault");
    let fault_start = Instant::now();
    let threads = opts.effective_threads(faults.len());
    let drop_detected = opts.drop_detected;
    let deadline = opts.deadline;
    let (detected, mut stats) = if threads == 1 {
        grade_comb_shard(nl, &engine, &goods, &masks, faults, drop_detected, deadline)
    } else {
        let chunk = faults.len().div_ceil(threads);
        let mut merged = BTreeSet::new();
        let mut counts = GradeStats::default();
        std::thread::scope(|scope| {
            let engine = &engine;
            let goods = &goods;
            let masks = &masks;
            let handles: Vec<_> = faults
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move || {
                        grade_comb_shard(nl, engine, goods, masks, shard, drop_detected, deadline)
                    })
                })
                .collect();
            for handle in handles {
                let (shard_detected, shard_counts) =
                    handle.join().expect("grading worker panicked");
                merged.extend(shard_detected);
                counts.merge_counts(&shard_counts);
            }
        });
        (merged, counts)
    };
    stats.faults = faults.len();
    stats.frames = frames.len();
    stats.threads = threads;
    stats.wall_good = wall_good;
    stats.wall_fault = fault_start.elapsed();
    fault_span.end();
    stats.trace_bridge();
    (
        FaultSimSummary {
            detected,
            total: faults.len(),
        },
        stats,
    )
}

/// Grades one contiguous fault shard against the shared good trace.
#[allow(clippy::too_many_arguments)]
fn grade_comb_shard(
    nl: &Netlist,
    engine: &ConeEngine,
    goods: &[Vec<u64>],
    masks: &[u64],
    shard: &[Fault],
    drop_detected: bool,
    deadline: Deadline,
) -> (BTreeSet<Fault>, GradeStats) {
    let mut detected = BTreeSet::new();
    let mut stats = GradeStats::default();
    let mut scratch = Scratch::new(nl.num_gates());
    // Both polarities of a net share its cone; universes list them
    // adjacently, so caching the last cone removes half the builds.
    let mut cached: Option<(NetId, Cone)> = None;
    for (fault_idx, &fault) in shard.iter().enumerate() {
        // Cooperative cutoff: stop between faults, so every counter and
        // the detected set stay consistent. At least one fault is
        // always graded, which keeps zero-budget runs deterministic.
        if fault_idx > 0 && fault_idx % DEADLINE_POLL_STRIDE == 0 && deadline.expired() {
            stats.timed_out = true;
            break;
        }
        if cached.as_ref().map(|(n, _)| *n) != Some(fault.net) {
            cached = Some((fault.net, engine.cone(fault.net, &mut scratch)));
        }
        let cone = &cached.as_ref().expect("cone cached above").1;
        if cone.obs.is_empty() {
            stats.unobservable += 1;
            continue;
        }
        let stuck = if fault.stuck_at_one { u64::MAX } else { 0 };
        let mut hit = false;
        for (fi, good) in goods.iter().enumerate() {
            if hit && drop_detected {
                stats.dropped += (goods.len() - fi) as u64;
                break;
            }
            // Activation screen: if the good value already equals the
            // stuck value on every live pattern lane, the fault is not
            // excited in this frame.
            let gv = good[fault.net.index()];
            if (gv ^ stuck) & masks[fi] == 0 {
                stats.screened += 1;
                continue;
            }
            stats.fault_evals += 1;
            if engine.cone_differs(nl, cone, good, stuck, masks[fi], &mut scratch) {
                hit = true;
            }
        }
        if hit {
            detected.insert(fault);
        }
    }
    (detected, stats)
}

/// Structural tables shared by all grading workers.
struct ConeEngine {
    /// Net index → combinational gates reading it.
    fanout: Vec<Vec<u32>>,
    /// Gate index → position in topological order.
    topo_pos: Vec<u32>,
    /// Net index → is an observation point.
    obs_mark: Vec<bool>,
}

/// The combinational fanout cone of one fault site.
struct Cone {
    /// The faulty net's index.
    source: usize,
    /// Downstream combinational gates, topologically sorted.
    members: Vec<u32>,
    /// Observation points among `{source} ∪ members`.
    obs: Vec<u32>,
}

/// Per-worker reusable buffers: an epoch-stamped value overlay for the
/// faulty machine (nets outside the stamp read through to the good
/// values) and a visited stamp for cone construction.
struct Scratch {
    val: Vec<u64>,
    stamp: Vec<u64>,
    epoch: u64,
    visited: Vec<u64>,
    visit_epoch: u64,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            val: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
            visited: vec![0; n],
            visit_epoch: 0,
        }
    }
}

impl ConeEngine {
    fn new(nl: &Netlist, observed: &[NetId]) -> Self {
        let n = nl.num_gates();
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (gid, gate) in nl.gates() {
            // Flip-flops break combinational propagation within a
            // frame; inputs/consts have no operands.
            if matches!(
                gate.kind,
                GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
            ) {
                continue;
            }
            for input in &gate.inputs {
                fanout[input.index()].push(gid.0);
            }
        }
        let mut topo_pos = vec![0u32; n];
        for (pos, gid) in nl.topo().iter().enumerate() {
            topo_pos[gid.index()] = pos as u32;
        }
        let mut obs_mark = vec![false; n];
        for net in observed {
            obs_mark[net.index()] = true;
        }
        ConeEngine {
            fanout,
            topo_pos,
            obs_mark,
        }
    }

    fn cone(&self, net: NetId, scratch: &mut Scratch) -> Cone {
        scratch.visit_epoch += 1;
        let epoch = scratch.visit_epoch;
        let source = net.index();
        scratch.visited[source] = epoch;
        let mut stack = vec![source];
        let mut members: Vec<u32> = Vec::new();
        while let Some(n) = stack.pop() {
            for &g in &self.fanout[n] {
                if scratch.visited[g as usize] != epoch {
                    scratch.visited[g as usize] = epoch;
                    members.push(g);
                    stack.push(g as usize);
                }
            }
        }
        members.sort_unstable_by_key(|&g| self.topo_pos[g as usize]);
        let mut obs: Vec<u32> = Vec::new();
        if self.obs_mark[source] {
            obs.push(source as u32);
        }
        obs.extend(
            members
                .iter()
                .copied()
                .filter(|&g| self.obs_mark[g as usize]),
        );
        Cone {
            source,
            members,
            obs,
        }
    }

    /// Evaluates the faulty machine on one frame, restricted to the
    /// cone, and reports whether any observation point differs from the
    /// good machine. Bit-identical to a full `eval_comb` with the fault
    /// forced: nets outside the cone cannot change, so they read
    /// through to `good`.
    fn cone_differs(
        &self,
        nl: &Netlist,
        cone: &Cone,
        good: &[u64],
        stuck: u64,
        mask: u64,
        scratch: &mut Scratch,
    ) -> bool {
        scratch.epoch += 1;
        let epoch = scratch.epoch;
        scratch.stamp[cone.source] = epoch;
        scratch.val[cone.source] = stuck;
        #[inline]
        fn rd(scratch: &Scratch, good: &[u64], epoch: u64, i: usize) -> u64 {
            if scratch.stamp[i] == epoch {
                scratch.val[i]
            } else {
                good[i]
            }
        }
        for &g in &cone.members {
            let gate = nl.gate(GateId(g));
            let ins = &gate.inputs;
            let v = match gate.kind {
                GateKind::Buf => rd(scratch, good, epoch, ins[0].index()),
                GateKind::Not => !rd(scratch, good, epoch, ins[0].index()),
                GateKind::And => {
                    rd(scratch, good, epoch, ins[0].index())
                        & rd(scratch, good, epoch, ins[1].index())
                }
                GateKind::Or => {
                    rd(scratch, good, epoch, ins[0].index())
                        | rd(scratch, good, epoch, ins[1].index())
                }
                GateKind::Nand => {
                    !(rd(scratch, good, epoch, ins[0].index())
                        & rd(scratch, good, epoch, ins[1].index()))
                }
                GateKind::Nor => {
                    !(rd(scratch, good, epoch, ins[0].index())
                        | rd(scratch, good, epoch, ins[1].index()))
                }
                GateKind::Xor => {
                    rd(scratch, good, epoch, ins[0].index())
                        ^ rd(scratch, good, epoch, ins[1].index())
                }
                GateKind::Xnor => {
                    !(rd(scratch, good, epoch, ins[0].index())
                        ^ rd(scratch, good, epoch, ins[1].index()))
                }
                GateKind::Mux => {
                    let s = rd(scratch, good, epoch, ins[0].index());
                    (s & rd(scratch, good, epoch, ins[1].index()))
                        | (!s & rd(scratch, good, epoch, ins[2].index()))
                }
                GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. } => continue,
            };
            let i = g as usize;
            scratch.stamp[i] = epoch;
            scratch.val[i] = v;
        }
        // Only live pattern lanes may witness a detection: padding
        // lanes in a partially filled frame are masked out.
        cone.obs
            .iter()
            .any(|&o| (rd(scratch, good, epoch, o as usize) ^ good[o as usize]) & mask != 0)
    }
}

/// Grades `faults` against an input sequence (64 parallel sequences per
/// word). Detection = any primary output differs in any cycle.
pub fn seq_fault_sim(nl: &Netlist, faults: &[Fault], vectors: &[Vec<u64>]) -> FaultSimSummary {
    seq_fault_sim_opts(nl, faults, vectors, &ParallelOptions::default()).0
}

/// [`seq_fault_sim`] with engine options and run instrumentation.
pub fn seq_fault_sim_opts(
    nl: &Netlist,
    faults: &[Fault],
    vectors: &[Vec<u64>],
    opts: &ParallelOptions,
) -> (FaultSimSummary, GradeStats) {
    let observed: Vec<NetId> = nl.outputs().iter().map(|(_, n)| *n).collect();
    let initial = vec![0u64; nl.dffs().len()];
    seq_fault_sim_observed_opts(nl, faults, vectors, &initial, &observed, opts)
}

/// Sequence-based grading with an explicit observation set and initial
/// state: the BIST instrument. `vectors[t]` drives the primary inputs at
/// cycle `t`; detection = any observed net differs in any cycle.
pub fn seq_fault_sim_observed(
    nl: &Netlist,
    faults: &[Fault],
    vectors: &[Vec<u64>],
    initial: &[u64],
    observed: &[NetId],
) -> FaultSimSummary {
    seq_fault_sim_observed_opts(
        nl,
        faults,
        vectors,
        initial,
        observed,
        &ParallelOptions::default(),
    )
    .0
}

/// [`seq_fault_sim_observed`] with engine options and run
/// instrumentation.
///
/// The faulty machine replays the whole sequence per fault (state
/// feedback defeats per-frame cone restriction), but the fault universe
/// shards across threads exactly like the combinational engine.
pub fn seq_fault_sim_observed_opts(
    nl: &Netlist,
    faults: &[Fault],
    vectors: &[Vec<u64>],
    initial: &[u64],
    observed: &[NetId],
    opts: &ParallelOptions,
) -> (FaultSimSummary, GradeStats) {
    seq_fault_sim_observed_masked_opts(nl, faults, vectors, initial, observed, u64::MAX, opts)
}

/// [`seq_fault_sim_observed_opts`] with an explicit lane mask: only the
/// lanes set in `lane_mask` carry real sequences. A caller packing
/// `k < 64` parallel sequences into the vector words must pass
/// [`lane_mask`]`(k)` so the zero-filled padding lanes cannot produce
/// phantom detections.
#[allow(clippy::too_many_arguments)]
pub fn seq_fault_sim_observed_masked_opts(
    nl: &Netlist,
    faults: &[Fault],
    vectors: &[Vec<u64>],
    initial: &[u64],
    observed: &[NetId],
    lane_mask: u64,
    opts: &ParallelOptions,
) -> (FaultSimSummary, GradeStats) {
    let good_span = hlstb_trace::span("fsim.good");
    let good_start = Instant::now();
    let obs: Vec<usize> = observed.iter().map(|n| n.index()).collect();
    let mut good_trace = Vec::with_capacity(vectors.len());
    let mut ff = initial.to_vec();
    for v in vectors {
        let values = eval_comb(nl, v, &ff, None);
        good_trace.push(obs.iter().map(|&i| values[i]).collect::<Vec<u64>>());
        ff = next_state(nl, &values);
    }
    let wall_good = good_start.elapsed();
    good_span.end();

    let fault_span = hlstb_trace::span("fsim.fault");
    let fault_start = Instant::now();
    let threads = opts.effective_threads(faults.len());
    let drop_detected = opts.drop_detected;
    let deadline = opts.deadline;
    let run_shard = |shard: &[Fault]| -> (BTreeSet<Fault>, GradeStats) {
        let mut detected = BTreeSet::new();
        let mut stats = GradeStats::default();
        for (fault_idx, &fault) in shard.iter().enumerate() {
            if fault_idx > 0 && fault_idx % DEADLINE_POLL_STRIDE == 0 && deadline.expired() {
                stats.timed_out = true;
                break;
            }
            let mut ff = initial.to_vec();
            pin_state(nl, fault, &mut ff);
            let mut hit = false;
            for (t, v) in vectors.iter().enumerate() {
                if hit && drop_detected {
                    stats.dropped += (vectors.len() - t) as u64;
                    break;
                }
                stats.fault_evals += 1;
                let values = eval_comb(nl, v, &ff, Some(forced(fault)));
                if !hit {
                    let differs = obs
                        .iter()
                        .zip(&good_trace[t])
                        .any(|(&i, &g)| (values[i] ^ g) & lane_mask != 0);
                    if differs {
                        hit = true;
                    }
                }
                ff = next_state(nl, &values);
                pin_state(nl, fault, &mut ff);
            }
            if hit {
                detected.insert(fault);
            }
        }
        (detected, stats)
    };
    let (detected, mut stats) = if threads == 1 {
        run_shard(faults)
    } else {
        let chunk = faults.len().div_ceil(threads);
        let mut merged = BTreeSet::new();
        let mut counts = GradeStats::default();
        std::thread::scope(|scope| {
            let run_shard = &run_shard;
            let handles: Vec<_> = faults
                .chunks(chunk)
                .map(|shard| scope.spawn(move || run_shard(shard)))
                .collect();
            for handle in handles {
                let (shard_detected, shard_counts) =
                    handle.join().expect("grading worker panicked");
                merged.extend(shard_detected);
                counts.merge_counts(&shard_counts);
            }
        });
        (merged, counts)
    };
    stats.faults = faults.len();
    stats.frames = vectors.len();
    stats.threads = threads;
    stats.wall_good = wall_good;
    stats.wall_fault = fault_start.elapsed();
    fault_span.end();
    stats.trace_bridge();
    (
        FaultSimSummary {
            detected,
            total: faults.len(),
        },
        stats,
    )
}

/// A stuck flip-flop output keeps its sampled state pinned as well.
fn pin_state(nl: &Netlist, fault: Fault, ff: &mut [u64]) {
    for (i, &f) in nl.dffs().iter().enumerate() {
        if f.net() == fault.net {
            ff[i] = if fault.stuck_at_one { u64::MAX } else { 0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::all_faults;
    use crate::net::{GateKind, NetlistBuilder};

    fn xor_tree() -> Netlist {
        let mut b = NetlistBuilder::new("xt");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let x1 = b.xor2(a, c);
        let x2 = b.xor2(x1, d);
        b.output("o", x2);
        b.finish().unwrap()
    }

    #[test]
    fn exhaustive_patterns_detect_everything_in_xor_tree() {
        let nl = xor_tree();
        let faults = all_faults(&nl);
        // 8 patterns packed into one frame.
        let mut pi = vec![0u64; 3];
        for k in 0..8u64 {
            for (i, word) in pi.iter_mut().enumerate() {
                if k >> i & 1 == 1 {
                    *word |= 1 << k;
                }
            }
        }
        let r = comb_fault_sim(&nl, &faults, &[TestFrame::new(pi, Vec::new())]);
        assert_eq!(r.detected.len(), r.total);
        assert_eq!(r.coverage_percent(), 100.0);
    }

    #[test]
    fn no_patterns_detect_nothing() {
        let nl = xor_tree();
        let faults = all_faults(&nl);
        let r = comb_fault_sim(&nl, &faults, &[]);
        assert!(r.detected.is_empty());
        assert_eq!(r.coverage_percent(), 0.0);
    }

    #[test]
    fn blocked_logic_is_undetectable() {
        // o = x AND 0: faults on x can never propagate.
        let mut b = NetlistBuilder::new("blk");
        let x = b.input("x");
        let z = b.zero();
        let g = b.and2(x, z);
        b.output("o", g);
        let nl = b.finish().unwrap();
        let faults = vec![Fault::sa0(x), Fault::sa1(x)];
        let pi = vec![0b01u64];
        let r = comb_fault_sim(&nl, &faults, &[TestFrame::new(pi, Vec::new())]);
        assert!(r.detected.is_empty());
    }

    #[test]
    fn sequential_detection_through_a_flop() {
        // in -> dff -> out: a stuck input shows up one cycle later.
        let mut b = NetlistBuilder::new("pipe");
        let x = b.input("x");
        let q = b.register(&[x], None, false);
        b.output("o", q[0]);
        let nl = b.finish().unwrap();
        let faults = vec![Fault::sa0(x)];
        let vectors = vec![vec![u64::MAX], vec![0]];
        let r = seq_fault_sim(&nl, &faults, &vectors);
        assert_eq!(r.detected.len(), 1);
    }

    #[test]
    fn scan_mode_observes_flop_inputs() {
        // x -> dff (scan) with no PO: only scan observation detects.
        let mut b = NetlistBuilder::new("scanobs");
        let x = b.input("x");
        let n = b.not(x);
        let _q = b.gate(GateKind::Dff { scan: true }, &[n]);
        b.output("dummy", x);
        let nl = b.finish().unwrap();
        let faults = vec![Fault::sa0(n), Fault::sa1(n)];
        let frames = [
            TestFrame::new(vec![0], vec![0]),
            TestFrame::new(vec![u64::MAX], vec![0]),
        ];
        let r = comb_fault_sim(&nl, &faults, &frames);
        assert_eq!(r.detected.len(), 2);
    }

    #[test]
    fn stuck_flop_output_corrupts_state() {
        let mut b = NetlistBuilder::new("st");
        let x = b.input("x");
        let q = b.register(&[x], None, false);
        b.output("o", q[0]);
        let nl = b.finish().unwrap();
        let ff_net = nl.dffs()[0].net();
        let faults = vec![Fault::sa1(ff_net)];
        // Good machine: out = delayed x = 0,0; faulty: 1,1.
        let vectors = vec![vec![0u64], vec![0u64]];
        let r = seq_fault_sim(&nl, &faults, &vectors);
        assert_eq!(r.detected.len(), 1);
    }

    /// A multi-level circuit with reconvergence, flops, and a mux, used
    /// to cross-check the cone engine against every option combination.
    fn mixed_circuit() -> Netlist {
        let mut b = NetlistBuilder::new("mix");
        let a = b.inputs("a", 3);
        let c = b.inputs("b", 3);
        let (s, co) = b.ripple_add(&a, &c);
        let n = b.not(s[0]);
        let m = b.gate(GateKind::Mux, &[co, n, s[1]]);
        let q = b.register(&[m, s[2]], None, true);
        b.output("o", q[0]);
        b.output("p", m);
        b.finish().unwrap()
    }

    fn some_frames() -> Vec<TestFrame> {
        (0..4u64)
            .map(|k| {
                TestFrame::new(
                    (0..6)
                        .map(|i| 0x9e37_79b9_7f4a_7c15u64.rotate_left((k * 7 + i) as u32))
                        .collect(),
                    Vec::new(),
                )
            })
            .collect()
    }

    #[test]
    fn engine_options_never_change_the_result() {
        let nl = mixed_circuit();
        let faults = all_faults(&nl);
        let frames = some_frames();
        let baseline = comb_fault_sim(&nl, &faults, &frames);
        for threads in [1, 2, 4] {
            for drop_detected in [false, true] {
                // Gate disabled: the point is to exercise the sharded
                // path even on this tiny universe.
                let opts = ParallelOptions {
                    threads,
                    drop_detected,
                    ..ParallelOptions::with_threads_ungated(1)
                };
                let (r, stats) = comb_fault_sim_opts(&nl, &faults, &frames, &opts);
                assert_eq!(r, baseline, "threads={threads} drop={drop_detected}");
                assert_eq!(stats.faults, faults.len());
                assert_eq!(stats.frames, frames.len());
            }
        }
    }

    #[test]
    fn expired_deadline_truncates_large_universes_but_stays_deterministic() {
        use crate::deadline::Deadline;
        let nl = mixed_circuit();
        // Inflate the universe past one poll stride by repeating the
        // collapsed list; detection is idempotent so only the work
        // changes.
        let base = all_faults(&nl);
        let faults: Vec<Fault> = base
            .iter()
            .cycle()
            .take(DEADLINE_POLL_STRIDE * 3)
            .copied()
            .collect();
        let frames = some_frames();
        let opts = ParallelOptions {
            deadline: Deadline::after(std::time::Duration::ZERO),
            ..ParallelOptions::default()
        };
        let (r1, s1) = comb_fault_sim_opts(&nl, &faults, &frames, &opts);
        let (r2, s2) = comb_fault_sim_opts(&nl, &faults, &frames, &opts);
        assert!(s1.timed_out);
        assert_eq!(r1, r2);
        assert_eq!(s1.fault_evals, s2.fault_evals);
        // Only the first poll stride was graded.
        let full = comb_fault_sim(&nl, &faults, &frames);
        assert!(r1.detected.len() <= full.detected.len());
    }

    #[test]
    fn seq_engine_options_never_change_the_result() {
        let nl = mixed_circuit();
        let faults = all_faults(&nl);
        let vectors: Vec<Vec<u64>> = (0..5u64)
            .map(|k| {
                (0..6)
                    .map(|i| (k * 6 + i).wrapping_mul(0x2545_f491_4f6c_dd1d))
                    .collect()
            })
            .collect();
        let baseline = seq_fault_sim(&nl, &faults, &vectors);
        for threads in [1, 3] {
            let opts = ParallelOptions {
                threads,
                drop_detected: true,
                ..ParallelOptions::with_threads_ungated(1)
            };
            let (r, _) = seq_fault_sim_opts(&nl, &faults, &vectors, &opts);
            assert_eq!(r, baseline, "threads={threads}");
        }
    }

    #[test]
    fn dropping_skips_work_but_not_detections() {
        let nl = mixed_circuit();
        let faults = all_faults(&nl);
        let frames = some_frames();
        let (kept, s_keep) = comb_fault_sim_opts(
            &nl,
            &faults,
            &frames,
            &ParallelOptions {
                drop_detected: false,
                ..ParallelOptions::default()
            },
        );
        let (dropped, s_drop) =
            comb_fault_sim_opts(&nl, &faults, &frames, &ParallelOptions::default());
        assert_eq!(kept, dropped);
        assert!(s_drop.dropped > 0, "some fault should be dropped: {s_drop}");
        assert!(
            s_drop.fault_evals < s_keep.fault_evals,
            "dropping must save evaluations ({} vs {})",
            s_drop.fault_evals,
            s_keep.fault_evals
        );
    }

    /// Satellite regression: 65 real patterns graded with a tail-lane
    /// mask must detect exactly what 128 patterns detect when the 63
    /// padding lanes replicate a real pattern (explicit don't-cares).
    /// Before the mask existed, whatever garbage sat in the padding
    /// lanes contributed phantom detections.
    #[test]
    fn tail_lane_masking_matches_explicit_truncation() {
        let nl = mixed_circuit();
        let faults = all_faults(&nl);
        let full: Vec<u64> = (0..6)
            .map(|i| 0xdead_beef_1996_0d0cu64.rotate_left(i * 9))
            .collect();
        let tail: Vec<u64> = (0..6)
            .map(|i| 0x0123_4567_89ab_cdefu64.rotate_left(i * 5))
            .collect();
        // 65 patterns: one full frame plus a frame with one live lane.
        let masked = vec![
            TestFrame::new(full.clone(), Vec::new()),
            TestFrame::with_lanes(tail.clone(), Vec::new(), 1),
        ];
        // 128 patterns whose last 63 are don't-cares: the tail frame's
        // lane 0 broadcast across the whole word. Duplicate patterns
        // cannot add detections, so the two runs must agree.
        let broadcast: Vec<u64> = tail
            .iter()
            .map(|w| if w & 1 == 1 { u64::MAX } else { 0 })
            .collect();
        let padded = vec![
            TestFrame::new(full, Vec::new()),
            TestFrame::new(broadcast, Vec::new()),
        ];
        let want = comb_fault_sim(&nl, &faults, &padded);
        let got = comb_fault_sim(&nl, &faults, &masked);
        assert_eq!(got.detected, want.detected, "reference engine");
        for width in crate::word::WordWidth::ALL {
            let opts = ParallelOptions::soa(width);
            let (got_soa, _) = comb_fault_sim_opts(&nl, &faults, &masked, &opts);
            assert_eq!(got_soa.detected, want.detected, "soa width {width}");
        }
    }

    /// Satellite regression: the deadline poll stride is re-derived in
    /// fault-eval units per word width, so a zero-budget run grades
    /// exactly one stride's worth of faults — deterministically — at
    /// 64, 256, and 512-wide words.
    #[test]
    fn zero_budget_grades_one_stride_at_every_width() {
        use crate::deadline::Deadline;
        let mut b = NetlistBuilder::new("wide");
        let a = b.inputs("a", 8);
        let c = b.inputs("b", 8);
        let (s, co) = b.ripple_add(&a, &c);
        b.outputs("s", &s);
        b.output("co", co);
        let nl = b.finish().unwrap();
        let faults = all_faults(&nl);
        let frames = some_frames_for(&nl, 16);
        for width in crate::word::WordWidth::ALL {
            let lanes = width.lanes();
            let stride = deadline_poll_stride(lanes);
            assert!(faults.len() > stride, "universe must overflow a stride");
            let opts = ParallelOptions {
                deadline: Deadline::after(std::time::Duration::ZERO),
                ..ParallelOptions::soa(width)
            };
            let (r1, s1) = comb_fault_sim_opts(&nl, &faults, &frames, &opts);
            let (r2, s2) = comb_fault_sim_opts(&nl, &faults, &frames, &opts);
            assert!(s1.timed_out, "width {width}");
            assert_eq!(r1, r2, "width {width}");
            assert_eq!(s1.fault_evals, s2.fault_evals, "width {width}");
            // The work ledger identifies exactly how many faults were
            // graded before the cutoff: one poll stride.
            let graded =
                s1.unobservable + (s1.fault_evals + s1.screened + s1.dropped) / frames.len() as u64;
            assert_eq!(graded, stride as u64, "width {width}");
        }
    }

    fn some_frames_for(nl: &Netlist, count: usize) -> Vec<TestFrame> {
        (0..count as u64)
            .map(|k| {
                TestFrame::new(
                    (0..nl.inputs().len() as u64)
                        .map(|i| 0x9e37_79b9_7f4a_7c15u64.rotate_left((k * 13 + i) as u32))
                        .collect(),
                    Vec::new(),
                )
            })
            .collect()
    }

    /// A lane-masked sequential run must ignore detections that only
    /// occur in padding lanes.
    #[test]
    fn seq_lane_mask_suppresses_padding_detections() {
        let mut b = NetlistBuilder::new("seqmask");
        let x = b.input("x");
        let q = b.register(&[x], None, false);
        b.output("o", q[0]);
        let nl = b.finish().unwrap();
        let faults = vec![Fault::sa0(x)];
        let observed: Vec<NetId> = nl.outputs().iter().map(|(_, n)| *n).collect();
        let initial = vec![0u64; nl.dffs().len()];
        // Only lane 1 excites the fault; with lane 0 alone live the
        // fault must stay undetected.
        let vectors = vec![vec![0b10u64], vec![0]];
        let (one_lane, _) = seq_fault_sim_observed_masked_opts(
            &nl,
            &faults,
            &vectors,
            &initial,
            &observed,
            lane_mask(1),
            &ParallelOptions::default(),
        );
        assert!(one_lane.detected.is_empty());
        let (two_lanes, _) = seq_fault_sim_observed_masked_opts(
            &nl,
            &faults,
            &vectors,
            &initial,
            &observed,
            lane_mask(2),
            &ParallelOptions::default(),
        );
        assert_eq!(two_lanes.detected.len(), 1);
    }

    #[test]
    fn stats_account_for_every_fault_frame_pair() {
        let nl = mixed_circuit();
        let faults = all_faults(&nl);
        let frames = some_frames();
        let (_, s) = comb_fault_sim_opts(&nl, &faults, &frames, &ParallelOptions::default());
        let pairs = (s.faults as u64 - s.unobservable) * s.frames as u64;
        assert_eq!(s.fault_evals + s.screened + s.dropped, pairs);
    }
}
