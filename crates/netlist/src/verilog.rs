//! Structural Verilog export.
//!
//! Emits a flat gate-level module using `assign` statements for the
//! combinational gates and one clocked `always` block per flip-flop, so
//! any synthesized data path can be handed to external simulators or
//! commercial test tools for cross-checking.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::net::{GateKind, NetId, Netlist};

/// Verilog-2001 reserved words (the subset that could plausibly appear
/// as a net or port name). A sanitized identifier matching one of these
/// is renamed, never emitted bare.
const KEYWORDS: &[&str] = &[
    "always",
    "and",
    "assign",
    "begin",
    "buf",
    "case",
    "casex",
    "casez",
    "default",
    "defparam",
    "disable",
    "edge",
    "else",
    "end",
    "endcase",
    "endfunction",
    "endgenerate",
    "endmodule",
    "endtask",
    "for",
    "force",
    "forever",
    "function",
    "generate",
    "genvar",
    "if",
    "initial",
    "inout",
    "input",
    "integer",
    "localparam",
    "module",
    "nand",
    "negedge",
    "nor",
    "not",
    "or",
    "output",
    "parameter",
    "posedge",
    "real",
    "reg",
    "repeat",
    "signed",
    "task",
    "time",
    "tri",
    "wait",
    "while",
    "wire",
    "xnor",
    "xor",
];

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    if out.is_empty() {
        out.push('n');
    }
    if KEYWORDS.contains(&out.as_str()) {
        out.push('_');
    }
    out
}

/// The per-module identifier table: sanitization maps distinct source
/// names onto one string (`a[3]` and `a_3_` both sanitize to `a_3_`),
/// and a sanitized name can shadow the `w{id}` fallback of an unnamed
/// net, so identifiers are uniqued per netlist. First claimant keeps
/// the clean name; later collisions get a `__{n}` suffix, which is
/// stable because nets are visited in id order.
struct NameTable {
    by_net: Vec<String>,
    outputs: Vec<String>,
}

impl NameTable {
    fn new(nl: &Netlist) -> NameTable {
        let mut taken: HashSet<String> = HashSet::new();
        // Fixed ports are claimed first so no net can shadow them.
        taken.insert("clk".into());
        taken.insert("rst".into());
        let unique = |want: String, taken: &mut HashSet<String>| -> String {
            if taken.insert(want.clone()) {
                return want;
            }
            for n in 2usize.. {
                let candidate = format!("{want}__{n}");
                if taken.insert(candidate.clone()) {
                    return candidate;
                }
            }
            unreachable!("some suffix is always free");
        };
        let by_net: Vec<String> = nl
            .gates()
            .map(|(id, _)| {
                let want = match nl.net_name(id.net()) {
                    Some(n) => sanitize(n),
                    None => format!("w{}", id.net().0),
                };
                unique(want, &mut taken)
            })
            .collect();
        // Output ports are identifiers of their own. A port whose
        // sanitized name is exactly its source net's identifier shares
        // it (the historical "same name, no assign" form) — but only
        // once; any further clash is renamed like everything else.
        let mut port_taken: HashSet<String> = HashSet::new();
        let outputs: Vec<String> = nl
            .outputs()
            .iter()
            .map(|(name, net)| {
                let want = sanitize(name);
                if by_net[net.index()] == want && port_taken.insert(want.clone()) {
                    want
                } else {
                    let n = unique(want, &mut taken);
                    port_taken.insert(n.clone());
                    n
                }
            })
            .collect();
        NameTable { by_net, outputs }
    }

    fn wire(&self, net: NetId) -> &str {
        &self.by_net[net.index()]
    }
}

/// Renders the netlist as a single structural Verilog module.
///
/// Primary inputs become module inputs, declared outputs become module
/// outputs, flip-flops are positive-edge clocked by an added `clk` port
/// (with an added synchronous `rst` clearing them, matching the
/// simulators' all-zero initial state). Scan flops are emitted like
/// plain flops with a `// scan` marker — chain stitching is outside the
/// model, as documented on [`GateKind::Dff`].
pub fn to_verilog(nl: &Netlist) -> String {
    let mut v = String::new();
    let names = NameTable::new(nl);
    let module = sanitize(nl.name());
    let mut ports: Vec<String> = vec!["clk".into(), "rst".into()];
    ports.extend(nl.inputs().iter().map(|&n| names.wire(n).to_string()));
    ports.extend(names.outputs.iter().cloned());
    let _ = writeln!(v, "module {module}(");
    let _ = writeln!(v, "  {}", ports.join(",\n  "));
    let _ = writeln!(v, ");");
    let _ = writeln!(v, "  input clk, rst;");
    for &n in nl.inputs() {
        let _ = writeln!(v, "  input {};", names.wire(n));
    }
    for name in &names.outputs {
        let _ = writeln!(v, "  output {name};");
    }
    // Wire declarations for every internal net.
    for (id, g) in nl.gates() {
        match g.kind {
            GateKind::Input => {}
            GateKind::Dff { .. } => {
                let _ = writeln!(v, "  reg {};", names.wire(id.net()));
            }
            _ => {
                let _ = writeln!(v, "  wire {};", names.wire(id.net()));
            }
        }
    }
    // Combinational gates.
    for (id, g) in nl.gates() {
        let o = names.wire(id.net());
        let i = |k: usize| names.wire(g.inputs[k]);
        let rhs = match g.kind {
            GateKind::Input | GateKind::Dff { .. } => continue,
            GateKind::Const(c) => format!("1'b{}", u8::from(c)),
            GateKind::Buf => i(0).to_string(),
            GateKind::Not => format!("~{}", i(0)),
            GateKind::And => format!("{} & {}", i(0), i(1)),
            GateKind::Or => format!("{} | {}", i(0), i(1)),
            GateKind::Nand => format!("~({} & {})", i(0), i(1)),
            GateKind::Nor => format!("~({} | {})", i(0), i(1)),
            GateKind::Xor => format!("{} ^ {}", i(0), i(1)),
            GateKind::Xnor => format!("~({} ^ {})", i(0), i(1)),
            GateKind::Mux => format!("{} ? {} : {}", i(0), i(1), i(2)),
        };
        let _ = writeln!(v, "  assign {o} = {rhs};");
    }
    // Flops.
    for &f in nl.dffs() {
        let g = nl.gate(f);
        let q = names.wire(f.net());
        let d = names.wire(g.inputs[0]);
        let scan = matches!(g.kind, GateKind::Dff { scan: true });
        let marker = if scan { " // scan" } else { "" };
        let _ = writeln!(
            v,
            "  always @(posedge clk) {q} <= rst ? 1'b0 : {d};{marker}"
        );
    }
    // Output connections.
    for (o, (_, net)) in names.outputs.iter().zip(nl.outputs()) {
        let src = names.wire(*net);
        if o != src {
            let _ = writeln!(v, "  assign {o} = {src};");
        }
    }
    let _ = writeln!(v, "endmodule");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("samp-le");
        let a = b.inputs("a", 2);
        let c = b.inputs("b", 2);
        let (s, co) = b.ripple_add(&a, &c);
        let q = b.register(&s, None, true);
        b.outputs("q", &q);
        b.output("co", co);
        b.finish().unwrap()
    }

    #[test]
    fn emits_balanced_module() {
        let v = to_verilog(&sample());
        assert!(v.starts_with("module samp_le("));
        assert!(v.trim_end().ends_with("endmodule"));
        assert_eq!(v.matches("always @(posedge clk)").count(), 2);
        assert_eq!(v.matches("// scan").count(), 2);
    }

    #[test]
    fn every_gate_output_is_driven_once() {
        let nl = sample();
        let v = to_verilog(&nl);
        let names = NameTable::new(&nl);
        for (id, g) in nl.gates() {
            if matches!(g.kind, GateKind::Input) {
                continue;
            }
            let w = names.wire(id.net());
            let drives = v
                .lines()
                .filter(|l| {
                    l.contains(&format!("assign {w} ="))
                        || l.contains(&format!("always @(posedge clk) {w} <="))
                })
                .count();
            assert_eq!(drives, 1, "{w} driven {drives} times");
        }
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a[3]"), "a_3_");
        assert_eq!(sanitize("9lives"), "n9lives");
        assert_eq!(sanitize("ok_name"), "ok_name");
        // Keywords are escaped with a trailing underscore; an empty
        // name still yields an identifier.
        assert_eq!(sanitize("reg"), "reg_");
        assert_eq!(sanitize("module"), "module_");
        assert_eq!(sanitize(""), "n");
    }

    /// Collects every declared identifier in the emitted module and
    /// fails on duplicates or keywords — the re-parsing check of the
    /// sanitization satellite.
    fn declared_identifiers(v: &str) -> Vec<String> {
        let mut ids = Vec::new();
        for line in v.lines() {
            let line = line.trim();
            for prefix in ["wire ", "reg ", "input ", "output "] {
                if let Some(rest) = line.strip_prefix(prefix) {
                    for id in rest.trim_end_matches(';').split(',') {
                        ids.push(id.trim().to_string());
                    }
                }
            }
        }
        ids
    }

    /// Satellite regression: hostile source names — Verilog keywords,
    /// names that collide after sanitization, and names shadowing the
    /// unnamed-net fallback — must export as unique non-keyword
    /// identifiers.
    #[test]
    fn hostile_names_export_without_duplicates() {
        let mut b = NetlistBuilder::new("module");
        let kw = b.input("reg"); // keyword
        let br = b.input("a[3]"); // sanitizes to a_3_
        let us = b.input("a_3_"); // collides with the sanitized form
        let sh = b.input("w4"); // shadows the w{id} fallback name
        let x = b.and2(kw, br); // unnamed: wants "w4"
        let y = b.or2(us, sh);
        let z = b.xor2(x, y);
        b.output("output", z); // keyword as output port
        b.output("wire", x); // another keyword port
        let nl = b.finish().unwrap();
        let v = to_verilog(&nl);
        let ids = declared_identifiers(&v);
        let mut seen = std::collections::HashSet::new();
        for id in &ids {
            assert!(!id.is_empty());
            assert!(
                !KEYWORDS.contains(&id.as_str()),
                "keyword {id} leaked into declarations:\n{v}"
            );
            assert!(seen.insert(id.clone()), "duplicate identifier {id}:\n{v}");
        }
        // Every source net got an identifier ("clk"/"rst" are extra).
        assert_eq!(ids.len(), nl.num_nets() + nl.outputs().len() + 2);
    }

    #[test]
    fn datapath_exports_cleanly() {
        // The expanded diffeq data path must export without panicking
        // and contain a mux-heavy structure.
        let v = to_verilog(&sample());
        assert!(v.contains("assign"));
    }
}
