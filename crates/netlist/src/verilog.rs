//! Structural Verilog export.
//!
//! Emits a flat gate-level module using `assign` statements for the
//! combinational gates and one clocked `always` block per flip-flop, so
//! any synthesized data path can be handed to external simulators or
//! commercial test tools for cross-checking.

use std::fmt::Write as _;

use crate::net::{GateKind, NetId, Netlist};

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

fn wire(nl: &Netlist, net: NetId) -> String {
    match nl.net_name(net) {
        Some(n) => sanitize(n),
        None => format!("w{}", net.0),
    }
}

/// Renders the netlist as a single structural Verilog module.
///
/// Primary inputs become module inputs, declared outputs become module
/// outputs, flip-flops are positive-edge clocked by an added `clk` port
/// (with an added synchronous `rst` clearing them, matching the
/// simulators' all-zero initial state). Scan flops are emitted like
/// plain flops with a `// scan` marker — chain stitching is outside the
/// model, as documented on [`GateKind::Dff`].
pub fn to_verilog(nl: &Netlist) -> String {
    let mut v = String::new();
    let module = sanitize(nl.name());
    let mut ports: Vec<String> = vec!["clk".into(), "rst".into()];
    ports.extend(nl.inputs().iter().map(|&n| wire(nl, n)));
    ports.extend(nl.outputs().iter().map(|(name, _)| sanitize(name)));
    let _ = writeln!(v, "module {module}(");
    let _ = writeln!(v, "  {}", ports.join(",\n  "));
    let _ = writeln!(v, ");");
    let _ = writeln!(v, "  input clk, rst;");
    for &n in nl.inputs() {
        let _ = writeln!(v, "  input {};", wire(nl, n));
    }
    for (name, _) in nl.outputs() {
        let _ = writeln!(v, "  output {};", sanitize(name));
    }
    // Wire declarations for every internal net.
    for (id, g) in nl.gates() {
        match g.kind {
            GateKind::Input => {}
            GateKind::Dff { .. } => {
                let _ = writeln!(v, "  reg {};", wire(nl, id.net()));
            }
            _ => {
                let _ = writeln!(v, "  wire {};", wire(nl, id.net()));
            }
        }
    }
    // Combinational gates.
    for (id, g) in nl.gates() {
        let o = wire(nl, id.net());
        let i = |k: usize| wire(nl, g.inputs[k]);
        let rhs = match g.kind {
            GateKind::Input | GateKind::Dff { .. } => continue,
            GateKind::Const(c) => format!("1'b{}", u8::from(c)),
            GateKind::Buf => i(0),
            GateKind::Not => format!("~{}", i(0)),
            GateKind::And => format!("{} & {}", i(0), i(1)),
            GateKind::Or => format!("{} | {}", i(0), i(1)),
            GateKind::Nand => format!("~({} & {})", i(0), i(1)),
            GateKind::Nor => format!("~({} | {})", i(0), i(1)),
            GateKind::Xor => format!("{} ^ {}", i(0), i(1)),
            GateKind::Xnor => format!("~({} ^ {})", i(0), i(1)),
            GateKind::Mux => format!("{} ? {} : {}", i(0), i(1), i(2)),
        };
        let _ = writeln!(v, "  assign {o} = {rhs};");
    }
    // Flops.
    for &f in nl.dffs() {
        let g = nl.gate(f);
        let q = wire(nl, f.net());
        let d = wire(nl, g.inputs[0]);
        let scan = matches!(g.kind, GateKind::Dff { scan: true });
        let marker = if scan { " // scan" } else { "" };
        let _ = writeln!(
            v,
            "  always @(posedge clk) {q} <= rst ? 1'b0 : {d};{marker}"
        );
    }
    // Output connections.
    for (name, net) in nl.outputs() {
        let o = sanitize(name);
        let src = wire(nl, *net);
        if o != src {
            let _ = writeln!(v, "  assign {o} = {src};");
        }
    }
    let _ = writeln!(v, "endmodule");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new("samp-le");
        let a = b.inputs("a", 2);
        let c = b.inputs("b", 2);
        let (s, co) = b.ripple_add(&a, &c);
        let q = b.register(&s, None, true);
        b.outputs("q", &q);
        b.output("co", co);
        b.finish().unwrap()
    }

    #[test]
    fn emits_balanced_module() {
        let v = to_verilog(&sample());
        assert!(v.starts_with("module samp_le("));
        assert!(v.trim_end().ends_with("endmodule"));
        assert_eq!(v.matches("always @(posedge clk)").count(), 2);
        assert_eq!(v.matches("// scan").count(), 2);
    }

    #[test]
    fn every_gate_output_is_driven_once() {
        let nl = sample();
        let v = to_verilog(&nl);
        for (id, g) in nl.gates() {
            if matches!(g.kind, GateKind::Input) {
                continue;
            }
            let w = wire(&nl, id.net());
            let drives = v
                .lines()
                .filter(|l| {
                    l.contains(&format!("assign {w} ="))
                        || l.contains(&format!("always @(posedge clk) {w} <="))
                })
                .count();
            assert_eq!(drives, 1, "{w} driven {drives} times");
        }
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a[3]"), "a_3_");
        assert_eq!(sanitize("9lives"), "n9lives");
        assert_eq!(sanitize("ok_name"), "ok_name");
    }

    #[test]
    fn datapath_exports_cleanly() {
        // The expanded diffeq data path must export without panicking
        // and contain a mux-heavy structure.
        let v = to_verilog(&sample());
        assert!(v.contains("assign"));
    }
}
