//! Roth-style 5-valued logic for deterministic test generation.
//!
//! `D` means good-machine 1 / faulty-machine 0, `Db` the reverse. Values
//! with only one side known are pessimistically widened to `X`, which
//! keeps the calculus sound (a found test is a real test) at the price of
//! possibly exploring more decisions.

/// One of the five composite values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum V5 {
    /// 0 in both machines.
    Zero,
    /// 1 in both machines.
    One,
    /// Unknown.
    X,
    /// Good 1, faulty 0.
    D,
    /// Good 0, faulty 1.
    Db,
}

impl V5 {
    /// Builds from separate good/faulty components, widening one-sided
    /// knowledge to `X`.
    pub fn from_pair(good: Option<bool>, faulty: Option<bool>) -> V5 {
        match (good, faulty) {
            (Some(true), Some(true)) => V5::One,
            (Some(false), Some(false)) => V5::Zero,
            (Some(true), Some(false)) => V5::D,
            (Some(false), Some(true)) => V5::Db,
            _ => V5::X,
        }
    }

    /// The good-machine component.
    pub fn good(self) -> Option<bool> {
        match self {
            V5::Zero | V5::Db => Some(false),
            V5::One | V5::D => Some(true),
            V5::X => None,
        }
    }

    /// The faulty-machine component.
    pub fn faulty(self) -> Option<bool> {
        match self {
            V5::Zero | V5::D => Some(false),
            V5::One | V5::Db => Some(true),
            V5::X => None,
        }
    }

    /// Whether the value carries a fault effect.
    pub fn is_fault_effect(self) -> bool {
        matches!(self, V5::D | V5::Db)
    }

    /// A plain binary value.
    pub fn of_bool(b: bool) -> V5 {
        if b {
            V5::One
        } else {
            V5::Zero
        }
    }

    /// Logical complement.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> V5 {
        match self {
            V5::Zero => V5::One,
            V5::One => V5::Zero,
            V5::X => V5::X,
            V5::D => V5::Db,
            V5::Db => V5::D,
        }
    }

    /// 5-valued AND.
    pub fn and(self, other: V5) -> V5 {
        V5::from_pair(
            and3(self.good(), other.good()),
            and3(self.faulty(), other.faulty()),
        )
    }

    /// 5-valued OR.
    pub fn or(self, other: V5) -> V5 {
        V5::from_pair(
            or3(self.good(), other.good()),
            or3(self.faulty(), other.faulty()),
        )
    }

    /// 5-valued XOR.
    pub fn xor(self, other: V5) -> V5 {
        V5::from_pair(
            xor3(self.good(), other.good()),
            xor3(self.faulty(), other.faulty()),
        )
    }

    /// 5-valued 2:1 mux (`sel ? a : b`).
    pub fn mux(sel: V5, a: V5, b: V5) -> V5 {
        V5::from_pair(
            mux3(sel.good(), a.good(), b.good()),
            mux3(sel.faulty(), a.faulty(), b.faulty()),
        )
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn xor3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x != y),
        _ => None,
    }
}

fn mux3(sel: Option<bool>, a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match sel {
        Some(true) => a,
        Some(false) => b,
        None => match (a, b) {
            (Some(x), Some(y)) if x == y => Some(x),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values_dominate_x_and_d() {
        assert_eq!(V5::Zero.and(V5::X), V5::Zero);
        assert_eq!(V5::Zero.and(V5::D), V5::Zero);
        assert_eq!(V5::One.or(V5::Db), V5::One);
    }

    #[test]
    fn d_propagates_through_noncontrolling() {
        assert_eq!(V5::D.and(V5::One), V5::D);
        assert_eq!(V5::Db.or(V5::Zero), V5::Db);
        assert_eq!(V5::D.xor(V5::Zero), V5::D);
        assert_eq!(V5::D.xor(V5::One), V5::Db);
    }

    #[test]
    fn d_meets_dbar() {
        assert_eq!(V5::D.and(V5::Db), V5::Zero);
        assert_eq!(V5::D.or(V5::Db), V5::One);
        assert_eq!(V5::D.xor(V5::D), V5::Zero);
    }

    #[test]
    fn not_flips_d() {
        assert_eq!(V5::D.not(), V5::Db);
        assert_eq!(V5::X.not(), V5::X);
    }

    #[test]
    fn mux_with_unknown_select_agreement() {
        assert_eq!(V5::mux(V5::X, V5::One, V5::One), V5::One);
        assert_eq!(V5::mux(V5::X, V5::One, V5::Zero), V5::X);
        assert_eq!(V5::mux(V5::One, V5::D, V5::Zero), V5::D);
        assert_eq!(V5::mux(V5::Zero, V5::D, V5::Db), V5::Db);
    }

    #[test]
    fn mixed_pairs_widen_to_x() {
        assert_eq!(V5::from_pair(Some(true), None), V5::X);
        assert_eq!(V5::from_pair(None, Some(false)), V5::X);
    }

    #[test]
    fn d_through_mux_select() {
        // A fault effect on the select with equal data stays hidden.
        assert_eq!(V5::mux(V5::D, V5::One, V5::One), V5::One);
        // With differing data it shows.
        assert_eq!(V5::mux(V5::D, V5::One, V5::Zero), V5::D);
    }
}
