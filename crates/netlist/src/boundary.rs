//! Simplified IEEE 1149.1-style boundary scan wrapping (survey §4.2:
//! "testability structures, such as an IEEE 1149.1 boundary scan cell,
//! can be directly synthesized").
//!
//! Each primary input gets a BC-1-style cell — a shift flop plus an
//! output mux that substitutes the cell's held value for the pin in test
//! mode — and each primary output gets an observe-and-shift cell. The
//! cells form one chain (`bs_in` → input cells → output cells →
//! `bs_out`) shifted when `bs_shift` is high. The full TAP controller is
//! out of scope; `bs_mode`/`bs_shift` are direct pins, which is the
//! "synthesize the cell, wire the protocol later" flow the survey
//! describes.

use crate::net::{GateKind, NetId, Netlist, NetlistBuilder};

/// A boundary-scan-wrapped netlist.
#[derive(Debug, Clone)]
pub struct BoundaryScanDesign {
    /// The wrapped netlist: adds `bs_mode`, `bs_shift`, `bs_in` inputs
    /// and a `bs_out` output.
    pub netlist: Netlist,
    /// Names of the wrapped pins in chain order.
    pub chain: Vec<String>,
}

/// Wraps every primary input and output of `nl` with boundary cells.
pub fn wrap_boundary_scan(nl: &Netlist) -> BoundaryScanDesign {
    // Two-phase construction: boundary cells and core flops first, then
    // the combinational core in topological order.
    let mut b = NetlistBuilder::new(format!("{}_bs", nl.name()));
    let bs_mode = b.input("bs_mode");
    let bs_shift = b.input("bs_shift");
    let bs_in = b.input("bs_in");
    let mut chain = Vec::new();
    let mut prev = bs_in;
    let mut core_input_net: Vec<NetId> = Vec::new();
    for &pin in nl.inputs() {
        let name = nl.net_name(pin).unwrap_or("pin").to_string();
        let ext = b.input(name.clone());
        let ff = b.dff_uninit(false);
        let d = b.gate(GateKind::Mux, &[bs_shift, prev, ext]);
        b.set_dff_input(ff, d);
        let to_core = b.gate(GateKind::Mux, &[bs_mode, ff, ext]);
        core_input_net.push(to_core);
        chain.push(name);
        prev = ff;
    }
    // Phase 1: reserve all core flops.
    let mut map: Vec<NetId> = vec![NetId(u32::MAX); nl.num_gates()];
    for (id, g) in nl.gates() {
        if let GateKind::Dff { scan } = g.kind {
            map[id.index()] = b.dff_uninit(scan);
        }
    }
    // Phase 2: sources and topological combinational gates.
    let mut input_idx = 0usize;
    for (id, g) in nl.gates() {
        match g.kind {
            GateKind::Input => {
                map[id.index()] = core_input_net[input_idx];
                input_idx += 1;
            }
            GateKind::Const(c) => {
                map[id.index()] = if c { b.one() } else { b.zero() };
            }
            _ => {}
        }
    }
    for &gid in nl.topo() {
        let g = nl.gate(gid);
        let inputs: Vec<NetId> = g.inputs.iter().map(|n| map[n.index()]).collect();
        map[gid.index()] = b.gate(g.kind, &inputs);
    }
    // Phase 3: rewire core flop inputs.
    for (id, g) in nl.gates() {
        if g.kind.is_dff() {
            b.set_dff_input(map[id.index()], map[g.inputs[0].index()]);
        }
    }
    // Output cells: capture the core output, shift on bs_shift; the
    // external pin keeps the functional value (observe-only cell).
    for (name, net) in nl.outputs() {
        let core = map[net.index()];
        let ff = b.dff_uninit(false);
        let d = b.gate(GateKind::Mux, &[bs_shift, prev, core]);
        b.set_dff_input(ff, d);
        b.output(name.clone(), core);
        chain.push(name.clone());
        prev = ff;
    }
    b.output("bs_out", prev);
    let netlist = b.finish().expect("boundary wrapping preserves validity");
    BoundaryScanDesign { netlist, chain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetlistBuilder;
    use crate::sim::{eval_comb, next_state, output_values};

    fn core() -> Netlist {
        let mut b = NetlistBuilder::new("core");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.xor2(a, c);
        let q = b.register(&[x], None, false);
        b.output("o", q[0]);
        b.finish().unwrap()
    }

    #[test]
    fn chain_covers_all_pins() {
        let bs = wrap_boundary_scan(&core());
        assert_eq!(bs.chain, vec!["a", "b", "o"]);
        assert!(bs.netlist.outputs().iter().any(|(n, _)| n == "bs_out"));
    }

    #[test]
    fn functional_mode_is_transparent() {
        let nl = core();
        let bs = wrap_boundary_scan(&nl);
        // Drive: bs_mode=0, bs_shift=0, bs_in=0, a, b.
        for pat in 0..4u64 {
            let a = pat & 1;
            let c = pat >> 1 & 1;
            let mut ff0 = vec![0u64; nl.dffs().len()];
            let v0 = eval_comb(&nl, &[a * u64::MAX, c * u64::MAX], &ff0, None);
            ff0 = next_state(&nl, &v0);
            let v1 = eval_comb(&nl, &[0, 0], &ff0, None);
            let expected = output_values(&nl, &v1)[0] & 1;

            let mut ffb = vec![0u64; bs.netlist.dffs().len()];
            let pi1 = vec![0, 0, 0, a * u64::MAX, c * u64::MAX];
            let w0 = eval_comb(&bs.netlist, &pi1, &ffb, None);
            ffb = next_state(&bs.netlist, &w0);
            let pi2 = vec![0, 0, 0, 0, 0];
            let w1 = eval_comb(&bs.netlist, &pi2, &ffb, None);
            let got = bs
                .netlist
                .outputs()
                .iter()
                .find(|(n, _)| n == "o")
                .map(|(_, net)| w1[net.index()] & 1)
                .unwrap();
            assert_eq!(got, expected, "pattern {pat}");
        }
    }

    #[test]
    fn shift_moves_bits_down_the_chain() {
        let bs = wrap_boundary_scan(&core());
        let n = bs.chain.len();
        // Shift a single 1 through: after n cycles it appears at bs_out.
        let mut ff = vec![0u64; bs.netlist.dffs().len()];
        let mut outs = Vec::new();
        for t in 0..2 * n {
            let bit = u64::from(t == 0) * u64::MAX;
            // bs_mode=1, bs_shift=1, bs_in=bit, a=b=0.
            let pi = vec![u64::MAX, u64::MAX, bit, 0, 0];
            let v = eval_comb(&bs.netlist, &pi, &ff, None);
            let bs_out = bs
                .netlist
                .outputs()
                .iter()
                .find(|(nm, _)| nm == "bs_out")
                .map(|(_, net)| v[net.index()] & 1)
                .unwrap();
            outs.push(bs_out);
            ff = next_state(&bs.netlist, &v);
        }
        // The injected 1 must appear exactly once at the chain output.
        assert_eq!(outs.iter().filter(|&&b| b == 1).count(), 1, "{outs:?}");
    }

    #[test]
    fn test_mode_injects_cell_values() {
        let bs = wrap_boundary_scan(&core());
        // Load the input cells by shifting [a_cell=1, b_cell=1, o_cell=0]
        // then switch to bs_mode=1 and check the core computes from the
        // cells, not the pins.
        let mut ff = vec![0u64; bs.netlist.dffs().len()];
        // Chain order a, b, o: to leave 1s in a,b shift in 0,1,1.
        for &bit in &[0u64, u64::MAX, u64::MAX] {
            let pi = vec![u64::MAX, u64::MAX, bit, 0, 0];
            let v = eval_comb(&bs.netlist, &pi, &ff, None);
            ff = next_state(&bs.netlist, &v);
        }
        // bs_mode=1, bs_shift=0; pins held at 0: core sees a=1, b=1.
        let pi = vec![u64::MAX, 0, 0, 0, 0];
        let v = eval_comb(&bs.netlist, &pi, &ff, None);
        ff = next_state(&bs.netlist, &v);
        let v2 = eval_comb(&bs.netlist, &pi, &ff, None);
        let o = bs
            .netlist
            .outputs()
            .iter()
            .find(|(nm, _)| nm == "o")
            .map(|(_, net)| v2[net.index()] & 1)
            .unwrap();
        // xor(1,1) = 0 delayed one cycle.
        assert_eq!(o, 0);
        let _ = v2;
    }
}
