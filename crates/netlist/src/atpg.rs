//! PODEM — path-oriented decision making — over the 5-valued calculus,
//! with effort accounting.
//!
//! The generator is exact for combinational (and full-scan) circuits:
//! a `Untestable` verdict means the fault is redundant. The effort
//! counters (decisions, backtracks, implications) are the measurement
//! the E1 experiment uses to validate the survey's §3.1 complexity
//! claim, and what makes "sequential ATPG got easier after DFT"
//! quantifiable throughout the workbench.

use std::collections::HashMap;

use crate::fault::Fault;
use crate::fsim::{comb_fault_sim_opts, ParallelOptions, TestFrame};
use crate::logic5::V5;
use crate::net::{GateId, GateKind, NetId, Netlist};
use crate::stats::GradeStats;

/// Which nets the generator may assign and where it may observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombView {
    /// Assignable nets (primary inputs and scan-flop outputs).
    pub assignable: Vec<NetId>,
    /// Observation nets (primary outputs and scan-flop data inputs).
    pub observed: Vec<NetId>,
}

impl CombView {
    /// The functional test view of a netlist: primary inputs plus
    /// scannable flop outputs are assignable; primary outputs plus
    /// scannable flop data inputs are observed. Non-scan flops remain
    /// uncontrollable (`X`) and unobserved — exactly what makes
    /// unscanned state elements hard for combinational ATPG.
    pub fn functional(nl: &Netlist) -> CombView {
        let mut assignable = nl.inputs().to_vec();
        let mut observed: Vec<NetId> = nl.outputs().iter().map(|(_, n)| *n).collect();
        for &f in &nl.scan_flops() {
            assignable.push(f.net());
            observed.push(nl.gate(f).inputs[0]);
        }
        CombView {
            assignable,
            observed,
        }
    }
}

/// Options for the PODEM search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtpgOptions {
    /// Abort a fault after this many backtracks.
    pub backtrack_limit: u64,
}

impl Default for AtpgOptions {
    fn default() -> Self {
        AtpgOptions {
            backtrack_limit: 10_000,
        }
    }
}

/// A partial input assignment that detects a fault.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TestCube {
    /// Net → value; unassigned nets are don't-cares.
    pub assignments: HashMap<NetId, bool>,
}

impl TestCube {
    /// Converts the cube into a broadcast [`TestFrame`] (don't-cares
    /// filled with 0), suitable for fault simulation.
    pub fn to_frame(&self, nl: &Netlist) -> TestFrame {
        let word = |net: NetId| -> u64 {
            match self.assignments.get(&net) {
                Some(true) => u64::MAX,
                _ => 0,
            }
        };
        TestFrame::new(
            nl.inputs().iter().map(|&n| word(n)).collect(),
            nl.dffs()
                .iter()
                .map(|&f| {
                    if matches!(nl.gate(f).kind, GateKind::Dff { scan: true }) {
                        word(f.net())
                    } else {
                        0
                    }
                })
                .collect(),
        )
    }
}

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultStatus {
    /// A test was found.
    Detected(TestCube),
    /// The search space was exhausted: the fault is untestable in this
    /// view (redundant, for full combinational views).
    Untestable,
    /// The backtrack limit was hit.
    Aborted,
}

/// Search-effort counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Effort {
    /// PI decisions made.
    pub decisions: u64,
    /// Backtracks (decision reversals).
    pub backtracks: u64,
    /// Full forward implication passes.
    pub implications: u64,
}

impl Effort {
    /// Adds another effort tally into this one.
    pub fn absorb(&mut self, other: Effort) {
        self.decisions += other.decisions;
        self.backtracks += other.backtracks;
        self.implications += other.implications;
    }
}

struct Podem<'a> {
    nl: &'a Netlist,
    view: &'a CombView,
    sites: &'a [NetId],
    stuck: bool,
    assignable: HashMap<NetId, Option<bool>>,
    values: Vec<V5>,
    effort: Effort,
    fanouts: Vec<Vec<GateId>>,
    observed_mask: Vec<bool>,
}

impl<'a> Podem<'a> {
    fn new(nl: &'a Netlist, view: &'a CombView, sites: &'a [NetId], stuck: bool) -> Self {
        let assignable = view.assignable.iter().map(|&n| (n, None)).collect();
        let mut observed_mask = vec![false; nl.num_gates()];
        for &n in &view.observed {
            observed_mask[n.index()] = true;
        }
        Podem {
            nl,
            view,
            sites,
            stuck,
            assignable,
            values: vec![V5::X; nl.num_gates()],
            effort: Effort::default(),
            fanouts: nl.fanouts(),
            observed_mask,
        }
    }

    /// Whether a fault effect could still reach an observation point:
    /// forward reachability from every existing effect (or potential
    /// activation site) through X-or-effect-valued nets. A decision path
    /// with no such route is a dead end regardless of future choices.
    fn xpath_possible(&self) -> bool {
        let mut seen = vec![false; self.nl.num_gates()];
        let mut stack: Vec<NetId> = Vec::new();
        let have_effect = self.values.iter().any(|v| v.is_fault_effect());
        if have_effect {
            for (i, v) in self.values.iter().enumerate() {
                if v.is_fault_effect() {
                    stack.push(NetId(i as u32));
                    seen[i] = true;
                }
            }
        } else {
            for &st in self.sites {
                // Still-activatable sites (good value not pinned to the
                // stuck value).
                if self.values[st.index()].good() != Some(self.stuck) {
                    stack.push(st);
                    seen[st.index()] = true;
                }
            }
        }
        while let Some(n) = stack.pop() {
            if self.observed_mask[n.index()] {
                return true;
            }
            for &g in &self.fanouts[n.index()] {
                let out = g.net();
                if seen[out.index()] {
                    continue;
                }
                let v = self.values[out.index()];
                if v == V5::X || v.is_fault_effect() {
                    seen[out.index()] = true;
                    stack.push(out);
                }
            }
        }
        false
    }

    fn source_value(&self, id: GateId, kind: GateKind) -> V5 {
        match kind {
            GateKind::Const(c) => V5::of_bool(c),
            GateKind::Input | GateKind::Dff { .. } => match self.assignable.get(&id.net()) {
                Some(Some(v)) => V5::of_bool(*v),
                _ => V5::X,
            },
            _ => unreachable!("not a source"),
        }
    }

    fn inject(&self, net: NetId, v: V5) -> V5 {
        if self.sites.contains(&net) {
            V5::from_pair(v.good(), Some(self.stuck))
        } else {
            v
        }
    }

    fn imply(&mut self) {
        self.effort.implications += 1;
        for (id, g) in self.nl.gates() {
            if matches!(
                g.kind,
                GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. }
            ) {
                let v = self.source_value(id, g.kind);
                self.values[id.index()] = self.inject(id.net(), v);
            }
        }
        for &gid in self.nl.topo() {
            let g = self.nl.gate(gid);
            let i = |k: usize| self.values[g.inputs[k].index()];
            let v = match g.kind {
                GateKind::Buf => i(0),
                GateKind::Not => i(0).not(),
                GateKind::And => i(0).and(i(1)),
                GateKind::Or => i(0).or(i(1)),
                GateKind::Nand => i(0).and(i(1)).not(),
                GateKind::Nor => i(0).or(i(1)).not(),
                GateKind::Xor => i(0).xor(i(1)),
                GateKind::Xnor => i(0).xor(i(1)).not(),
                GateKind::Mux => V5::mux(i(0), i(1), i(2)),
                _ => unreachable!("sources are not in topo order"),
            };
            self.values[gid.index()] = self.inject(gid.net(), v);
        }
    }

    fn success(&self) -> bool {
        self.view
            .observed
            .iter()
            .any(|&n| self.values[n.index()].is_fault_effect())
    }

    /// The next backtraced PI decision, trying every open objective —
    /// all still-activatable fault sites, then every D-frontier input —
    /// until one backtraces to an unassigned assignable net.
    fn next_decision(&self) -> Option<(NetId, bool)> {
        let have_effect = self.values.iter().any(|v| v.is_fault_effect());
        if !have_effect {
            // Activation: want good value = !stuck at some site.
            for &s in self.sites {
                if self.values[s.index()] == V5::X {
                    if let Some(d) = self.backtrace(s, !self.stuck) {
                        return Some(d);
                    }
                }
            }
            return None; // no activatable site has a backtrace
        }
        // Propagation: try every D-frontier gate in topological order.
        for &gid in self.nl.topo() {
            if self.values[gid.index()] != V5::X {
                continue;
            }
            let g = self.nl.gate(gid);
            if !g
                .inputs
                .iter()
                .any(|&n| self.values[n.index()].is_fault_effect())
            {
                continue;
            }
            for (pos, &inp) in g.inputs.iter().enumerate() {
                if self.values[inp.index()] != V5::X {
                    continue;
                }
                let want = match g.kind {
                    GateKind::And | GateKind::Nand => true,
                    GateKind::Or | GateKind::Nor => false,
                    GateKind::Xor | GateKind::Xnor => false,
                    GateKind::Mux => {
                        if pos == 0 {
                            self.values[g.inputs[1].index()].is_fault_effect()
                        } else {
                            pos == 1
                        }
                    }
                    GateKind::Buf | GateKind::Not => true,
                    _ => true,
                };
                if let Some(d) = self.backtrace(inp, want) {
                    return Some(d);
                }
            }
        }
        None // frontier exhausted
    }

    /// Backtraces an objective to an unassigned assignable net.
    fn backtrace(&self, mut net: NetId, mut val: bool) -> Option<(NetId, bool)> {
        loop {
            let g = self.nl.gate(GateId(net.0));
            match g.kind {
                GateKind::Input | GateKind::Dff { .. } => {
                    return match self.assignable.get(&net) {
                        Some(None) => Some((net, val)),
                        _ => None, // fixed-X or already-assigned source
                    };
                }
                GateKind::Const(_) => return None,
                GateKind::Buf => net = g.inputs[0],
                GateKind::Not => {
                    net = g.inputs[0];
                    val = !val;
                }
                GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                    let inverted = matches!(g.kind, GateKind::Nand | GateKind::Nor);
                    let eff = if inverted { !val } else { val };
                    // AND: output 1 needs all 1 (pick any X); output 0
                    // needs one 0 — either way the picked X gets `eff`,
                    // and likewise for OR.
                    let want = eff;
                    let next = g
                        .inputs
                        .iter()
                        .find(|&&n| self.values[n.index()] == V5::X)?;
                    net = *next;
                    val = want;
                }
                GateKind::Xor | GateKind::Xnor => {
                    let a = self.values[g.inputs[0].index()];
                    let b = self.values[g.inputs[1].index()];
                    let eff = if g.kind == GateKind::Xnor { !val } else { val };
                    if a == V5::X {
                        net = g.inputs[0];
                        val = match b.good() {
                            Some(bv) => eff != bv,
                            None => eff,
                        };
                    } else if b == V5::X {
                        net = g.inputs[1];
                        val = match a.good() {
                            Some(av) => eff != av,
                            None => eff,
                        };
                    } else {
                        return None;
                    }
                }
                GateKind::Mux => {
                    let sel = self.values[g.inputs[0].index()];
                    match sel.good() {
                        Some(s) => {
                            let data = g.inputs[if s { 1 } else { 2 }];
                            if self.values[data.index()] == V5::X {
                                net = data;
                            } else {
                                return None;
                            }
                        }
                        None => {
                            net = g.inputs[0];
                            val = true;
                        }
                    }
                }
            }
        }
    }

    fn run(&mut self, limit: u64) -> FaultStatus {
        let mut stack: Vec<(NetId, bool, bool)> = Vec::new();
        self.imply();
        loop {
            if self.success() {
                let assignments = self
                    .assignable
                    .iter()
                    .filter_map(|(&n, &v)| v.map(|b| (n, b)))
                    .collect();
                return FaultStatus::Detected(TestCube { assignments });
            }
            let step = if self.xpath_possible() {
                self.next_decision()
            } else {
                None
            };
            match step {
                Some((pi, v)) => {
                    self.effort.decisions += 1;
                    self.assignable.insert(pi, Some(v));
                    stack.push((pi, v, false));
                    self.imply();
                }
                None => loop {
                    match stack.pop() {
                        None => return FaultStatus::Untestable,
                        Some((pi, v, flipped)) => {
                            if flipped {
                                self.assignable.insert(pi, None);
                                continue;
                            }
                            self.effort.backtracks += 1;
                            if self.effort.backtracks > limit {
                                // Restore a consistent (empty) state.
                                self.assignable.insert(pi, None);
                                for (p, _, _) in stack.drain(..) {
                                    self.assignable.insert(p, None);
                                }
                                return FaultStatus::Aborted;
                            }
                            self.assignable.insert(pi, Some(!v));
                            stack.push((pi, !v, true));
                            self.imply();
                            break;
                        }
                    }
                },
            }
        }
    }
}

/// Runs PODEM for a single fault with possibly multiple equivalent
/// injection sites (the time-frame expansion injects the same physical
/// fault in every frame).
pub fn podem(
    nl: &Netlist,
    view: &CombView,
    sites: &[NetId],
    stuck_at_one: bool,
    options: &AtpgOptions,
) -> (FaultStatus, Effort) {
    let mut p = Podem::new(nl, view, sites, stuck_at_one);
    let status = p.run(options.backtrack_limit);
    (status, p.effort)
}

/// Aggregate result of a full-fault-list run.
#[derive(Debug, Clone, PartialEq)]
pub struct AtpgRun {
    /// Faults detected (by generation or by simulation drop).
    pub detected: usize,
    /// Faults proved untestable.
    pub untestable: usize,
    /// Faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Size of the fault universe.
    pub total: usize,
    /// The generated test set.
    pub patterns: Vec<TestFrame>,
    /// Total search effort.
    pub effort: Effort,
    /// Whether the run stopped early on an expired
    /// [`crate::deadline::Deadline`]: undetected faults past the cutoff
    /// were never targeted, so coverage is a lower bound.
    pub timed_out: bool,
}

impl AtpgRun {
    /// Fault coverage in percent.
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }

    /// Test efficiency in percent: (detected + untestable) / total.
    pub fn efficiency_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * (self.detected + self.untestable) as f64 / self.total as f64
        }
    }
}

/// Generates tests for every fault in the functional view, with
/// fault-dropping simulation between generations.
pub fn generate_all(nl: &Netlist, faults: &[Fault], options: &AtpgOptions) -> AtpgRun {
    generate_all_opts(nl, faults, options, &ParallelOptions::default()).0
}

/// [`generate_all`] with grading-engine options and the aggregated
/// instrumentation of every fault-dropping simulation the loop runs.
pub fn generate_all_opts(
    nl: &Netlist,
    faults: &[Fault],
    options: &AtpgOptions,
    grade_opts: &ParallelOptions,
) -> (AtpgRun, GradeStats) {
    let _span = hlstb_trace::span("atpg");
    let view = CombView::functional(nl);
    let mut run = AtpgRun {
        detected: 0,
        untestable: 0,
        aborted: 0,
        total: faults.len(),
        patterns: Vec::new(),
        effort: Effort::default(),
        timed_out: false,
    };
    let mut stats = GradeStats::default();
    let mut remaining: Vec<Fault> = faults.to_vec();
    let mut targeted = 0usize;
    while let Some(fault) = remaining.first().copied() {
        // Cooperative cutoff between targets: the first fault is always
        // attempted, so a zero-budget run still makes deterministic
        // progress and the partial tallies stay consistent.
        if targeted > 0 && grade_opts.deadline.expired() {
            run.timed_out = true;
            break;
        }
        targeted += 1;
        let (status, effort) = podem(nl, &view, &[fault.net], fault.stuck_at_one, options);
        run.effort.absorb(effort);
        match status {
            FaultStatus::Detected(cube) => {
                let frame = cube.to_frame(nl);
                let (sim, s) =
                    comb_fault_sim_opts(nl, &remaining, std::slice::from_ref(&frame), grade_opts);
                stats.absorb(&s);
                let dropped = sim.detected.len().max(1);
                run.detected += dropped;
                remaining.retain(|f| !sim.detected.contains(f) && *f != fault);
                run.patterns.push(frame);
            }
            FaultStatus::Untestable => {
                run.untestable += 1;
                remaining.retain(|f| *f != fault);
            }
            FaultStatus::Aborted => {
                run.aborted += 1;
                remaining.retain(|f| *f != fault);
            }
        }
    }
    stats.faults = faults.len();
    // The fault-dropping sims poll the same deadline; a truncated drop
    // pass also leaves the run short of its full universe.
    run.timed_out |= stats.timed_out;
    hlstb_trace::counter("atpg.decisions", run.effort.decisions);
    hlstb_trace::counter("atpg.backtracks", run.effort.backtracks);
    hlstb_trace::counter("atpg.implications", run.effort.implications);
    hlstb_trace::counter("atpg.patterns", run.patterns.len() as u64);
    (run, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{all_faults, collapsed_faults};
    use crate::net::NetlistBuilder;

    fn and_or() -> Netlist {
        let mut b = NetlistBuilder::new("ao");
        let a = b.input("a");
        let c = b.input("b");
        let d = b.input("c");
        let g1 = b.and2(a, c);
        let g2 = b.or2(g1, d);
        b.output("o", g2);
        b.finish().unwrap()
    }

    #[test]
    fn detects_simple_faults() {
        let nl = and_or();
        let view = CombView::functional(&nl);
        let a = nl.inputs()[0];
        let (status, effort) = podem(&nl, &view, &[a], false, &AtpgOptions::default());
        match status {
            FaultStatus::Detected(cube) => {
                // Must set a=1, b=1 (propagate through AND), c=0 (through OR).
                assert_eq!(cube.assignments.get(&a), Some(&true));
            }
            other => panic!("expected detection, got {other:?}"),
        }
        assert!(effort.decisions >= 1);
    }

    #[test]
    fn redundant_fault_is_proved_untestable() {
        // o = x OR 1 : output stuck-at-1 is redundant.
        let mut b = NetlistBuilder::new("red");
        let x = b.input("x");
        let one = b.one();
        let g = b.or2(x, one);
        b.output("o", g);
        let nl = b.finish().unwrap();
        let view = CombView::functional(&nl);
        let (status, _) = podem(&nl, &view, &[g], true, &AtpgOptions::default());
        assert_eq!(status, FaultStatus::Untestable);
        // And stuck-at-0 on the same net is easily detected.
        let (status0, _) = podem(&nl, &view, &[g], false, &AtpgOptions::default());
        assert!(matches!(status0, FaultStatus::Detected(_)));
    }

    #[test]
    fn full_adder_all_faults_covered() {
        let mut b = NetlistBuilder::new("fa");
        let a = b.inputs("a", 3);
        let c = b.inputs("b", 3);
        let (s, co) = b.ripple_add(&a, &c);
        b.outputs("s", &s);
        b.output("co", co);
        let nl = b.finish().unwrap();
        let run = generate_all(&nl, &collapsed_faults(&nl), &AtpgOptions::default());
        assert_eq!(run.aborted, 0);
        assert_eq!(run.untestable, 0);
        assert_eq!(run.coverage_percent(), 100.0);
        assert!(!run.patterns.is_empty());
    }

    #[test]
    fn expired_deadline_stops_generation_after_one_target() {
        use crate::deadline::Deadline;
        let mut b = NetlistBuilder::new("fa");
        let a = b.inputs("a", 3);
        let c = b.inputs("b", 3);
        let (s, co) = b.ripple_add(&a, &c);
        b.outputs("s", &s);
        b.output("co", co);
        let nl = b.finish().unwrap();
        let faults = collapsed_faults(&nl);
        let opts = ParallelOptions {
            deadline: Deadline::after(std::time::Duration::ZERO),
            ..ParallelOptions::default()
        };
        let (run, _) = generate_all_opts(&nl, &faults, &AtpgOptions::default(), &opts);
        assert!(run.timed_out);
        // One target was attempted; its drop pass may detect several.
        assert!(run.detected + run.untestable + run.aborted < faults.len());
        assert!(run.coverage_percent() < 100.0);
        // The partial run is reproducible.
        let (again, _) = generate_all_opts(&nl, &faults, &AtpgOptions::default(), &opts);
        assert_eq!(run, again);
    }

    #[test]
    fn unscanned_flop_blocks_detection_but_scan_restores_it() {
        // x -> AND(q, x) -> o with q from an uncontrollable flop.
        let mut b = NetlistBuilder::new("blk");
        let x = b.input("x");
        let q = b.register(&[x], None, false);
        let g = b.and2(q[0], x);
        b.output("o", g);
        let nl = b.finish().unwrap();
        let view = CombView::functional(&nl);
        // Fault on x requires q=1 which PODEM cannot assign: aborted
        // search exhausts as untestable in the combinational view.
        let (status, _) = podem(&nl, &view, &[x], false, &AtpgOptions::default());
        assert_eq!(status, FaultStatus::Untestable);
        let scanned = nl.with_full_scan();
        let view2 = CombView::functional(&scanned);
        let (status2, _) = podem(&scanned, &view2, &[x], false, &AtpgOptions::default());
        assert!(matches!(status2, FaultStatus::Detected(_)));
    }

    #[test]
    fn mux_select_fault() {
        let mut b = NetlistBuilder::new("m");
        let s = b.input("s");
        let a = b.input("a");
        let c = b.input("b");
        let m = b.mux2(s, a, c);
        b.output("o", m);
        let nl = b.finish().unwrap();
        let run = generate_all(&nl, &all_faults(&nl), &AtpgOptions::default());
        assert_eq!(run.coverage_percent(), 100.0);
    }

    #[test]
    fn xor_chain_coverage() {
        let mut b = NetlistBuilder::new("x");
        let mut prev = b.input("i0");
        for i in 1..6 {
            let x = b.input(format!("i{i}"));
            prev = b.xor2(prev, x);
        }
        b.output("o", prev);
        let nl = b.finish().unwrap();
        let run = generate_all(&nl, &all_faults(&nl), &AtpgOptions::default());
        assert_eq!(run.coverage_percent(), 100.0);
        assert_eq!(run.aborted, 0);
    }
}
