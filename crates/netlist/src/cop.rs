//! COP testability measures: signal probabilities (controllability) and
//! observabilities under random patterns.
//!
//! The classic closed-form estimates (Brglez's COP) that test-point
//! insertion uses to find random-pattern-resistant logic: `c1[net]` is
//! the probability the net is 1 under uniform random inputs, `ob[net]`
//! the probability a value change propagates to an observation point.
//! Flip-flop outputs are treated as pseudo-inputs (probability ½) and
//! scannable flop inputs as observation points — the full-scan view.

use crate::net::{GateKind, NetId, Netlist};

/// COP estimates for a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct CopEstimates {
    /// Probability each net is 1.
    pub c1: Vec<f64>,
    /// Observability of each net.
    pub ob: Vec<f64>,
}

impl CopEstimates {
    /// Estimated detectability of stuck-at-0 on `net` (need 1, observe).
    pub fn detect_sa0(&self, net: NetId) -> f64 {
        self.c1[net.index()] * self.ob[net.index()]
    }

    /// Estimated detectability of stuck-at-1 on `net` (need 0, observe).
    pub fn detect_sa1(&self, net: NetId) -> f64 {
        (1.0 - self.c1[net.index()]) * self.ob[net.index()]
    }

    /// The minimum of both detectabilities — the net's weak spot.
    pub fn weakness(&self, net: NetId) -> f64 {
        self.detect_sa0(net).min(self.detect_sa1(net))
    }
}

/// Computes COP estimates. Reconvergent fanout makes these approximate
/// (the standard caveat); they rank nets, they don't certify them.
///
/// # Example
///
/// ```
/// use hlstb_netlist::net::NetlistBuilder;
/// use hlstb_netlist::cop;
///
/// let mut b = NetlistBuilder::new("and");
/// let x = b.input("x");
/// let y = b.input("y");
/// let g = b.and2(x, y);
/// b.output("o", g);
/// let nl = b.finish()?;
/// let est = cop::estimate(&nl);
/// assert!((est.c1[g.index()] - 0.25).abs() < 1e-12);
/// # Ok::<(), hlstb_netlist::net::NetlistError>(())
/// ```
pub fn estimate(nl: &Netlist) -> CopEstimates {
    let n = nl.num_gates();
    let mut c1 = vec![0.5f64; n];
    // Forward pass: controllabilities in topological order.
    for (id, g) in nl.gates() {
        match g.kind {
            GateKind::Input => c1[id.index()] = 0.5,
            GateKind::Const(c) => c1[id.index()] = if c { 1.0 } else { 0.0 },
            GateKind::Dff { .. } => c1[id.index()] = 0.5,
            _ => {}
        }
    }
    for &gid in nl.topo() {
        let g = nl.gate(gid);
        let p = |k: usize| c1[g.inputs[k].index()];
        c1[gid.index()] = match g.kind {
            GateKind::Buf => p(0),
            GateKind::Not => 1.0 - p(0),
            GateKind::And => p(0) * p(1),
            GateKind::Nand => 1.0 - p(0) * p(1),
            GateKind::Or => 1.0 - (1.0 - p(0)) * (1.0 - p(1)),
            GateKind::Nor => (1.0 - p(0)) * (1.0 - p(1)),
            GateKind::Xor => p(0) * (1.0 - p(1)) + p(1) * (1.0 - p(0)),
            GateKind::Xnor => 1.0 - (p(0) * (1.0 - p(1)) + p(1) * (1.0 - p(0))),
            GateKind::Mux => p(0) * p(1) + (1.0 - p(0)) * p(2),
            GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. } => continue,
        };
    }
    // Backward pass: observabilities in reverse topological order.
    let mut ob = vec![0.0f64; n];
    for (_, net) in nl.outputs() {
        ob[net.index()] = 1.0;
    }
    for &f in &nl.scan_flops() {
        let d = nl.gate(f).inputs[0];
        ob[d.index()] = 1.0;
    }
    for &gid in nl.topo().iter().rev() {
        let g = nl.gate(gid);
        let out_ob = ob[gid.index()];
        if out_ob == 0.0 {
            continue;
        }
        let p = |k: usize| c1[g.inputs[k].index()];
        let mut bump = |net: NetId, v: f64| {
            let slot = &mut ob[net.index()];
            if v > *slot {
                *slot = v;
            }
        };
        match g.kind {
            GateKind::Buf | GateKind::Not => bump(g.inputs[0], out_ob),
            GateKind::And | GateKind::Nand => {
                bump(g.inputs[0], out_ob * p(1));
                bump(g.inputs[1], out_ob * p(0));
            }
            GateKind::Or | GateKind::Nor => {
                bump(g.inputs[0], out_ob * (1.0 - p(1)));
                bump(g.inputs[1], out_ob * (1.0 - p(0)));
            }
            GateKind::Xor | GateKind::Xnor => {
                bump(g.inputs[0], out_ob);
                bump(g.inputs[1], out_ob);
            }
            GateKind::Mux => {
                let differ = p(1) * (1.0 - p(2)) + p(2) * (1.0 - p(1));
                bump(g.inputs[0], out_ob * differ);
                bump(g.inputs[1], out_ob * p(0));
                bump(g.inputs[2], out_ob * (1.0 - p(0)));
            }
            GateKind::Input | GateKind::Const(_) | GateKind::Dff { .. } => {}
        }
    }
    CopEstimates { c1, ob }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetlistBuilder;

    #[test]
    fn and_chain_probability_decays() {
        let mut b = NetlistBuilder::new("andchain");
        let mut cur = b.input("i0");
        for i in 1..6 {
            let x = b.input(format!("i{i}"));
            cur = b.and2(cur, x);
        }
        b.output("o", cur);
        let nl = b.finish().unwrap();
        let cop = estimate(&nl);
        let out = nl.outputs()[0].1;
        assert!((cop.c1[out.index()] - 0.5f64.powi(6)).abs() < 1e-12);
        // Deep AND inputs are hard to observe (all siblings must be 1).
        let first = nl.inputs()[0];
        assert!(cop.ob[first.index()] < 0.05);
    }

    #[test]
    fn xor_preserves_observability() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.xor2(a, c);
        b.output("o", x);
        let nl = b.finish().unwrap();
        let cop = estimate(&nl);
        assert!((cop.ob[a.index()] - 1.0).abs() < 1e-12);
        assert!((cop.c1[x.index()] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_blocked_logic_is_weak() {
        let mut b = NetlistBuilder::new("blk");
        let a = b.input("a");
        let z = b.zero();
        let g = b.and2(a, z);
        b.output("o", g);
        let nl = b.finish().unwrap();
        let cop = estimate(&nl);
        // g can never be 1 → sa0 undetectable.
        assert_eq!(cop.detect_sa0(g), 0.0);
        // a is unobservable through the blocked AND.
        assert_eq!(cop.ob[a.index()], 0.0);
    }

    #[test]
    fn scan_flops_are_observation_points() {
        let mut b = NetlistBuilder::new("s");
        let a = b.input("a");
        let n = b.not(a);
        let _q = b.gate(GateKind::Dff { scan: true }, &[n]);
        b.output("dummy", a);
        let nl = b.finish().unwrap();
        let cop = estimate(&nl);
        assert!((cop.ob[n.index()] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weakness_ranks_hard_nets_last() {
        let mut b = NetlistBuilder::new("rank");
        let mut cur = b.input("i0");
        for i in 1..8 {
            let x = b.input(format!("i{i}"));
            cur = b.and2(cur, x);
        }
        b.output("o", cur);
        let nl = b.finish().unwrap();
        let cop = estimate(&nl);
        // The final AND output's sa0 needs all-ones: tied-weakest (every
        // AND on the chain shares the 2^-8 bound — a classic COP
        // identity), and nothing is weaker.
        for (id, g) in nl.gates() {
            if matches!(g.kind, GateKind::Input | GateKind::Const(_)) {
                continue;
            }
            assert!(cop.weakness(cur) <= cop.weakness(id.net()) + 1e-12);
        }
    }
}
