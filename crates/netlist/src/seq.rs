//! Sequential ATPG by time-frame expansion.
//!
//! The circuit is unrolled into `k` combinational frames; flip-flop
//! state entering frame 0 is unknown (`X`) unless the flop is scannable,
//! in which case it is loadable (assignable) — the standard partial-scan
//! test model: scan load, a functional clock sequence, scan unload.
//! The fault is injected in every frame. PODEM then searches the
//! unrolled model; the frame count grows until detection or the limit.
//!
//! This is the instrument behind experiment E1: the deeper the state and
//! the longer the S-graph cycles, the more frames and the more
//! backtracks the search needs — reproducing the survey §3.1 claim.

use crate::atpg::{podem, AtpgOptions, CombView, Effort, FaultStatus};
use crate::fault::Fault;
use crate::net::{GateKind, NetId, Netlist, NetlistBuilder};

/// A time-frame-expanded model.
#[derive(Debug, Clone)]
pub struct Unrolled {
    /// The purely combinational unrolled netlist.
    pub netlist: Netlist,
    /// Number of frames.
    pub frames: usize,
    /// `net_map[t][orig_gate]` is the unrolled net carrying the original
    /// net's value in frame `t`.
    pub net_map: Vec<Vec<NetId>>,
    /// The ATPG view: per-frame primary inputs plus loadable (scan)
    /// initial state are assignable; every frame's primary outputs plus
    /// the last frame's scan-flop data inputs are observed.
    pub view: CombView,
}

impl Unrolled {
    /// Maps an original fault to its injection sites, one per frame.
    pub fn fault_sites(&self, fault: Fault) -> Vec<NetId> {
        (0..self.frames)
            .map(|t| self.net_map[t][fault.net.index()])
            .collect()
    }
}

/// Expands `nl` into `frames` combinational time frames.
///
/// # Panics
///
/// Panics if `frames == 0`.
pub fn unroll(nl: &Netlist, frames: usize) -> Unrolled {
    assert!(frames > 0, "need at least one frame");
    let mut b = NetlistBuilder::new(format!("{}@x{frames}", nl.name()));
    let mut net_map: Vec<Vec<NetId>> = Vec::with_capacity(frames);
    let mut assignable = Vec::new();
    let mut observed = Vec::new();

    for t in 0..frames {
        let mut map = vec![NetId(u32::MAX); nl.num_gates()];
        // Sources first.
        for (id, g) in nl.gates() {
            match g.kind {
                GateKind::Input => {
                    let n = b.input(format!("{}@{t}", nl.net_name(id.net()).unwrap_or("pi")));
                    map[id.index()] = n;
                    assignable.push(n);
                }
                GateKind::Const(c) => {
                    map[id.index()] = if c { b.one() } else { b.zero() };
                }
                GateKind::Dff { scan } => {
                    if t == 0 {
                        let n = b.input(format!("state{}@0", id.net().0));
                        map[id.index()] = n;
                        if scan {
                            assignable.push(n); // scan-loadable
                        } // else: fixed X — an Input the ATPG may not assign
                    } else {
                        // Q in frame t = D value of frame t-1.
                        let d_prev = net_map[t - 1][g.inputs[0].index()];
                        map[id.index()] = b.gate(GateKind::Buf, &[d_prev]);
                    }
                }
                _ => {}
            }
        }
        // Combinational gates in topological order.
        for &gid in nl.topo() {
            let g = nl.gate(gid);
            let inputs: Vec<NetId> = g.inputs.iter().map(|n| map[n.index()]).collect();
            map[gid.index()] = b.gate(g.kind, &inputs);
        }
        // Frame outputs.
        for (name, net) in nl.outputs() {
            b.output(format!("{name}@{t}"), map[net.index()]);
            observed.push(map[net.index()]);
        }
        net_map.push(map);
    }
    // Scan-out observation of the last frame.
    let last = frames - 1;
    for &f in &nl.scan_flops() {
        let d = nl.gate(f).inputs[0];
        observed.push(net_map[last][d.index()]);
    }
    let netlist = b
        .finish()
        .expect("unrolled netlist is combinational by construction");
    Unrolled {
        netlist,
        frames,
        net_map,
        view: CombView {
            assignable,
            observed,
        },
    }
}

/// Options for sequential test generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqAtpgOptions {
    /// Maximum number of time frames to try.
    pub max_frames: usize,
    /// Backtrack limit per (fault, frame-count) PODEM run.
    pub backtrack_limit: u64,
}

impl Default for SeqAtpgOptions {
    fn default() -> Self {
        SeqAtpgOptions {
            max_frames: 8,
            backtrack_limit: 2_000,
        }
    }
}

/// Outcome of sequential generation for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqStatus {
    /// Detected with a `frames`-cycle vector sequence;
    /// `sequence[t][i]` drives the i-th primary input at cycle `t`.
    Detected {
        /// Input vectors, one per frame.
        sequence: Vec<Vec<bool>>,
        /// Scan-load values for the scannable flops
        /// (order of [`Netlist::scan_flops`]).
        scan_load: Vec<bool>,
        /// Frames used.
        frames: usize,
    },
    /// Untestable within the frame limit (exact only if no run aborted).
    Untestable,
    /// At least one PODEM run hit the backtrack limit.
    Aborted,
}

/// Sequential PODEM for one fault: tries 1, 2, … `max_frames` frames.
pub fn seq_podem(nl: &Netlist, fault: Fault, options: &SeqAtpgOptions) -> (SeqStatus, Effort) {
    let mut effort = Effort::default();
    let mut any_abort = false;
    for k in 1..=options.max_frames {
        let unrolled = unroll(nl, k);
        let sites = unrolled.fault_sites(fault);
        let (status, e) = podem(
            &unrolled.netlist,
            &unrolled.view,
            &sites,
            fault.stuck_at_one,
            &AtpgOptions {
                backtrack_limit: options.backtrack_limit,
            },
        );
        effort.absorb(e);
        match status {
            FaultStatus::Detected(cube) => {
                let mut sequence = Vec::with_capacity(k);
                for t in 0..k {
                    let mut vec_t = Vec::new();
                    for (id, g) in nl.gates() {
                        if g.kind == GateKind::Input {
                            let un = unrolled.net_map[t][id.index()];
                            vec_t.push(*cube.assignments.get(&un).unwrap_or(&false));
                        }
                    }
                    sequence.push(vec_t);
                }
                let scan_load = nl
                    .scan_flops()
                    .iter()
                    .map(|&f| {
                        let un = unrolled.net_map[0][f.index()];
                        *cube.assignments.get(&un).unwrap_or(&false)
                    })
                    .collect();
                return (
                    SeqStatus::Detected {
                        sequence,
                        scan_load,
                        frames: k,
                    },
                    effort,
                );
            }
            FaultStatus::Untestable => continue,
            FaultStatus::Aborted => {
                any_abort = true;
                continue;
            }
        }
    }
    (
        if any_abort {
            SeqStatus::Aborted
        } else {
            SeqStatus::Untestable
        },
        effort,
    )
}

/// Aggregate sequential-ATPG result over a fault list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeqRun {
    /// Faults detected.
    pub detected: usize,
    /// Faults untestable within the frame budget.
    pub untestable: usize,
    /// Faults aborted.
    pub aborted: usize,
    /// Universe size.
    pub total: usize,
    /// Total search effort.
    pub effort: Effort,
    /// Sum of frames over detected faults.
    pub total_frames: usize,
}

impl SeqRun {
    /// Fault coverage in percent.
    pub fn coverage_percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.detected as f64 / self.total as f64
        }
    }
}

/// Runs sequential ATPG over a whole fault list (no fault dropping; each
/// fault is targeted so the effort metric is comparable across designs).
pub fn seq_generate_all(nl: &Netlist, faults: &[Fault], options: &SeqAtpgOptions) -> SeqRun {
    let _span = hlstb_trace::span("atpg.seq");
    let mut run = SeqRun {
        total: faults.len(),
        ..Default::default()
    };
    for &f in faults {
        let (status, effort) = seq_podem(nl, f, options);
        run.effort.absorb(effort);
        match status {
            SeqStatus::Detected { frames, .. } => {
                run.detected += 1;
                run.total_frames += frames;
            }
            SeqStatus::Untestable => run.untestable += 1,
            SeqStatus::Aborted => run.aborted += 1,
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetlistBuilder;

    /// A W-stage shift register from input to output.
    fn pipeline(depth: usize) -> Netlist {
        let mut b = NetlistBuilder::new(format!("pipe{depth}"));
        let x = b.input("x");
        let mut cur = x;
        for _ in 0..depth {
            cur = b.register(&[cur], None, false)[0];
        }
        b.output("o", cur);
        b.finish().unwrap()
    }

    #[test]
    fn unroll_shapes() {
        let nl = pipeline(2);
        let u = unroll(&nl, 3);
        // 3 frames × (1 PI + 2 state-or-buf + output plumbing).
        assert_eq!(u.frames, 3);
        assert_eq!(u.netlist.dffs().len(), 0);
        // Frame-0 state inputs are NOT assignable (no scan).
        assert_eq!(u.view.assignable.len(), 3); // x@0..2
    }

    #[test]
    fn deep_fault_needs_enough_frames() {
        let nl = pipeline(3);
        let x = nl.inputs()[0];
        let (status, _) = seq_podem(&nl, Fault::sa0(x), &SeqAtpgOptions::default());
        match status {
            SeqStatus::Detected {
                frames, sequence, ..
            } => {
                // Needs 4 frames: drive 1, then 3 shifts to reach the PO.
                assert_eq!(frames, 4);
                assert!(sequence[0][0]);
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn frame_limit_blocks_deep_faults() {
        let nl = pipeline(6);
        let x = nl.inputs()[0];
        let opts = SeqAtpgOptions {
            max_frames: 3,
            backtrack_limit: 2_000,
        };
        let (status, _) = seq_podem(&nl, Fault::sa0(x), &opts);
        assert_eq!(status, SeqStatus::Untestable);
    }

    #[test]
    fn scan_load_shortens_sequences() {
        let nl = pipeline(3).with_full_scan();
        let x = nl.inputs()[0];
        let (status, _) = seq_podem(&nl, Fault::sa0(x), &SeqAtpgOptions::default());
        match status {
            SeqStatus::Detected { frames, .. } => {
                // Scan observation of the first flop's D input: 1 frame.
                assert_eq!(frames, 1);
            }
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn feedback_loop_requires_work() {
        // A self-clearing loop: q' = q XOR x; fault inside the loop.
        let mut b = NetlistBuilder::new("loop");
        let x = b.input("x");
        let ff = NetId(b.num_gates() as u32 + 1);
        let xr = b.gate(GateKind::Xor, &[x, ff]);
        let ff_real = b.gate(GateKind::Dff { scan: false }, &[xr]);
        assert_eq!(ff, ff_real);
        b.output("o", ff_real);
        let nl = b.finish().unwrap();
        let (status, effort) = seq_podem(&nl, Fault::sa1(xr), &SeqAtpgOptions::default());
        // Unknown initial state makes XOR outputs X forever; the fault is
        // not detectable under 3-valued pessimism without initialization
        // hardware — exactly the phenomenon that motivates loop-breaking.
        assert!(matches!(status, SeqStatus::Untestable | SeqStatus::Aborted));
        assert!(effort.implications > 0);
        // Scanning the loop register makes it trivially detectable.
        let scanned = nl.with_full_scan();
        let (status2, _) = seq_podem(&scanned, Fault::sa1(xr), &SeqAtpgOptions::default());
        assert!(matches!(status2, SeqStatus::Detected { .. }));
    }

    #[test]
    fn seq_generate_all_counts() {
        let nl = pipeline(1);
        let faults = crate::fault::all_faults(&nl);
        let run = seq_generate_all(&nl, &faults, &SeqAtpgOptions::default());
        assert_eq!(run.total, faults.len());
        assert!(run.detected > 0);
        assert_eq!(run.detected + run.untestable + run.aborted, run.total);
    }
}
