//! Invariants of the generated control tables and expansions, checked
//! across the whole benchmark suite.

use hlstb_cdfg::benchmarks;
use hlstb_hls::bind::{self, BindOptions};
use hlstb_hls::datapath::{Datapath, PortSource, RegSource};
use hlstb_hls::expand::{control_signal_table, expand, ControllerMode, ExpandOptions};
use hlstb_hls::fu::ResourceLimits;
use hlstb_hls::sched::{self, ListPriority};

fn datapaths() -> Vec<(String, Datapath)> {
    benchmarks::all()
        .into_iter()
        .map(|g| {
            let lim = ResourceLimits::minimal_for(&g);
            let s = sched::list_schedule(&g, &lim, ListPriority::Slack).unwrap();
            let b = bind::bind(&g, &s, &BindOptions::default()).unwrap();
            let dp = Datapath::build(&g, &s, &b).unwrap();
            (g.name().to_string(), dp)
        })
        .collect()
}

#[test]
fn selects_always_address_real_sources() {
    for (name, dp) in datapaths() {
        for (t, step) in dp.control().iter().enumerate() {
            for (r, &sel) in step.reg_select.iter().enumerate() {
                if step.reg_enable[r] {
                    assert!(
                        sel < dp.reg_sources()[r].len().max(1),
                        "{name}: step {t} register {r} selects missing source"
                    );
                }
            }
            for (f, ports) in step.port_select.iter().enumerate() {
                for (p, &sel) in ports.iter().enumerate() {
                    let n = dp.port_sources()[f][p].len();
                    if n > 0 {
                        assert!(sel < n, "{name}: step {t} fu {f} port {p}");
                    }
                }
            }
        }
    }
}

#[test]
fn every_fu_port_source_is_used_somewhere() {
    for (name, dp) in datapaths() {
        for (f, ports) in dp.port_sources().iter().enumerate() {
            for (p, sources) in ports.iter().enumerate() {
                for (idx, _) in sources.iter().enumerate() {
                    let used = dp
                        .control()
                        .iter()
                        .any(|st| st.fu_op[f].is_some() && st.port_select[f][p] == idx);
                    assert!(used, "{name}: fu {f} port {p} source {idx} is dead");
                }
            }
        }
    }
}

#[test]
fn external_loads_exist_exactly_for_inputs() {
    for (name, dp) in datapaths() {
        let externals: usize = dp
            .reg_sources()
            .iter()
            .flatten()
            .filter(|s| matches!(s, RegSource::External(_)))
            .count();
        assert_eq!(externals, dp.pi_regs().len(), "{name}");
    }
}

#[test]
fn signal_table_matches_expanded_external_inputs() {
    for (name, dp) in datapaths() {
        let table = control_signal_table(&dp);
        let exp = expand(
            &dp,
            &ExpandOptions {
                width: 4,
                controller: ControllerMode::External,
                scan_controller: false,
                reset_controller: false,
            },
        )
        .unwrap();
        assert_eq!(exp.control_inputs.len(), table.len(), "{name}");
        for ((tn, _), (en, _)) in table.iter().zip(&exp.control_inputs) {
            assert_eq!(tn, en, "{name}");
        }
    }
}

#[test]
fn constants_never_occupy_registers() {
    for (name, dp) in datapaths() {
        for (f, ports) in dp.port_sources().iter().enumerate() {
            for sources in ports {
                for s in sources {
                    if let PortSource::Register(r) = s {
                        assert!(*r < dp.registers().len(), "{name}: fu {f}");
                    }
                }
            }
        }
    }
}

#[test]
fn expanded_gate_count_scales_linearly_with_width() {
    let g = benchmarks::tseng();
    let lim = ResourceLimits::minimal_for(&g);
    let s = sched::list_schedule(&g, &lim, ListPriority::Slack).unwrap();
    let b = bind::bind(&g, &s, &BindOptions::default()).unwrap();
    let dp = Datapath::build(&g, &s, &b).unwrap();
    let n4 = expand(
        &dp,
        &ExpandOptions {
            width: 4,
            ..Default::default()
        },
    )
    .unwrap()
    .netlist
    .num_gates();
    let n8 = expand(
        &dp,
        &ExpandOptions {
            width: 8,
            ..Default::default()
        },
    )
    .unwrap()
    .netlist
    .num_gates();
    // Between 1.5x and 3x: linear-ish (controller overhead is fixed,
    // multipliers are quadratic but tseng has none).
    let ratio = n8 as f64 / n4 as f64;
    assert!(ratio > 1.5 && ratio < 3.0, "{n4} -> {n8}");
}
