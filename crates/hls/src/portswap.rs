//! Commutative operand-swap interconnect optimization.
//!
//! After binding, two operations on one unit often read the same
//! register — but on *opposite* ports, so both port muxes grow. Swapping
//! the operands of commutative operations (a legal rewrite by
//! definition) aligns shared sources onto the same port and shrinks the
//! mux network, which is pure area win and — because every mux input is
//! also a fault site — a small testability win.

use hlstb_cdfg::{Cdfg, Operation, Schedule, VarKind, Variable};

use crate::bind::Binding;

/// Result of the operand-swap pass.
#[derive(Debug, Clone)]
pub struct PortSwapResult {
    /// The rewritten CDFG (only operand orders of commutative operations
    /// differ).
    pub cdfg: Cdfg,
    /// How many operations were swapped.
    pub swapped: usize,
}

/// Greedily orients commutative operations so each unit's ports see the
/// fewest distinct sources.
///
/// Operations are visited in schedule order; for each commutative
/// operation both orientations are scored by how many *new* sources they
/// add to the unit's port-source sets, and the cheaper one is kept.
pub fn optimize_port_assignment(
    cdfg: &Cdfg,
    schedule: &Schedule,
    binding: &Binding,
) -> PortSwapResult {
    let mut ops: Vec<Operation> = cdfg.ops().cloned().collect();
    let nf = binding.fus.len();
    // Port-source sets per unit (binary ops only — the swap candidates).
    let mut sources: Vec<[Vec<u64>; 2]> = vec![[Vec::new(), Vec::new()]; nf];
    let key = |cdfg: &Cdfg, op: &Operation, port: usize| -> u64 {
        let operand = op.inputs[port];
        match cdfg.var(operand.var).kind {
            // Constants collapse by value; variables by register would be
            // ideal but the register map keys on variables anyway.
            VarKind::Constant(c) => 1 << 32 | c,
            _ => {
                let reg = binding.regs.reg_of(operand.var).unwrap_or(usize::MAX);
                reg as u64
            }
        }
    };
    let mut order: Vec<usize> = (0..ops.len()).collect();
    order.sort_by_key(|&i| (schedule.start(ops[i].id), ops[i].id.0));
    let mut swapped = 0;
    for i in order {
        let f = binding.fu_of[ops[i].id.index()];
        if ops[i].inputs.len() != 2 {
            continue;
        }
        let cost = |a: u64, b: u64, sources: &[Vec<u64>; 2]| -> usize {
            usize::from(!sources[0].contains(&a)) + usize::from(!sources[1].contains(&b))
        };
        let a = key(cdfg, &ops[i], 0);
        let b = key(cdfg, &ops[i], 1);
        let keep = cost(a, b, &sources[f]);
        let flip = cost(b, a, &sources[f]);
        let (x, y) = if ops[i].kind.is_commutative() && flip < keep {
            ops[i].inputs.swap(0, 1);
            swapped += 1;
            (b, a)
        } else {
            (a, b)
        };
        if !sources[f][0].contains(&x) {
            sources[f][0].push(x);
        }
        if !sources[f][1].contains(&y) {
            sources[f][1].push(y);
        }
    }
    // Rebuild with fresh def/use caches.
    let mut vars: Vec<Variable> = cdfg.vars().cloned().collect();
    for v in vars.iter_mut() {
        v.def = None;
        v.uses.clear();
    }
    for op in &ops {
        vars[op.output.index()].def = Some(op.id);
        for (port, o) in op.inputs.iter().enumerate() {
            vars[o.var.index()].uses.push((op.id, port));
        }
    }
    let cdfg =
        Cdfg::new(cdfg.name().to_string(), vars, ops).expect("operand swap preserves validity");
    PortSwapResult { cdfg, swapped }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::{self, BindOptions};
    use crate::datapath::Datapath;
    use crate::fu::ResourceLimits;
    use crate::sched::{self, ListPriority};
    use hlstb_cdfg::benchmarks;
    use std::collections::HashMap;

    fn mux_inputs(g: &Cdfg) -> (usize, usize, Cdfg, Schedule, Binding) {
        let lim = ResourceLimits::minimal_for(g);
        let s = sched::list_schedule(g, &lim, ListPriority::Slack).unwrap();
        let b = bind::bind(g, &s, &BindOptions::default()).unwrap();
        let dp = Datapath::build(g, &s, &b).unwrap();
        let (pm, rm) = dp.mux_stats();
        (pm, rm, g.clone(), s, b)
    }

    #[test]
    fn swap_never_increases_port_mux_fanin() {
        for g in benchmarks::all() {
            let (pm_before, _, g0, s, b) = mux_inputs(&g);
            let r = optimize_port_assignment(&g0, &s, &b);
            // Re-bind the swapped CDFG with the *same* structures.
            let b2 = bind::Binding::from_parts(
                &r.cdfg,
                &s,
                b.fu_of.clone(),
                b.fus.clone(),
                b.regs.clone(),
            )
            .unwrap();
            let dp2 = Datapath::build(&r.cdfg, &s, &b2).unwrap();
            let (pm_after, _) = dp2.mux_stats();
            assert!(
                pm_after <= pm_before,
                "{}: {} -> {}",
                g.name(),
                pm_before,
                pm_after
            );
        }
    }

    #[test]
    fn swap_reduces_muxes_somewhere() {
        let mut improved = 0;
        for g in benchmarks::all() {
            let (pm_before, _, g0, s, b) = mux_inputs(&g);
            let r = optimize_port_assignment(&g0, &s, &b);
            let b2 = bind::Binding::from_parts(
                &r.cdfg,
                &s,
                b.fu_of.clone(),
                b.fus.clone(),
                b.regs.clone(),
            )
            .unwrap();
            let dp2 = Datapath::build(&r.cdfg, &s, &b2).unwrap();
            if dp2.mux_stats().0 < pm_before {
                improved += 1;
            }
        }
        assert!(improved >= 2, "only {improved} designs improved");
    }

    #[test]
    fn behavior_is_preserved() {
        // Pick any benchmark on which the pass actually swaps.
        let g = benchmarks::all()
            .into_iter()
            .find(|g| {
                let (_, _, g0, s, b) = mux_inputs(g);
                optimize_port_assignment(&g0, &s, &b).swapped > 0
            })
            .expect("some design benefits from swapping");
        let (_, _, g0, s, b) = mux_inputs(&g);
        let r = optimize_port_assignment(&g0, &s, &b);
        assert!(r.swapped > 0);
        let streams: HashMap<String, Vec<u64>> = g
            .inputs()
            .map(|v| (v.name.clone(), vec![3, 17, 250, 9]))
            .collect();
        let before = g.evaluate(&streams, &HashMap::new(), 8);
        let after = r.cdfg.evaluate(&streams, &HashMap::new(), 8);
        for o in g.outputs() {
            assert_eq!(before[&o.name], after[&o.name], "{}", o.name);
        }
    }

    #[test]
    fn noncommutative_ops_are_never_swapped() {
        let g = benchmarks::diffeq();
        let (_, _, g0, s, b) = mux_inputs(&g);
        let r = optimize_port_assignment(&g0, &s, &b);
        for (before, after) in g0.ops().zip(r.cdfg.ops()) {
            if !before.kind.is_commutative() {
                assert_eq!(before.inputs, after.inputs, "{}", before.id);
            }
        }
    }
}
