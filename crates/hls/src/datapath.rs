//! The RTL data path: registers, functional units, multiplexers, and the
//! per-step control table.
//!
//! This is the structure every testability argument in the survey is
//! about. In particular [`Datapath::register_sgraph`] derives the
//! register adjacency — including the *assignment loops* of §3.3.2 that
//! hardware sharing introduces even into loop-free behaviors (Figure 1).

use std::error::Error;
use std::fmt;

use hlstb_cdfg::{Cdfg, LifetimeMap, OpId, OpKind, Schedule, VarId, VarKind};
use hlstb_sgraph::{NodeId, SGraph};

use crate::bind::Binding;
use crate::fu::FuKind;

/// A data-path register and the variables it hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterInfo {
    /// Display name (`R0`, `R1`, …).
    pub name: String,
    /// The variables sharing this register.
    pub vars: Vec<VarId>,
    /// Whether the register is a scan register.
    pub scan: bool,
}

/// A functional-unit instance in the data path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuInfo {
    /// Unit class.
    pub kind: FuKind,
    /// Operations executed on the unit.
    pub ops: Vec<OpId>,
    /// Number of input ports (max arity over its operations).
    pub arity: usize,
}

/// What can drive a functional-unit input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortSource {
    /// A register's output.
    Register(usize),
    /// A hardwired constant.
    Constant(u64),
}

/// What can drive a register's data input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegSource {
    /// A functional unit's result.
    Fu(usize),
    /// An external (primary-input) load port with the given name.
    External(String),
    /// A direct copy from another register (delay-line shift).
    Register(usize),
}

/// Control values for one control step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepControl {
    /// Load enable per register.
    pub reg_enable: Vec<bool>,
    /// Selected source index per register (meaningful when enabled).
    pub reg_select: Vec<usize>,
    /// Selected source index per functional-unit port.
    pub port_select: Vec<Vec<usize>>,
    /// The operation kind each unit performs this step, if any.
    pub fu_op: Vec<Option<OpKind>>,
}

/// Errors from data-path construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatapathError {
    /// Two writes hit one register at the same clock edge.
    WriteCollision {
        /// The register index.
        register: usize,
        /// The step whose ending edge collides.
        step: u32,
    },
    /// A variable was not assigned a register.
    Unassigned {
        /// The variable.
        var: VarId,
    },
}

impl fmt::Display for DatapathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatapathError::WriteCollision { register, step } => {
                write!(
                    f,
                    "register R{register} written twice at the edge ending step {step}"
                )
            }
            DatapathError::Unassigned { var } => write!(f, "{var} has no register"),
        }
    }
}

impl Error for DatapathError {}

/// A structural RTL data path with its control table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datapath {
    name: String,
    period: u32,
    registers: Vec<RegisterInfo>,
    fus: Vec<FuInfo>,
    /// `port_sources[f][p]` — ordered distinct sources of port `p`.
    port_sources: Vec<Vec<Vec<PortSource>>>,
    /// `reg_sources[r]` — ordered distinct sources of register `r`.
    reg_sources: Vec<Vec<RegSource>>,
    control: Vec<StepControl>,
    /// Primary outputs: `(name, register)`.
    po_regs: Vec<(String, usize)>,
    /// Primary inputs: `(name, register)`.
    pi_regs: Vec<(String, usize)>,
    /// Op-precise register adjacency: `(from, to, op)`.
    op_edges: Vec<(usize, usize, OpId)>,
    /// Register-to-register delay-shift adjacency.
    copy_edges: Vec<(usize, usize)>,
    /// Absolute step at which each primary output becomes register-valid
    /// (parallel to `po_regs`).
    po_ready: Vec<u32>,
}

impl Datapath {
    /// Builds the data path implied by a schedule and binding.
    ///
    /// # Errors
    ///
    /// [`DatapathError::WriteCollision`] if two values must be latched
    /// into one register at the same clock edge (cannot happen for a
    /// validated binding unless a variable with an empty lifetime shares
    /// a register whose other occupant is written at the same edge);
    /// [`DatapathError::Unassigned`] if a register-resident variable has
    /// no register.
    pub fn build(
        cdfg: &Cdfg,
        schedule: &Schedule,
        binding: &Binding,
    ) -> Result<Datapath, DatapathError> {
        let _span = hlstb_trace::span("datapath");
        let period = schedule.num_steps();
        let lookup = binding.regs.lookup(cdfg);
        let reg_of = |v: VarId| -> Result<usize, DatapathError> {
            lookup[v.index()].ok_or(DatapathError::Unassigned { var: v })
        };
        let mut registers: Vec<RegisterInfo> = binding
            .regs
            .registers
            .iter()
            .enumerate()
            .map(|(i, vars)| RegisterInfo {
                name: format!("R{i}"),
                vars: vars.clone(),
                scan: false,
            })
            .collect();
        let fus: Vec<FuInfo> = binding
            .fus
            .iter()
            .map(|f| FuInfo {
                kind: f.kind,
                ops: f.ops.clone(),
                arity: f
                    .ops
                    .iter()
                    .map(|&o| cdfg.op(o).kind.arity())
                    .max()
                    .unwrap_or(2),
            })
            .collect();

        // Delay lines. A value produced at absolute step `birth_abs`
        // (1..=period; 0 for primary inputs) lives in its main register
        // for exactly one period before the next iteration's value
        // overwrites it. A read at step `t`, distance `d`, therefore
        // needs shift stage `k = (d*period + t - birth_abs) div period`
        // (k = 0 is the main register, which is how the classic
        // loop-carried registers of the surveyed data paths work). The
        // port mux re-selects per step, so a multi-cycle read window may
        // cross the rewrite edge and still see a stable value.
        let birth_abs = |v: &hlstb_cdfg::Variable| -> u32 {
            match v.def {
                Some(op) => schedule.ready_step(op),
                None => 0,
            }
        };
        let stage_of = |b_abs: u32, d: u32, t: u32| -> u32 { (d * period + t - b_abs) / period };
        struct Delay {
            birth_abs: u32,
            stages: Vec<usize>, // register indices of D1..Dmax
        }
        let mut delays: std::collections::HashMap<VarId, Delay> = std::collections::HashMap::new();
        for v in cdfg.vars() {
            if matches!(v.kind, VarKind::Constant(_)) {
                continue;
            }
            let b_abs = birth_abs(v);
            let mut maxk = 0u32;
            for &(user, port) in &v.uses {
                let d = cdfg.op(user).inputs[port].distance;
                let t = schedule.start(user);
                let l = schedule.latency(user);
                for tk in t..t + l {
                    maxk = maxk.max(stage_of(b_abs, d, tk));
                }
            }
            if maxk >= 1 {
                let main = reg_of(v.id)?;
                let stages: Vec<usize> = (1..=maxk)
                    .map(|k| {
                        registers.push(RegisterInfo {
                            name: format!("R{main}_z{k}"),
                            vars: vec![v.id],
                            scan: false,
                        });
                        registers.len() - 1
                    })
                    .collect();
                delays.insert(
                    v.id,
                    Delay {
                        birth_abs: b_abs,
                        stages,
                    },
                );
            }
        }
        // Resolves the register read for an operand at one execution step.
        let resolve_step = |var: VarId, dist: u32, tk: u32| -> Result<usize, DatapathError> {
            let main = reg_of(var)?;
            match delays.get(&var) {
                None => Ok(main),
                Some(delay) => {
                    let k = stage_of(delay.birth_abs, dist, tk);
                    if k == 0 {
                        Ok(main)
                    } else {
                        Ok(delay.stages[(k - 1) as usize])
                    }
                }
            }
        };

        let mut port_sources: Vec<Vec<Vec<PortSource>>> =
            fus.iter().map(|f| vec![Vec::new(); f.arity]).collect();
        let mut reg_sources: Vec<Vec<RegSource>> = vec![Vec::new(); registers.len()];
        let mut control: Vec<StepControl> = (0..period)
            .map(|_| StepControl {
                reg_enable: vec![false; registers.len()],
                reg_select: vec![0; registers.len()],
                port_select: fus.iter().map(|f| vec![0; f.arity]).collect(),
                fu_op: vec![None; fus.len()],
            })
            .collect();
        let mut write_edge: Vec<Vec<bool>> = vec![vec![false; registers.len()]; period as usize];

        let intern_port = |sources: &mut Vec<PortSource>, s: PortSource| -> usize {
            match sources.iter().position(|x| *x == s) {
                Some(i) => i,
                None => {
                    sources.push(s);
                    sources.len() - 1
                }
            }
        };
        let intern_reg = |sources: &mut Vec<RegSource>, s: RegSource| -> usize {
            match sources.iter().position(|x| *x == s) {
                Some(i) => i,
                None => {
                    sources.push(s);
                    sources.len() - 1
                }
            }
        };

        let mut op_edges = Vec::new();
        for op in cdfg.ops() {
            let f = binding.fu_of[op.id.index()];
            let s = schedule.start(op.id);
            let l = schedule.latency(op.id);
            let rd = reg_of(op.output)?;
            // Input ports, re-resolved per execution step so reads that
            // cross a rewrite edge switch to the matching delay stage.
            for (p, operand) in op.inputs.iter().enumerate() {
                match cdfg.var(operand.var).kind {
                    VarKind::Constant(c) => {
                        let idx = intern_port(&mut port_sources[f][p], PortSource::Constant(c));
                        for t in s..s + l {
                            control[t as usize].port_select[f][p] = idx;
                        }
                    }
                    _ => {
                        for t in s..s + l {
                            let r = resolve_step(operand.var, operand.distance, t)?;
                            let idx = intern_port(&mut port_sources[f][p], PortSource::Register(r));
                            control[t as usize].port_select[f][p] = idx;
                            op_edges.push((r, rd, op.id));
                        }
                    }
                }
            }
            for t in s..s + l {
                control[t as usize].fu_op[f] = Some(op.kind);
            }
            // Output register write at the edge ending step s + l - 1.
            let idx = intern_reg(&mut reg_sources[rd], RegSource::Fu(f));
            let t = s + l - 1;
            if write_edge[t as usize][rd] {
                return Err(DatapathError::WriteCollision {
                    register: rd,
                    step: t,
                });
            }
            write_edge[t as usize][rd] = true;
            control[t as usize].reg_enable[rd] = true;
            control[t as usize].reg_select[rd] = idx;
        }

        // Primary inputs load externally at the edge ending the last step.
        let mut pi_regs = Vec::new();
        for v in cdfg.vars() {
            if v.kind != VarKind::Input {
                continue;
            }
            let r = reg_of(v.id)?;
            let idx = intern_reg(&mut reg_sources[r], RegSource::External(v.name.clone()));
            let t = period - 1;
            if write_edge[t as usize][r] {
                return Err(DatapathError::WriteCollision {
                    register: r,
                    step: t,
                });
            }
            write_edge[t as usize][r] = true;
            control[t as usize].reg_enable[r] = true;
            control[t as usize].reg_select[r] = idx;
            pi_regs.push((v.name.clone(), r));
        }

        // Delay-line shifts: every stage loads at the edge at which the
        // main register is rewritten, sampling the previous stage's (or
        // the main register's) old value.
        for (&var, delay) in &delays {
            let main = reg_of(var)?;
            let t = (delay.birth_abs + period - 1) % period;
            let mut prev = main;
            for &stage in &delay.stages {
                let idx = intern_reg(&mut reg_sources[stage], RegSource::Register(prev));
                if write_edge[t as usize][stage] {
                    return Err(DatapathError::WriteCollision {
                        register: stage,
                        step: t,
                    });
                }
                write_edge[t as usize][stage] = true;
                control[t as usize].reg_enable[stage] = true;
                control[t as usize].reg_select[stage] = idx;
                prev = stage;
            }
        }
        // Register-to-register copy adjacency (delay shifts).
        let mut copy_edges = Vec::new();
        for (&var, delay) in &delays {
            let mut prev = reg_of(var)?;
            for &stage in &delay.stages {
                copy_edges.push((prev, stage));
                prev = stage;
            }
        }

        op_edges.sort_unstable();
        op_edges.dedup();

        let mut po_regs = Vec::new();
        let mut po_ready = Vec::new();
        for v in cdfg.vars() {
            if v.kind == VarKind::Output {
                po_regs.push((v.name.clone(), reg_of(v.id)?));
                let def = v.def.expect("outputs are defined");
                po_ready.push(schedule.ready_step(def));
            }
        }

        Ok(Datapath {
            name: cdfg.name().to_string(),
            period,
            registers,
            fus,
            port_sources,
            reg_sources,
            control,
            po_regs,
            pi_regs,
            op_edges,
            copy_edges,
            po_ready,
        })
    }

    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Control steps per iteration.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// The registers.
    pub fn registers(&self) -> &[RegisterInfo] {
        &self.registers
    }

    /// The functional units.
    pub fn fus(&self) -> &[FuInfo] {
        &self.fus
    }

    /// Sources of each functional-unit port.
    pub fn port_sources(&self) -> &[Vec<Vec<PortSource>>] {
        &self.port_sources
    }

    /// Sources of each register.
    pub fn reg_sources(&self) -> &[Vec<RegSource>] {
        &self.reg_sources
    }

    /// The control table, one entry per step.
    pub fn control(&self) -> &[StepControl] {
        &self.control
    }

    /// Mutable control table (controller DFT rewrites it).
    pub fn control_mut(&mut self) -> &mut Vec<StepControl> {
        &mut self.control
    }

    /// Appends extra control steps — the extra test vectors of the
    /// controller-based DFT technique (survey §3.5). The period grows
    /// accordingly; the added states are reached in test mode.
    ///
    /// # Panics
    ///
    /// Panics if a step's vectors are sized for a different data path.
    pub fn append_test_steps(&mut self, steps: Vec<StepControl>) {
        for st in &steps {
            assert_eq!(st.reg_enable.len(), self.registers.len());
            assert_eq!(st.fu_op.len(), self.fus.len());
        }
        self.period += steps.len() as u32;
        self.control.extend(steps);
    }

    /// Primary outputs as `(name, register)`.
    pub fn po_regs(&self) -> &[(String, usize)] {
        &self.po_regs
    }

    /// Primary inputs as `(name, register)`.
    pub fn pi_regs(&self) -> &[(String, usize)] {
        &self.pi_regs
    }

    /// Absolute ready step of each primary output (parallel to
    /// [`po_regs`](Self::po_regs)); may equal the period when the value
    /// is latched at the iteration's final edge.
    pub fn po_ready(&self) -> &[u32] {
        &self.po_ready
    }

    /// Registers hosting primary inputs (I/O registers of §3.2).
    pub fn input_registers(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.pi_regs.iter().map(|(_, r)| *r).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Registers hosting primary outputs.
    pub fn output_registers(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.po_regs.iter().map(|(_, r)| *r).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Marks registers as scan registers.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn mark_scan(&mut self, regs: &[usize]) {
        for &r in regs {
            self.registers[r].scan = true;
        }
    }

    /// Registers currently marked as scan registers.
    pub fn scan_registers(&self) -> Vec<usize> {
        (0..self.registers.len())
            .filter(|&r| self.registers[r].scan)
            .collect()
    }

    /// The register S-graph: edge `Ru → Rv` iff some operation reads an
    /// operand from `Ru` and writes its result to `Rv` (a combinational
    /// register-to-register path through a functional unit).
    ///
    /// Scan registers are *not* removed here; compose with
    /// [`SGraph::without_nodes`](hlstb_sgraph::SGraph::without_nodes)
    /// to model scanning.
    pub fn register_sgraph(&self) -> SGraph {
        self.register_sgraph_for(|_| true)
    }

    /// Register S-graph restricted to operations accepted by `keep_op`
    /// (used by transparent-register analyses).
    pub fn register_sgraph_for(&self, keep_op: impl Fn(OpId) -> bool) -> SGraph {
        let mut g = SGraph::new(self.registers.len());
        for (i, r) in self.registers.iter().enumerate() {
            g.set_label(NodeId(i as u32), r.name.clone());
        }
        for &(ru, rv, op) in &self.op_edges {
            if keep_op(op) {
                g.add_edge(NodeId(ru as u32), NodeId(rv as u32));
            }
        }
        for &(ru, rv) in &self.copy_edges {
            g.add_edge(NodeId(ru as u32), NodeId(rv as u32));
        }
        g
    }

    /// Register-to-register delay-shift edges.
    pub fn copy_edges(&self) -> &[(usize, usize)] {
        &self.copy_edges
    }

    /// Op-precise register adjacency: `(from_reg, to_reg, op)` triples.
    pub fn op_edges(&self) -> &[(usize, usize, OpId)] {
        &self.op_edges
    }

    /// Multiplexer statistics: `(port_mux_inputs, reg_mux_inputs)` —
    /// total fan-in of multi-source port and register muxes.
    pub fn mux_stats(&self) -> (usize, usize) {
        let pm = self
            .port_sources
            .iter()
            .flatten()
            .filter(|s| s.len() > 1)
            .map(|s| s.len())
            .sum();
        let rm = self
            .reg_sources
            .iter()
            .filter(|s| s.len() > 1)
            .map(|s| s.len())
            .sum();
        (pm, rm)
    }

    /// Checks that register contents follow variable lifetimes — an
    /// internal consistency probe used by tests.
    pub fn consistent_with(&self, cdfg: &Cdfg, schedule: &Schedule) -> bool {
        let lt = LifetimeMap::compute(cdfg, schedule);
        self.registers.iter().all(|r| lt.compatible(&r.vars))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::{self, Binding, FuInstance, RegisterAssignment};
    use crate::sched;
    use hlstb_cdfg::benchmarks;
    use hlstb_sgraph::mfvs::{minimum_feedback_vertex_set, MfvsOptions};

    /// The two schedule/assignment variants of the paper's Figure 1.
    /// Returns (datapath_b, datapath_c): (b) creates the assignment loop
    /// RA1→RA2→RA1; (c) leaves only self-loops.
    fn figure1_variants() -> (Datapath, Datapath) {
        let g = benchmarks::figure1();
        let ids = |name: &str| g.var_by_name(name).unwrap().id;
        let (a, b, d, f, p, q, s) = (
            ids("a"),
            ids("b"),
            ids("d"),
            ids("f"),
            ids("p"),
            ids("q"),
            ids("s"),
        );
        let (c, e, r, t, gg) = (ids("c"), ids("e"), ids("r"), ids("t"), ids("g"));
        let inputs_each_own = vec![
            vec![a],
            vec![b],
            vec![d],
            vec![f],
            vec![p],
            vec![q],
            vec![s],
        ];

        // Variant (b): {+1:(1,A1), +2:(2,A2), +3:(2,A1), +4:(3,A2), +5:(3,A1)}
        let sched_b = hlstb_cdfg::Schedule::new(&g, vec![0, 1, 1, 2, 2]).unwrap();
        let fus_b = vec![
            FuInstance {
                kind: crate::fu::FuKind::Adder,
                ops: vec![OpId(0), OpId(2), OpId(4)],
            },
            FuInstance {
                kind: crate::fu::FuKind::Adder,
                ops: vec![OpId(1), OpId(3)],
            },
        ];
        let fu_of_b = vec![0, 1, 0, 1, 0];
        let mut regs_b = inputs_each_own.clone();
        regs_b.push(vec![c, gg, r]); // shared: the loop register
        regs_b.push(vec![e]);
        regs_b.push(vec![t]);
        let binding_b = Binding::from_parts(
            &g,
            &sched_b,
            fu_of_b,
            fus_b,
            RegisterAssignment { registers: regs_b },
        )
        .expect("variant (b) binding is valid");
        let dp_b = Datapath::build(&g, &sched_b, &binding_b).unwrap();

        // Variant (c): {+1:(1,A1), +2:(2,A1), +3:(1,A2), +4:(2,A2), +5:(3,A1)}
        let sched_c = hlstb_cdfg::Schedule::new(&g, vec![0, 1, 0, 1, 2]).unwrap();
        let fus_c = vec![
            FuInstance {
                kind: crate::fu::FuKind::Adder,
                ops: vec![OpId(0), OpId(1), OpId(4)],
            },
            FuInstance {
                kind: crate::fu::FuKind::Adder,
                ops: vec![OpId(2), OpId(3)],
            },
        ];
        let fu_of_c = vec![0, 0, 1, 1, 0];
        let mut regs_c = inputs_each_own;
        regs_c.push(vec![c, e, gg]); // A1's result register: self-loops only
        regs_c.push(vec![r, t]); // A2's result register: self-loop only
        let binding_c = Binding::from_parts(
            &g,
            &sched_c,
            fu_of_c,
            fus_c,
            RegisterAssignment { registers: regs_c },
        )
        .expect("variant (c) binding is valid");
        let dp_c = Datapath::build(&g, &sched_c, &binding_c).unwrap();
        (dp_b, dp_c)
    }

    #[test]
    fn figure1_variant_b_has_assignment_loop() {
        let (dp_b, _) = figure1_variants();
        let sg = dp_b.register_sgraph();
        // The shared register and A2's result register form a 2-cycle.
        assert!(
            !sg.is_acyclic(true),
            "variant (b) must contain a non-self loop"
        );
        let fvs = minimum_feedback_vertex_set(&sg, MfvsOptions::default());
        assert_eq!(fvs.nodes.len(), 1, "one scan register breaks Figure 1(b)");
    }

    #[test]
    fn figure1_variant_c_has_only_self_loops() {
        let (_, dp_c) = figure1_variants();
        let sg = dp_c.register_sgraph();
        assert!(
            sg.is_acyclic(true),
            "variant (c) is loop-free modulo self-loops"
        );
        assert!(!sg.is_acyclic(false), "variant (c) does keep self-loops");
        let fvs = minimum_feedback_vertex_set(&sg, MfvsOptions::default());
        assert!(
            fvs.nodes.is_empty(),
            "no scan register needed for Figure 1(c)"
        );
    }

    #[test]
    fn benchmarks_build_consistent_datapaths() {
        for g in benchmarks::all() {
            let lim = crate::fu::ResourceLimits::minimal_for(&g);
            let s = sched::list_schedule(&g, &lim, sched::ListPriority::Slack).unwrap();
            let b = bind::bind(&g, &s, &bind::BindOptions::default()).unwrap();
            let dp = Datapath::build(&g, &s, &b).unwrap();
            assert!(dp.consistent_with(&g, &s), "{}", g.name());
            assert_eq!(dp.period(), s.num_steps());
            // Every op contributes at least one adjacency edge unless all
            // its operands are constants.
            assert!(dp.op_edges().len() >= g.num_ops() / 2, "{}", g.name());
        }
    }

    #[test]
    fn control_table_covers_every_write() {
        let g = benchmarks::diffeq();
        let s = sched::asap(&g).unwrap();
        let b = bind::bind(&g, &s, &bind::BindOptions::default()).unwrap();
        let dp = Datapath::build(&g, &s, &b).unwrap();
        let enables: usize = dp
            .control()
            .iter()
            .map(|st| st.reg_enable.iter().filter(|&&e| e).count())
            .sum();
        // One write per op, one per PI register load, one per delay-line
        // shift stage.
        assert_eq!(
            enables,
            g.num_ops() + dp.pi_regs().len() + dp.copy_edges().len()
        );
    }

    #[test]
    fn io_registers_are_tracked() {
        let g = benchmarks::figure1();
        let s = sched::asap(&g).unwrap();
        let b = bind::bind(&g, &s, &bind::BindOptions::default()).unwrap();
        let dp = Datapath::build(&g, &s, &b).unwrap();
        assert_eq!(dp.pi_regs().len(), 7);
        assert_eq!(dp.po_regs().len(), 2);
        assert!(!dp.input_registers().is_empty());
        assert!(!dp.output_registers().is_empty());
    }

    #[test]
    fn scan_marking_roundtrips() {
        let g = benchmarks::figure1();
        let s = sched::asap(&g).unwrap();
        let b = bind::bind(&g, &s, &bind::BindOptions::default()).unwrap();
        let mut dp = Datapath::build(&g, &s, &b).unwrap();
        assert!(dp.scan_registers().is_empty());
        dp.mark_scan(&[0, 2]);
        assert_eq!(dp.scan_registers(), vec![0, 2]);
    }
}
